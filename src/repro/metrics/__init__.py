"""Observability layer: metrics registry, profile reports, regression gate.

``repro.metrics`` gives the repository a first-class way to observe
itself, following the measurement methodology of the paper's Section 3
(and of LITMUS^RT's Feather-Trace overhead tracing): lightweight
instruments threaded through the simulator, structures, and experiment
engine, recording per-primitive event counts and costs keyed by the
paper's taxonomy (``rls``, ``sch``, ``cnt1``, ``cnt2``, queue ops δ/θ
by N) — **zero-cost when disabled**.

See ``docs/observability.md`` for the metric taxonomy and the
golden-baseline update workflow.
"""

from repro.metrics.registry import (
    DEFAULT_NS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    active,
)
from repro.metrics.report import (
    DEFAULT_WALL_TOLERANCE,
    PRIMITIVE_OF_OP,
    PROFILE_SCHEMA_VERSION,
    build_report,
    compare_reports,
    primitive_anatomy,
    queue_op_curves,
    record_analysis_stats,
    record_batch_stats,
)

__all__ = [
    "DEFAULT_NS_BUCKETS",
    "DEFAULT_WALL_TOLERANCE",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PRIMITIVE_OF_OP",
    "PROFILE_SCHEMA_VERSION",
    "active",
    "build_report",
    "compare_reports",
    "primitive_anatomy",
    "queue_op_curves",
    "record_analysis_stats",
    "record_batch_stats",
]
