"""The metrics registry: counters, gauges, and fixed-bucket histograms.

The observability layer's data model, shaped after the paper's Section-3
measurement discipline: every quantity the simulator observes about
itself is either

* a **counter** — a monotonically increasing total (events, simulated
  nanoseconds charged, cache hits);
* a **gauge** — a last-written level (task-table size, queue occupancy
  at some instant); or
* a **histogram** — a fixed-bucket distribution of per-event samples
  (wall-clock nanoseconds of one queue operation), carrying bucket
  counts plus exact ``count``/``sum``/``max`` aggregates.

Metrics are keyed by name plus a sorted label set (Prometheus-style), so
the same instrument can be partitioned by the paper's taxonomy — e.g.
``sim_kernel_ops_total{op="release"}`` or
``wall_queue_op_ns{n="4", queue="ready"}``.

Design constraints, in priority order:

1. **Zero cost when disabled.**  The simulator holds ``None`` instead of
   a registry and guards every record site with one attribute check; a
   registry constructed with ``enabled=False`` is treated exactly like
   ``None`` by every instrumented component.
2. **Deterministic serialization.**  :meth:`MetricsRegistry.as_dict`
   orders metrics by (name, labels) and
   :meth:`MetricsRegistry.canonical_json` is byte-stable, so snapshots
   can be compared, cached, and committed as golden baselines.
3. **Mergeable shards.**  Worker processes return registry snapshots as
   plain dicts; :meth:`MetricsRegistry.merge` folds them together such
   that a sharded run aggregates to exactly the serial run (counters and
   histogram buckets add; gauges keep the maximum).

Naming convention (relied on by the regression harness): metrics whose
name starts with ``sim_`` are *simulated-time* quantities — fully
deterministic for a fixed scenario and compared exactly; names starting
with ``wall_`` are wall-clock self-measurements — machine- and run-
dependent, compared within a tolerance band only.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

#: Default histogram bucket upper bounds for wall-clock samples, in
#: nanoseconds.  Spans one queue operation (~100 ns in CPython) up to a
#: pathological 1 ms stall; samples beyond the last bound land in the
#: implicit +Inf bucket.
DEFAULT_NS_BUCKETS: Tuple[int, ...] = (
    100,
    250,
    500,
    1_000,
    2_500,
    5_000,
    10_000,
    25_000,
    50_000,
    100_000,
    1_000_000,
)

LabelsKey = Tuple[Tuple[str, str], ...]


def _labels_key(labels: Mapping[str, object]) -> LabelsKey:
    """Canonical (sorted, stringified) form of a label mapping."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _labels_text(labels: LabelsKey) -> str:
    """Prometheus-style ``{k="v",...}`` rendering (empty for no labels)."""
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return "{" + inner + "}"


class Counter:
    """A monotonically increasing integer total."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelsKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment")
        self.value += amount

    def as_dict(self) -> dict:
        return {
            "type": "counter",
            "name": self.name,
            "labels": dict(self.labels),
            "value": self.value,
        }


class Gauge:
    """A last-written level (merge keeps the maximum across shards)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelsKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0

    def set(self, value) -> None:
        self.value = value

    def as_dict(self) -> dict:
        return {
            "type": "gauge",
            "name": self.name,
            "labels": dict(self.labels),
            "value": self.value,
        }


class Histogram:
    """A fixed-bucket distribution with exact count/sum/max aggregates.

    ``bounds`` are inclusive upper bucket edges; a sample larger than
    every bound is counted in the implicit overflow (+Inf) bucket.
    Bucket counts are *non-cumulative* in memory (simpler merging); the
    Prometheus exposition cumulates them on the way out.
    """

    __slots__ = ("name", "labels", "bounds", "buckets", "count", "sum", "max")

    def __init__(
        self,
        name: str,
        labels: LabelsKey = (),
        bounds: Sequence[int] = DEFAULT_NS_BUCKETS,
    ) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError(
                f"histogram {name}: bounds must be non-empty and sorted"
            )
        self.name = name
        self.labels = labels
        self.bounds: Tuple[int, ...] = tuple(bounds)
        self.buckets: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0
        self.max = 0

    def observe(self, value) -> None:
        self.count += 1
        self.sum += value
        if value > self.max:
            self.max = value
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.buckets[index] += 1
                return
        self.buckets[-1] += 1

    def merge(self, other: "Histogram") -> None:
        """Fold ``other`` into this histogram (same bounds required)."""
        if other.bounds != self.bounds:
            raise ValueError(
                f"histogram {self.name}: cannot merge bounds "
                f"{other.bounds} into {self.bounds}"
            )
        self.count += other.count
        self.sum += other.sum
        if other.max > self.max:
            self.max = other.max
        for index, value in enumerate(other.buckets):
            self.buckets[index] += value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        return {
            "type": "histogram",
            "name": self.name,
            "labels": dict(self.labels),
            "bounds": list(self.bounds),
            "buckets": list(self.buckets),
            "count": self.count,
            "sum": self.sum,
            "max": self.max,
        }


Metric = object  # Counter | Gauge | Histogram (3.9-compatible alias)


class MetricsRegistry:
    """A named collection of counters, gauges, and histograms.

    ``counter()``/``gauge()``/``histogram()`` are get-or-create: the
    first call with a given (name, labels) pair creates the instrument,
    later calls return the same object, so hot paths can cache the
    instrument once and call ``inc``/``observe`` directly.

    A registry constructed with ``enabled=False`` still works as a data
    container, but every instrumented component in the repository
    (``KernelSim``, ``ExperimentEngine``, the profile CLI) treats it
    exactly like ``metrics=None``: nothing is recorded and the observed
    system's behaviour is bit-identical to an uninstrumented run.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._metrics: Dict[Tuple[str, LabelsKey], Metric] = {}

    # -- instrument access ---------------------------------------------

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, _labels_key(labels))

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, _labels_key(labels))

    def histogram(
        self,
        name: str,
        bounds: Sequence[int] = DEFAULT_NS_BUCKETS,
        **labels,
    ) -> Histogram:
        key = (name, _labels_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = Histogram(name, key[1], bounds)
            self._metrics[key] = metric
        elif not isinstance(metric, Histogram):
            raise TypeError(
                f"metric {name}{_labels_text(key[1])} already registered "
                f"as {type(metric).__name__}"
            )
        return metric

    def _get(self, cls, name: str, labels: LabelsKey):
        key = (name, labels)
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, labels)
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name}{_labels_text(labels)} already registered "
                f"as {type(metric).__name__}"
            )
        return metric

    # -- introspection --------------------------------------------------

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self):
        for key in sorted(self._metrics):
            yield self._metrics[key]

    def value(self, name: str, **labels):
        """Current value of a counter/gauge (None if never recorded)."""
        metric = self._metrics.get((name, _labels_key(labels)))
        if metric is None:
            return None
        return metric.value

    def sum_of(self, name: str) -> int:
        """Total over every label combination of a counter family."""
        total = 0
        for (metric_name, _labels), metric in self._metrics.items():
            if metric_name == name and isinstance(metric, Counter):
                total += metric.value
        return total

    def reset(self) -> None:
        """Drop every recorded metric (per-simulation reuse)."""
        self._metrics.clear()

    def __eq__(self, other) -> bool:
        if not isinstance(other, MetricsRegistry):
            return NotImplemented
        return self.as_dict() == other.as_dict()

    # -- merging ---------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold ``other``'s metrics into this registry (returns self).

        Counters and histograms add; gauges keep the maximum (the only
        order-independent choice, which is what shard merging needs).
        Merging is associative and commutative, so any grouping of
        worker shards aggregates to the serial run's registry.
        """
        for key, metric in other._metrics.items():
            mine = self._metrics.get(key)
            if mine is None:
                self._metrics[key] = _copy_metric(metric)
            elif isinstance(metric, Counter):
                mine.inc(metric.value)
            elif isinstance(metric, Gauge):
                if metric.value > mine.value:
                    mine.set(metric.value)
            else:
                mine.merge(metric)
        return self

    @staticmethod
    def merged(shards: Iterable["MetricsRegistry"]) -> "MetricsRegistry":
        """A fresh registry holding the fold of every shard."""
        result = MetricsRegistry()
        for shard in shards:
            result.merge(shard)
        return result

    # -- serialization ---------------------------------------------------

    def as_dict(self) -> dict:
        """Deterministic JSON-safe snapshot (metrics sorted by key)."""
        return {
            "metrics": [
                self._metrics[key].as_dict()
                for key in sorted(self._metrics)
            ]
        }

    @staticmethod
    def from_dict(data: Mapping) -> "MetricsRegistry":
        """Rebuild a registry from an :meth:`as_dict` snapshot."""
        registry = MetricsRegistry()
        entries = data.get("metrics", [])
        if not isinstance(entries, list):
            raise ValueError("metrics snapshot: 'metrics' must be a list")
        for entry in entries:
            kind = entry.get("type")
            name = entry.get("name")
            if not isinstance(name, str):
                raise ValueError(f"metrics snapshot: bad name {name!r}")
            labels = entry.get("labels", {})
            if kind == "counter":
                registry.counter(name, **labels).inc(int(entry["value"]))
            elif kind == "gauge":
                registry.gauge(name, **labels).set(entry["value"])
            elif kind == "histogram":
                histogram = registry.histogram(
                    name, bounds=entry["bounds"], **labels
                )
                histogram.buckets = [int(b) for b in entry["buckets"]]
                histogram.count = int(entry["count"])
                histogram.sum = entry["sum"]
                histogram.max = entry["max"]
            else:
                raise ValueError(
                    f"metrics snapshot: unknown metric type {kind!r}"
                )
        return registry

    def canonical_json(self) -> str:
        """Byte-stable JSON rendering (golden-baseline comparisons)."""
        return json.dumps(
            self.as_dict(), sort_keys=True, separators=(",", ":")
        )

    def to_prometheus(self) -> str:
        """Prometheus text exposition (one ``# TYPE`` line per family).

        Histograms follow the standard cumulative-``le`` convention with
        ``_bucket``/``_sum``/``_count`` series.
        """
        lines: List[str] = []
        seen_type: Dict[str, str] = {}
        for metric in self:
            if isinstance(metric, Counter):
                family, kind = metric.name, "counter"
            elif isinstance(metric, Gauge):
                family, kind = metric.name, "gauge"
            else:
                family, kind = metric.name, "histogram"
            if family not in seen_type:
                seen_type[family] = kind
                lines.append(f"# TYPE {family} {kind}")
            if isinstance(metric, (Counter, Gauge)):
                lines.append(
                    f"{metric.name}{_labels_text(metric.labels)} "
                    f"{metric.value}"
                )
                continue
            cumulative = 0
            for bound, count in zip(metric.bounds, metric.buckets):
                cumulative += count
                bucket_labels = metric.labels + (("le", str(bound)),)
                lines.append(
                    f"{metric.name}_bucket{_labels_text(bucket_labels)} "
                    f"{cumulative}"
                )
            inf_labels = metric.labels + (("le", "+Inf"),)
            lines.append(
                f"{metric.name}_bucket{_labels_text(inf_labels)} "
                f"{metric.count}"
            )
            lines.append(
                f"{metric.name}_sum{_labels_text(metric.labels)} "
                f"{metric.sum}"
            )
            lines.append(
                f"{metric.name}_count{_labels_text(metric.labels)} "
                f"{metric.count}"
            )
        return "\n".join(lines) + ("\n" if lines else "")


def _copy_metric(metric):
    """Deep-enough copy so merging never aliases a shard's instruments."""
    if isinstance(metric, Counter):
        copy = Counter(metric.name, metric.labels)
        copy.value = metric.value
        return copy
    if isinstance(metric, Gauge):
        copy = Gauge(metric.name, metric.labels)
        copy.value = metric.value
        return copy
    copy = Histogram(metric.name, metric.labels, metric.bounds)
    copy.buckets = list(metric.buckets)
    copy.count = metric.count
    copy.sum = metric.sum
    copy.max = metric.max
    return copy


def active(registry: Optional[MetricsRegistry]) -> Optional[MetricsRegistry]:
    """Normalize an optional registry: disabled behaves exactly like None.

    Every instrumented component funnels its ``metrics`` argument through
    this helper, so "disabled" has a single definition repository-wide.
    """
    if registry is not None and registry.enabled:
        return registry
    return None
