"""Profile reports: machine-readable overhead anatomy + regression gate.

Turns a metrics-instrumented :class:`~repro.kernel.sim.KernelSim` run
into the paper's Section-3 measurement artefacts:

* per-primitive event counts and simulated-time costs, keyed by the
  paper's taxonomy (``rls``, ``sch``, ``cnt1``, ``cnt2``);
* queue-operation cost curves (the paper's δ for the ready queue, θ for
  the sleep queue) as a function of the per-core task count N;
* wall-clock self-profiling of the simulator's own handlers.

:func:`build_report` assembles the JSON document the ``repro profile``
CLI emits; :func:`compare_reports` is the tolerance-band comparison the
``benchmarks/profile_regression.py`` harness and the CI job gate on.

Comparison contract (see :mod:`repro.metrics.registry`): metrics named
``sim_*`` are simulated-time quantities and must match a golden baseline
**exactly** — any drift means simulator behaviour changed.  Metrics
named ``wall_*`` are wall-clock self-measurements: their event *counts*
are still deterministic and compared exactly, but their nanosecond
totals are machine-dependent and only checked within a relative
tolerance band (and only above a noise floor).  Everything else is
informational and never gated.
"""

from __future__ import annotations

import sys
from typing import Dict, List, Mapping, Optional, Tuple

from repro.metrics.registry import Counter, Gauge, Histogram, MetricsRegistry

#: Report layout version; bump when sections or metric names change so a
#: stale golden baseline fails loudly instead of half-matching.
PROFILE_SCHEMA_VERSION = 1

#: Simulator kernel-op kind -> paper primitive (Figure 1 taxonomy).
#: ``migrate_in`` is the destination core's release-path work for an
#: arriving subtask; ``demote`` is an overrun-policy ready-queue insert,
#: charged like the cnt2 re-queue it models.
PRIMITIVE_OF_OP: Dict[str, str] = {
    "release": "rls",
    "migrate_in": "rls",
    "sched": "sch",
    "cnt_in": "cnt1",
    "finish": "cnt2",
    "migrate_out": "cnt2",
    "demote": "cnt2",
}

#: Relative tolerance for wall-clock nanosecond totals.
DEFAULT_WALL_TOLERANCE = 0.20

#: Wall totals below this (ns) are pure timer noise; never gated.
WALL_NOISE_FLOOR_NS = 20_000


def build_report(
    registry: MetricsRegistry,
    scenario: Mapping,
    summary: Optional[Mapping] = None,
) -> dict:
    """Assemble the profile-report document.

    ``scenario`` identifies what was profiled (inputs, seeds, duration);
    ``summary`` carries headline simulation outputs (misses, releases).
    Both are embedded verbatim so a report is self-describing.
    """
    return {
        "schema": PROFILE_SCHEMA_VERSION,
        "environment": {
            "python": sys.version.split()[0],
            "platform": sys.platform,
        },
        "scenario": dict(scenario),
        "summary": dict(summary or {}),
        "metrics": registry.as_dict(),
        "derived": {
            "primitives": primitive_anatomy(registry),
            "queue_ops": queue_op_curves(registry),
        },
    }


def primitive_anatomy(registry: MetricsRegistry) -> dict:
    """Per-primitive (rls/sch/cnt1/cnt2) counts and simulated-time cost.

    Folds the per-op-kind counters the simulator records into the
    four-name taxonomy the paper's Figure 1 uses.
    """
    anatomy: Dict[str, Dict[str, int]] = {}
    for metric in registry:
        if not isinstance(metric, Counter):
            continue
        labels = dict(metric.labels)
        op = labels.get("op")
        if op is None:
            continue
        primitive = PRIMITIVE_OF_OP.get(op)
        if primitive is None:
            continue
        slot = anatomy.setdefault(
            primitive, {"count": 0, "sim_ns": 0}
        )
        if metric.name == "sim_kernel_ops_total":
            slot["count"] += metric.value
        elif metric.name == "sim_kernel_op_ns_total":
            slot["sim_ns"] += metric.value
    for slot in anatomy.values():
        slot["mean_ns"] = (
            round(slot["sim_ns"] / slot["count"], 3) if slot["count"] else 0.0
        )
    return {name: anatomy[name] for name in sorted(anatomy)}


def queue_op_curves(registry: MetricsRegistry) -> dict:
    """δ/θ-vs-N: wall-clock queue-op cost keyed by per-core task count.

    Returns ``{"ready": {N: {...}}, "sleep": {N: {...}}}`` with count,
    mean and max nanoseconds per operation — the shape of the paper's
    Table 1, measured on this implementation's own structures while the
    simulator drives them.
    """
    curves: Dict[str, Dict[int, dict]] = {"ready": {}, "sleep": {}}
    for metric in registry:
        if not isinstance(metric, Histogram):
            continue
        if metric.name != "wall_queue_op_ns":
            continue
        labels = dict(metric.labels)
        queue = labels.get("queue")
        if queue not in curves or "n" not in labels:
            continue
        n = int(labels["n"])
        slot = curves[queue].setdefault(
            n, {"count": 0, "sum_ns": 0, "max_ns": 0}
        )
        slot["count"] += metric.count
        slot["sum_ns"] += metric.sum
        if metric.max > slot["max_ns"]:
            slot["max_ns"] = metric.max
    result: Dict[str, dict] = {}
    for queue, by_n in curves.items():
        result[queue] = {}
        for n in sorted(by_n):
            slot = by_n[n]
            slot["mean_ns"] = (
                round(slot["sum_ns"] / slot["count"], 3)
                if slot["count"]
                else 0.0
            )
            result[queue][str(n)] = slot
    return result


def record_analysis_stats(
    registry: MetricsRegistry,
    stats,
    mode: str,
) -> None:
    """Publish an :class:`repro.analysis.incremental.AnalysisStats`
    snapshot as ``ana_*`` counters, labelled by analysis ``mode``
    (``"incremental"`` or ``"scratch"``).

    The ``ana_*`` family follows the ``sim_*`` convention — the numbers
    are deterministic functions of the task set and analysis mode, so a
    drift under a fixed scenario means analysis behaviour changed — but
    the family is *not* gated by :func:`compare_reports`: iteration
    counts legitimately differ between modes (that asymmetry is the
    point; ``benchmarks/perf_partition.py`` records both).
    """
    snapshot = stats.snapshot() if hasattr(stats, "snapshot") else dict(stats)
    registry.counter("ana_fixpoint_iterations_total", mode=mode).inc(
        snapshot["fixpoint_iterations"]
    )
    registry.counter("ana_rta_probes_total", mode=mode).inc(
        snapshot["probes"]
    )
    registry.counter("ana_budget_searches_total", mode=mode).inc(
        snapshot["budget_searches"]
    )
    registry.counter("ana_edf_tests_total", mode=mode).inc(
        snapshot["edf_tests"]
    )


def record_batch_stats(registry: MetricsRegistry, stats) -> None:
    """Publish a :class:`repro.analysis.batch.BatchStats` snapshot as the
    ``ana_batch_*`` counters of the ``ana_*`` family.

    Like :func:`record_analysis_stats`, deterministic but not gated by
    :func:`compare_reports`.  ``ana_batch_lanes_total`` counts task sets
    submitted to a batch verdict; ``ana_batch_lanes_fastpath_total`` the
    subset decided with zero vectorized fixed-point iterations;
    ``ana_batch_vector_iterations_total`` batched update steps (each
    advances every active lane at once); ``ana_batch_probes_total`` is
    labelled by admission ``kind`` (``rta`` / ``edf``);
    ``ana_batch_scalar_fallbacks_total`` counts lanes handed back to the
    scalar contexts.
    """
    snapshot = stats.snapshot() if hasattr(stats, "snapshot") else dict(stats)
    registry.counter("ana_batch_lanes_total").inc(snapshot["lanes"])
    registry.counter("ana_batch_lanes_fastpath_total").inc(
        snapshot["lanes_fastpath"]
    )
    registry.counter("ana_batch_vector_iterations_total").inc(
        snapshot["vector_iterations"]
    )
    registry.counter("ana_batch_probes_total", kind="rta").inc(
        snapshot["probes_rta"]
    )
    registry.counter("ana_batch_probes_total", kind="edf").inc(
        snapshot["probes_edf"]
    )
    registry.counter("ana_batch_scalar_fallbacks_total").inc(
        snapshot["scalar_fallbacks"]
    )


def _index_metrics(report: Mapping) -> Dict[Tuple[str, tuple], dict]:
    indexed: Dict[Tuple[str, tuple], dict] = {}
    for entry in report.get("metrics", {}).get("metrics", []):
        key = (
            entry["name"],
            tuple(sorted(entry.get("labels", {}).items())),
        )
        indexed[key] = entry
    return indexed


def _metric_id(key: Tuple[str, tuple]) -> str:
    name, labels = key
    if not labels:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return f"{name}{{{inner}}}"


def _within(golden: float, fresh: float, tolerance: float) -> bool:
    if golden == fresh:
        return True
    base = max(abs(golden), abs(fresh))
    return abs(fresh - golden) <= tolerance * base


def compare_reports(
    golden: Mapping,
    fresh: Mapping,
    wall_tolerance: Optional[float] = DEFAULT_WALL_TOLERANCE,
) -> List[str]:
    """Differences between a golden report and a fresh one.

    Returns human-readable discrepancy strings; empty means the fresh
    report is within contract.  Gating rules:

    * ``schema`` and ``scenario`` must match exactly (a changed scenario
      makes every other comparison meaningless);
    * ``sim_*`` metrics: exact match of every field, both directions
      (missing and unexpected metrics are discrepancies);
    * ``wall_*`` metrics: deterministic event counts exact; nanosecond
      totals within ``wall_tolerance`` relative difference, ignored
      below :data:`WALL_NOISE_FLOOR_NS`; bucket shapes and maxima are
      never gated (single-op maxima are dominated by scheduler jitter);
    * any other metric family: informational only.

    ``wall_tolerance=None`` skips the nanosecond-total checks entirely
    (event counts are still exact): the mode for comparing against a
    *committed* golden baseline, whose absolute wall-clock numbers came
    from a different machine.  The CI regression job pairs that with a
    same-machine run-vs-rerun wall check at the default ±20% band.
    """
    diffs: List[str] = []
    if golden.get("schema") != fresh.get("schema"):
        diffs.append(
            f"schema: golden {golden.get('schema')!r} != "
            f"fresh {fresh.get('schema')!r}"
        )
        return diffs
    if golden.get("scenario") != fresh.get("scenario"):
        diffs.append(
            f"scenario changed: golden {golden.get('scenario')!r} != "
            f"fresh {fresh.get('scenario')!r}"
        )
        return diffs
    golden_metrics = _index_metrics(golden)
    fresh_metrics = _index_metrics(fresh)
    for key in sorted(set(golden_metrics) | set(fresh_metrics)):
        name = key[0]
        in_golden = key in golden_metrics
        in_fresh = key in fresh_metrics
        gated = name.startswith("sim_") or name.startswith("wall_")
        if not (in_golden and in_fresh):
            if gated:
                where = "golden" if in_golden else "fresh"
                diffs.append(f"{_metric_id(key)}: only in {where} report")
            continue
        g, f = golden_metrics[key], fresh_metrics[key]
        if name.startswith("sim_"):
            if g != f:
                diffs.append(
                    f"{_metric_id(key)}: simulated-time mismatch "
                    f"(golden {g} != fresh {f})"
                )
        elif name.startswith("wall_"):
            g_count = g.get("count", g.get("value"))
            f_count = f.get("count", f.get("value"))
            if g.get("type") == "histogram":
                if g_count != f_count:
                    diffs.append(
                        f"{_metric_id(key)}: event count changed "
                        f"(golden {g_count} != fresh {f_count})"
                    )
                g_sum, f_sum = g.get("sum", 0), f.get("sum", 0)
                if (
                    wall_tolerance is not None
                    and max(g_sum, f_sum) >= WALL_NOISE_FLOOR_NS
                    and not _within(g_sum, f_sum, wall_tolerance)
                ):
                    diffs.append(
                        f"{_metric_id(key)}: wall-clock total drifted "
                        f"beyond {wall_tolerance:.0%} "
                        f"(golden {g_sum} ns, fresh {f_sum} ns)"
                    )
            elif name.endswith("_calls_total"):
                # Wall-clock *event counts* are deterministic: how many
                # times a handler ran depends on simulated time only.
                if g != f:
                    diffs.append(
                        f"{_metric_id(key)}: call count changed "
                        f"(golden {g} != fresh {f})"
                    )
            else:
                g_value, f_value = g.get("value", 0), f.get("value", 0)
                if (
                    wall_tolerance is not None
                    and max(g_value, f_value) >= WALL_NOISE_FLOOR_NS
                    and not _within(g_value, f_value, wall_tolerance)
                ):
                    diffs.append(
                        f"{_metric_id(key)}: wall-clock value drifted "
                        f"beyond {wall_tolerance:.0%} "
                        f"(golden {g_value}, fresh {f_value})"
                    )
    return diffs
