"""The experiment engine: cache resolution + parallel fan-out + merge.

``ExperimentEngine.run(units)`` returns one payload per unit, **in unit
order**, regardless of ``jobs`` or cache state.  The pipeline is:

1. resolve every unit against the :class:`ResultCache` (if configured),
   counting hits and misses;
2. execute the misses — serially for ``jobs == 1``, otherwise over a
   :class:`concurrent.futures.ProcessPoolExecutor` with chunked dispatch
   (``pool.map`` preserves input order, so merging is trivial and
   deterministic);
3. write freshly computed payloads back to the cache.

Because every unit is seeded independently, a parallel run is
bit-identical to a serial run — the engine only changes *where* and
*when* units execute, never *what* they compute.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.engine.cache import ResultCache
from repro.engine.units import WorkUnit, execute_unit, unit_fingerprint


@dataclass
class EngineStats:
    """Counters accumulated across every ``run()`` of one engine."""

    units: int = 0
    computed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    jobs: int = 1
    wall_s: float = 0.0

    def summary(self) -> str:
        parts = [
            f"{self.units} unit(s)",
            f"jobs={self.jobs}",
            f"computed={self.computed}",
        ]
        if self.cache_hits or self.cache_misses:
            parts.append(
                f"cache {self.cache_hits} hit(s) / "
                f"{self.cache_misses} miss(es)"
            )
        parts.append(f"{self.wall_s:.2f}s")
        return "engine: " + ", ".join(parts)


class ExperimentEngine:
    """Executes work units serially or across a process pool.

    Parameters
    ----------
    jobs:
        Worker-process count.  1 (the default) executes in-process with
        no multiprocessing machinery at all.
    cache:
        Optional :class:`ResultCache` (or a directory path for one).
        Off by default; hit/miss counters land in :attr:`stats`.
    chunks_per_worker:
        Dispatch granularity: misses are sent to the pool in chunks of
        roughly ``len(misses) / (jobs * chunks_per_worker)`` units —
        large enough to amortize pickling, small enough to load-balance.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        chunks_per_worker: int = 4,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        if chunks_per_worker < 1:
            raise ValueError("chunks_per_worker must be at least 1")
        if isinstance(cache, (str, bytes)) or hasattr(cache, "__fspath__"):
            cache = ResultCache(cache)
        self.jobs = jobs
        self.cache = cache
        self.chunks_per_worker = chunks_per_worker
        self.stats = EngineStats(jobs=jobs)

    def run(self, units: Sequence[WorkUnit]) -> List[dict]:
        """Execute ``units``; returns their payloads in unit order."""
        start = time.perf_counter()
        results: List[Optional[dict]] = [None] * len(units)
        keys: List[Optional[str]] = [None] * len(units)
        if self.cache is not None:
            pending: List[int] = []
            for index, unit in enumerate(units):
                key = unit_fingerprint(unit)
                keys[index] = key
                payload = self.cache.load(key)
                if payload is None:
                    self.stats.cache_misses += 1
                    pending.append(index)
                else:
                    self.stats.cache_hits += 1
                    results[index] = payload
        else:
            pending = list(range(len(units)))

        if pending:
            if self.jobs > 1 and len(pending) > 1:
                todo = [units[index] for index in pending]
                workers = min(self.jobs, len(pending))
                chunksize = max(
                    1,
                    -(-len(pending) // (self.jobs * self.chunks_per_worker)),
                )
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    payloads = list(
                        pool.map(execute_unit, todo, chunksize=chunksize)
                    )
                for index, payload in zip(pending, payloads):
                    results[index] = payload
            else:
                for index in pending:
                    results[index] = execute_unit(units[index])
            if self.cache is not None:
                for index in pending:
                    self.cache.store(keys[index], results[index])

        self.stats.units += len(units)
        self.stats.computed += len(pending)
        self.stats.wall_s += time.perf_counter() - start
        return results  # type: ignore[return-value]
