"""The experiment engine: cache resolution + parallel fan-out + merge,
hardened against worker crashes, hangs, and interrupted campaigns.

``ExperimentEngine.run(units)`` returns one payload per unit, **in unit
order**, regardless of ``jobs`` or cache state.  The pipeline is:

1. resolve every unit against the resume journal (if ``resume=True``)
   and the :class:`ResultCache` (if configured), counting hits/misses;
2. execute the misses — serially for ``jobs == 1``, otherwise over a
   :class:`concurrent.futures.ProcessPoolExecutor`:

   * with no robustness options set, the original chunked ``pool.map``
     fast path runs (large chunks amortize pickling);
   * with ``unit_timeout``/``retries``/``journal`` set, units are
     submitted individually so each future can be awaited with a
     wall-clock timeout and failed units can be retried with
     exponential backoff (plus deterministic jitter);

3. a :class:`~concurrent.futures.process.BrokenProcessPool` (a worker
   died) fails only that wave: the pool is rebuilt for the next retry
   attempt, and after ``max_pool_failures`` breakages the engine falls
   back to serial in-process execution — a campaign never dies with the
   pool;
4. freshly computed payloads are appended to the journal (checkpoint)
   and written back to the cache;
5. units that exhaust every attempt are **not** raised: their payload
   slot is ``None`` and a :class:`UnitFailure` manifest lands in
   :attr:`ExperimentEngine.last_failures` for the caller to surface.

Because every unit is seeded independently and executed purely, a
parallel, retried, or resumed run is bit-identical to a serial run — the
robustness machinery only changes *where* and *when* units execute,
never *what* they compute.
"""

from __future__ import annotations

import json
import random
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.engine.cache import ResultCache
from repro.engine.units import WorkUnit, execute_unit, unit_fingerprint
from repro.metrics.registry import active as _metrics_active


@dataclass(frozen=True)
class UnitFailure:
    """One unit that exhausted every execution attempt."""

    index: int  # position in the run's unit list
    kind: str  # the unit's kind tag
    fingerprint: str  # content hash (stable across runs)
    error: str  # last error observed
    attempts: int  # how many times execution was tried

    def as_dict(self) -> dict:
        return {
            "index": self.index,
            "kind": self.kind,
            "fingerprint": self.fingerprint,
            "error": self.error,
            "attempts": self.attempts,
        }


@dataclass
class EngineStats:
    """Counters accumulated across every ``run()`` of one engine."""

    units: int = 0
    computed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    journal_hits: int = 0
    journal_corrupt: int = 0
    retried: int = 0
    failed: int = 0
    pool_failures: int = 0
    jobs: int = 1
    wall_s: float = 0.0

    def summary(self) -> str:
        parts = [
            f"{self.units} unit(s)",
            f"jobs={self.jobs}",
            f"computed={self.computed}",
        ]
        if self.cache_hits or self.cache_misses:
            parts.append(
                f"cache {self.cache_hits} hit(s) / "
                f"{self.cache_misses} miss(es)"
            )
        if self.journal_hits:
            parts.append(f"resumed={self.journal_hits}")
        if self.journal_corrupt:
            parts.append(f"journal-corrupt={self.journal_corrupt}")
        if self.retried:
            parts.append(f"retried={self.retried}")
        if self.failed:
            parts.append(f"FAILED={self.failed}")
        if self.pool_failures:
            parts.append(f"pool-failures={self.pool_failures}")
        parts.append(f"{self.wall_s:.2f}s")
        return "engine: " + ", ".join(parts)


class ExperimentEngine:
    """Executes work units serially or across a process pool.

    Parameters
    ----------
    jobs:
        Worker-process count.  1 (the default) executes in-process with
        no multiprocessing machinery at all.
    cache:
        Optional :class:`ResultCache` (or a directory path for one).
        Off by default; hit/miss counters land in :attr:`stats`.
    chunks_per_worker:
        Dispatch granularity of the fast path: misses are sent to the
        pool in chunks of roughly ``len(misses) / (jobs *
        chunks_per_worker)`` units — large enough to amortize pickling,
        small enough to load-balance.
    unit_timeout:
        Per-unit wall-clock budget in seconds.  A pooled unit whose
        result is not available within the budget (measured from when
        the engine starts waiting on it) fails that attempt.  ``None``
        (default) waits forever.  Serial execution cannot preempt a
        running unit, so the timeout applies to pooled execution only.
    retries:
        How many times a failed (crashed, hung, or raising) unit is
        re-executed before it is declared failed.  0 by default.
    backoff_base:
        First-retry backoff in seconds; attempt ``k`` sleeps
        ``backoff_base * 2**(k-1)`` plus up to 25% deterministic jitter.
    max_pool_failures:
        After this many :class:`BrokenProcessPool` events the engine
        stops rebuilding pools and finishes the run serially.
    journal:
        Optional path to a JSONL checkpoint: every computed payload is
        appended (and flushed) as ``{"key": fingerprint, "payload":
        ...}``.  With ``resume=False`` an existing journal is truncated
        at the start of the first run.
    resume:
        Load the journal before executing and treat every unit whose
        fingerprint appears there as already done — an interrupted
        campaign recomputes only unfinished units.
    metrics:
        Optional :class:`~repro.metrics.registry.MetricsRegistry` (a
        disabled one counts as absent).  Every ``run()`` folds its
        engine counters into it (``engine_units_total``,
        ``engine_cache_hits_total``, ...) and observes the run's wall
        time in the ``wall_engine_run_ms`` histogram.  Purely
        observational: payloads, ordering, and failure handling are
        unaffected.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        chunks_per_worker: int = 4,
        unit_timeout: Optional[float] = None,
        retries: int = 0,
        backoff_base: float = 0.25,
        max_pool_failures: int = 3,
        journal: Union[str, Path, None] = None,
        resume: bool = False,
        metrics=None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        if chunks_per_worker < 1:
            raise ValueError("chunks_per_worker must be at least 1")
        if unit_timeout is not None and unit_timeout <= 0:
            raise ValueError("unit_timeout must be positive")
        if retries < 0:
            raise ValueError("retries must be non-negative")
        if backoff_base < 0:
            raise ValueError("backoff_base must be non-negative")
        if max_pool_failures < 1:
            raise ValueError("max_pool_failures must be at least 1")
        if isinstance(cache, (str, bytes)) or hasattr(cache, "__fspath__"):
            cache = ResultCache(cache)
        self.jobs = jobs
        self.cache = cache
        self.chunks_per_worker = chunks_per_worker
        self.unit_timeout = unit_timeout
        self.retries = retries
        self.backoff_base = backoff_base
        self.max_pool_failures = max_pool_failures
        self.journal = Path(journal) if journal is not None else None
        self.resume = resume
        self.stats = EngineStats(jobs=jobs)
        self.last_failures: List[UnitFailure] = []
        self._journal_ready = False
        self._journal_seen: Dict[str, dict] = {}
        self.metrics = _metrics_active(metrics)

    # ------------------------------------------------------------------
    # Journal (checkpoint/resume)
    # ------------------------------------------------------------------

    def _prepare_journal(self) -> None:
        """Load (resume) or truncate the journal on the first run."""
        if self.journal is None or self._journal_ready:
            return
        self._journal_ready = True
        if self.resume and self.journal.exists():
            self._journal_seen, corrupt = _load_journal(self.journal)
            if corrupt:
                # A SIGKILL mid-append (or disk trouble) leaves garbage
                # lines behind; resuming past them loses at most the
                # units they recorded — recomputed, never wrong — but
                # the damage must be visible, not silent.
                self.stats.journal_corrupt += corrupt
                if self.metrics is not None:
                    self.metrics.counter(
                        "engine_journal_corrupt_total"
                    ).inc(corrupt)
                sys.stderr.write(
                    f"engine: journal {self.journal}: skipped {corrupt} "
                    f"corrupt line(s); the unit(s) they recorded will be "
                    f"recomputed\n"
                )
        else:
            self.journal.parent.mkdir(parents=True, exist_ok=True)
            self.journal.write_text("", encoding="utf-8")

    def _journal_append(self, key: Optional[str], payload: dict) -> None:
        if self.journal is None or key is None:
            return
        line = json.dumps(
            {"key": key, "payload": payload}, sort_keys=True
        )
        with self.journal.open("a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    @property
    def _robust(self) -> bool:
        """Whether the per-unit submit path (timeout/retry/journal) is on."""
        return (
            self.unit_timeout is not None
            or self.retries > 0
            or self.journal is not None
        )

    def run(self, units: Sequence[WorkUnit]) -> List[Optional[dict]]:
        """Execute ``units``; payloads in unit order (None = failed)."""
        start = time.perf_counter()
        self.last_failures = []
        self._prepare_journal()
        results: List[Optional[dict]] = [None] * len(units)
        keys: List[Optional[str]] = [None] * len(units)
        need_keys = self.cache is not None or self.journal is not None
        pending: List[int] = []
        for index, unit in enumerate(units):
            if need_keys:
                keys[index] = unit_fingerprint(unit)
            if (
                self.journal is not None
                and keys[index] in self._journal_seen
            ):
                results[index] = self._journal_seen[keys[index]]
                self.stats.journal_hits += 1
                continue
            if self.cache is not None:
                payload = self.cache.load(keys[index])
                if payload is not None:
                    self.stats.cache_hits += 1
                    results[index] = payload
                    self._journal_append(keys[index], payload)
                    continue
                self.stats.cache_misses += 1
            pending.append(index)

        computed: List[int] = []
        if pending:
            if self._robust:
                computed = self._run_robust(units, pending, keys, results)
            else:
                computed = self._run_fast(units, pending, results)
            if self.cache is not None:
                for index in computed:
                    self.cache.store(keys[index], results[index])

        self.stats.units += len(units)
        self.stats.computed += len(computed)
        self.stats.failed += len(self.last_failures)
        wall_s = time.perf_counter() - start
        self.stats.wall_s += wall_s
        if self.metrics is not None:
            self._record_run_metrics(units, computed, wall_s)
        return results

    def _record_run_metrics(
        self, units: Sequence[WorkUnit], computed: List[int], wall_s: float
    ) -> None:
        """Fold one run's engine counters into the attached registry."""
        metrics = self.metrics
        metrics.counter("engine_runs_total").inc()
        metrics.counter("engine_units_total").inc(len(units))
        metrics.counter("engine_computed_total").inc(len(computed))
        metrics.counter("engine_failed_total").inc(len(self.last_failures))
        metrics.gauge("engine_jobs").set(self.jobs)
        for stat_name in ("cache_hits", "cache_misses", "journal_hits",
                          "retried", "pool_failures"):
            value = getattr(self.stats, stat_name)
            gauge = metrics.gauge(f"engine_{stat_name}")
            gauge.set(max(gauge.value, value))
        metrics.histogram(
            "wall_engine_run_ms",
            bounds=(1, 10, 100, 1_000, 10_000, 60_000, 600_000),
        ).observe(int(wall_s * 1000))

    # ------------------------------------------------------------------
    # Fast path: chunked pool.map (no timeout/retry/journal)
    # ------------------------------------------------------------------

    def _run_fast(
        self,
        units: Sequence[WorkUnit],
        pending: List[int],
        results: List[Optional[dict]],
    ) -> List[int]:
        if self.jobs > 1 and len(pending) > 1:
            todo = [units[index] for index in pending]
            workers = min(self.jobs, len(pending))
            chunksize = max(
                1,
                -(-len(pending) // (self.jobs * self.chunks_per_worker)),
            )
            try:
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    payloads = list(
                        pool.map(execute_unit, todo, chunksize=chunksize)
                    )
            except (BrokenProcessPool, OSError):
                # The pool died mid-map (a worker crashed, or the OS
                # refused to fork).  pool.map gives no per-unit results
                # back, so recompute everything serially — slower, but
                # the run completes.
                self.stats.pool_failures += 1
                for index in pending:
                    results[index] = execute_unit(units[index])
                return list(pending)
            for index, payload in zip(pending, payloads):
                results[index] = payload
        else:
            for index in pending:
                results[index] = execute_unit(units[index])
        return list(pending)

    # ------------------------------------------------------------------
    # Robust path: per-unit futures, waves of retries
    # ------------------------------------------------------------------

    def _run_robust(
        self,
        units: Sequence[WorkUnit],
        pending: List[int],
        keys: List[Optional[str]],
        results: List[Optional[dict]],
    ) -> List[int]:
        computed: List[int] = []
        remaining = list(pending)
        attempts = {index: 0 for index in pending}
        last_error = {index: "" for index in pending}
        use_pool = self.jobs > 1
        for attempt in range(self.retries + 1):
            if not remaining:
                break
            if attempt > 0:
                self.stats.retried += len(remaining)
                salt = keys[remaining[0]] or unit_fingerprint(
                    units[remaining[0]]
                )
                time.sleep(self._backoff_delay(attempt, salt))
            if use_pool and self.stats.pool_failures >= self.max_pool_failures:
                use_pool = False  # pool unusable: finish serially
            if use_pool:
                done, errors = self._pool_wave(units, remaining, results)
            else:
                done, errors = self._serial_wave(units, remaining, results)
            for index in done:
                attempts[index] += 1
                computed.append(index)
                self._journal_append(keys[index], results[index])
            for index, message in errors.items():
                attempts[index] += 1
                last_error[index] = message
            remaining = [index for index in remaining if index in errors]
        for index in remaining:
            self.last_failures.append(
                UnitFailure(
                    index=index,
                    kind=getattr(units[index], "kind", "?"),
                    fingerprint=keys[index] or unit_fingerprint(units[index]),
                    error=last_error[index],
                    attempts=attempts[index],
                )
            )
        computed.sort()
        return computed

    def _backoff_delay(self, attempt: int, salt: str = "") -> float:
        """Exponential backoff with deterministic jitter (up to +25%).

        The jitter is seeded from ``salt`` — the fingerprint of the
        wave's first remaining unit — so two engines retrying *different*
        work (e.g. the service's worker shards recovering from the same
        pool crash) wake up at different instants instead of thundering
        back in lockstep, while any single engine's schedule stays
        reproducible run over run.
        """
        base = self.backoff_base * (2 ** (attempt - 1))
        jitter = (
            random.Random(f"repro-backoff:{salt}:{attempt}").random() * 0.25
        )
        return base * (1.0 + jitter)

    def _pool_wave(
        self,
        units: Sequence[WorkUnit],
        wave: List[int],
        results: List[Optional[dict]],
    ):
        """One attempt over a fresh pool; returns (done, errors)."""
        done: List[int] = []
        errors: Dict[int, str] = {}
        workers = min(self.jobs, len(wave))
        try:
            pool = ProcessPoolExecutor(max_workers=workers)
        except OSError as exc:
            self.stats.pool_failures = self.max_pool_failures
            for index in wave:
                errors[index] = f"pool unavailable: {exc}"
            return done, errors
        broken = False
        timed_out = False
        try:
            futures = {
                index: pool.submit(execute_unit, units[index])
                for index in wave
            }
            for index in wave:
                future = futures[index]
                if broken:
                    # A dead worker poisons the whole pool; everything
                    # not yet collected fails this attempt immediately.
                    if not future.done():
                        errors[index] = "worker pool broke mid-wave"
                        continue
                try:
                    results[index] = future.result(timeout=self.unit_timeout)
                    done.append(index)
                except _FutureTimeout:
                    timed_out = True
                    errors[index] = (
                        f"timed out after {self.unit_timeout:g}s"
                    )
                except BrokenProcessPool as exc:
                    broken = True
                    errors[index] = f"worker crashed: {exc}"
                except Exception as exc:  # unit raised in the worker
                    errors[index] = f"{type(exc).__name__}: {exc}"
        finally:
            # Abandon hung workers instead of joining them; a fresh pool
            # is built for the next wave anyway.
            pool.shutdown(wait=not timed_out and not broken,
                          cancel_futures=True)
        if broken or timed_out:
            self.stats.pool_failures += 1
        return done, errors

    def _serial_wave(
        self,
        units: Sequence[WorkUnit],
        wave: List[int],
        results: List[Optional[dict]],
    ):
        """One in-process attempt (no timeout enforcement possible)."""
        done: List[int] = []
        errors: Dict[int, str] = {}
        for index in wave:
            try:
                results[index] = execute_unit(units[index])
                done.append(index)
            except Exception as exc:
                errors[index] = f"{type(exc).__name__}: {exc}"
        return done, errors


def _load_journal(path: Path) -> Tuple[Dict[str, dict], int]:
    """Parse a JSONL journal into ``(payloads-by-key, corrupt-lines)``.

    Truncated/corrupt lines (exactly what a SIGKILL mid-append leaves
    behind) and records of the wrong shape are skipped and *counted*, so
    the caller can surface the damage instead of silently recomputing.
    """
    seen: Dict[str, dict] = {}
    corrupt = 0
    try:
        text = path.read_text(encoding="utf-8")
    except OSError:
        return seen, corrupt
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            corrupt += 1  # half-written line from an interrupted run
            continue
        if (
            isinstance(record, dict)
            and isinstance(record.get("key"), str)
            and isinstance(record.get("payload"), dict)
        ):
            seen[record["key"]] = record["payload"]
        else:
            corrupt += 1
    return seen, corrupt
