"""Content-addressed on-disk result cache.

Each work unit's payload is stored as JSON under
``<root>/<key[:2]>/<key>.json``, where ``key`` is the unit's
:func:`~repro.engine.units.unit_fingerprint` — a SHA-256 over the unit's
full configuration plus the cache schema version.  Consequences:

* re-running a campaign after adding one algorithm or one utilization
  point recomputes only the new units — everything else is a hit;
* any change to a unit's configuration (seed, overhead constants, grid
  point, ...) changes the key, so stale results can never be returned;
* bumping :data:`~repro.engine.units.CACHE_SCHEMA_VERSION` invalidates
  the entire cache at once.

Corrupt or unreadable entries are treated as misses, never as errors:
a truncated or hand-edited file (e.g. a process killed mid-write despite
the atomic rename, a disk hiccup, or manual tampering) is *quarantined* —
renamed to ``<key>.json.corrupt`` so it stops shadowing the slot and
stays available for post-mortem inspection — and the unit is recomputed.
Writes go through a temporary file + :meth:`~pathlib.Path.replace` so a
crashed run cannot leave a half-written entry behind.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Optional, Union


class ResultCache:
    """A directory of content-addressed work-unit payloads."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)

    def path_for(self, key: str) -> Path:
        """Where a payload with fingerprint ``key`` lives (may not exist)."""
        return self.root / key[:2] / f"{key}.json"

    def load(self, key: str) -> Optional[dict]:
        """Return the cached payload for ``key``, or None on a miss.

        A corrupt entry (invalid JSON, or JSON that is not an object) is
        quarantined and reported as a miss — never an error.
        """
        path = self.path_for(key)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            return None
        try:
            payload = json.loads(text)
        except ValueError:
            self._quarantine(path)
            return None  # corrupt entry: recompute rather than fail
        if not isinstance(payload, dict):
            self._quarantine(path)
            return None
        return payload

    @staticmethod
    def _quarantine(path: Path) -> None:
        """Move a corrupt entry aside (``*.json.corrupt``) so it stops
        shadowing the slot; if even that fails, delete it; if the file
        is gone already, there is nothing to do."""
        try:
            path.replace(path.with_name(path.name + ".corrupt"))
        except OSError:
            try:
                path.unlink()
            except OSError:
                pass

    def store(self, key: str, payload: dict) -> None:
        """Persist ``payload`` under ``key`` (atomic rename)."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        tmp.write_text(
            json.dumps(payload, sort_keys=True), encoding="utf-8"
        )
        tmp.replace(path)

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).is_file()

    def entry_count(self) -> int:
        """Number of cached payloads on disk (walks the directory)."""
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ResultCache(root={str(self.root)!r})"
