"""Parallel, cache-aware experiment engine.

The paper's evaluation is a large factorial sweep: thousands of generated
task sets x algorithms x overhead models.  This package turns that sweep
into *work units* — self-describing, independently executable slices of an
experiment — and executes them either serially or over a process pool,
with an optional content-addressed on-disk result cache:

* :mod:`repro.engine.units` — the work-unit dataclasses
  (:class:`AcceptanceUnit`, :class:`SplittingUnit`), the process-pool-safe
  :func:`execute_unit` entry point, and the stable config fingerprint the
  cache keys on;
* :mod:`repro.engine.cache` — :class:`ResultCache`, a content-addressed
  JSON store under ``.repro-cache/`` (or any directory);
* :mod:`repro.engine.executor` — :class:`ExperimentEngine`, which resolves
  cache hits, fans the misses out over ``jobs`` worker processes with
  chunked dispatch, and merges everything back **in unit order**, so a
  parallel run is bit-identical to a serial run.

Determinism contract: every unit carries its own seed (derived from the
experiment seed and the unit's position, e.g. ``seed + 7919 *
point_index``), so results do not depend on which process computed them or
in which order they finished.
"""

from repro.engine.cache import ResultCache
from repro.engine.executor import EngineStats, ExperimentEngine
from repro.engine.units import (
    CACHE_SCHEMA_VERSION,
    AcceptanceUnit,
    SplittingUnit,
    execute_unit,
    unit_fingerprint,
    unit_spec,
)

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "AcceptanceUnit",
    "SplittingUnit",
    "EngineStats",
    "ExperimentEngine",
    "ResultCache",
    "execute_unit",
    "unit_fingerprint",
    "unit_spec",
]
