"""Parallel, cache-aware, fault-tolerant experiment engine.

The paper's evaluation is a large factorial sweep: thousands of generated
task sets x algorithms x overhead models.  This package turns that sweep
into *work units* — self-describing, independently executable slices of an
experiment — and executes them either serially or over a process pool,
with an optional content-addressed on-disk result cache:

* :mod:`repro.engine.units` — the work-unit dataclasses
  (:class:`AcceptanceUnit`, :class:`SplittingUnit`, plus the
  engine-robustness :class:`ChaosUnit`), the process-pool-safe
  :func:`execute_unit` entry point, and the stable config fingerprint the
  cache keys on;
* :mod:`repro.engine.cache` — :class:`ResultCache`, a content-addressed
  JSON store under ``.repro-cache/`` (or any directory); corrupt entries
  are quarantined and recomputed, never fatal;
* :mod:`repro.engine.executor` — :class:`ExperimentEngine`, which resolves
  cache hits, fans the misses out over ``jobs`` worker processes, and
  merges everything back **in unit order**, so a parallel run is
  bit-identical to a serial run.  Robustness options: per-unit wall-clock
  timeouts, retries with exponential backoff, automatic pool rebuild and
  serial fallback on :class:`~concurrent.futures.process.BrokenProcessPool`,
  a JSONL checkpoint journal with ``resume``, and a :class:`UnitFailure`
  manifest instead of an exception when a unit exhausts its attempts.

Determinism contract: every unit carries its own seed (derived from the
experiment seed and the unit's position, e.g. ``seed + 7919 *
point_index``), so results do not depend on which process computed them,
in which order they finished, or how often they were retried or resumed.
"""

from repro.engine.cache import ResultCache
from repro.engine.executor import EngineStats, ExperimentEngine, UnitFailure
from repro.engine.units import (
    CACHE_SCHEMA_VERSION,
    AcceptanceUnit,
    AdmissionUnit,
    ChaosUnit,
    CriteriaUnit,
    ProfileUnit,
    SplittingUnit,
    VerifyUnit,
    WorkloadUnit,
    execute_admission,
    execute_unit,
    unit_fingerprint,
    unit_spec,
)

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "AcceptanceUnit",
    "AdmissionUnit",
    "ChaosUnit",
    "CriteriaUnit",
    "ProfileUnit",
    "SplittingUnit",
    "VerifyUnit",
    "WorkloadUnit",
    "execute_admission",
    "EngineStats",
    "ExperimentEngine",
    "ResultCache",
    "UnitFailure",
    "execute_unit",
    "unit_fingerprint",
    "unit_spec",
]
