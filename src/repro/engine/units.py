"""Work units: self-describing, independently executable experiment slices.

A unit is one *utilization point* of one experiment configuration — the
granularity at which the existing harnesses already derive their per-point
seeds (``seed + 7919 * point_index`` for acceptance sweeps, ``seed +
104729 * point_index`` for splitting statistics).  Because each unit
carries everything needed to execute it (platform, workload, overhead
model, algorithms, seed), units can run in any order, in any process, and
the merged result is identical to the serial loops they replaced.

``execute_unit`` is a module-level function so it pickles cleanly for
:class:`concurrent.futures.ProcessPoolExecutor`; payloads are plain
JSON-serializable dicts of *exact* values (acceptance counts, not ratios)
so a cache round-trip cannot perturb downstream floating-point results.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from typing import Dict, Optional, Tuple, Union

from repro.model.generator import TaskSetGenerator
from repro.model.time import MS, SEC
from repro.overhead.model import OverheadModel
from repro.workload.profile import WorkloadProfile

#: Bump whenever unit semantics or payload layout change: the version is
#: hashed into every cache key, so stale cache entries are invalidated
#: wholesale instead of being misread.
#: v2: AcceptanceUnit grew the ``batch`` field (vectorized analysis).
#: v3: new WorkloadUnit kind (trace-driven scenario synthesis).
#: v4: new CriteriaUnit kind (multi-criteria campaign axes).
CACHE_SCHEMA_VERSION = 4


@dataclass(frozen=True)
class AcceptanceUnit:
    """One utilization point of an acceptance-ratio sweep.

    Executing it generates ``sets_per_point`` task sets with total
    utilization ``utilization * n_cores`` from ``seed`` and counts, per
    algorithm, how many pass the overhead-aware acceptance test.

    With ``batch=True`` the point's population is generated as one
    struct-of-arrays batch and analyzed by the vectorized kernels of
    :mod:`repro.analysis.batch` (scalar fallback for algorithms or
    populations the batch layer cannot express).  The payload is
    bit-identical either way; the flag only selects the engine.
    """

    n_cores: int
    n_tasks: int
    sets_per_point: int
    utilization: float  # normalized (U/m)
    seed: int
    algorithms: Tuple[str, ...]
    overheads: OverheadModel
    period_min: int = 10 * MS
    period_max: int = 1000 * MS
    batch: bool = False
    kind: str = "acceptance"


@dataclass(frozen=True)
class SplittingUnit:
    """One utilization point of the splitting-statistics experiment (E7)."""

    algorithm: str
    n_cores: int
    n_tasks: int
    sets_per_point: int
    utilization: float  # normalized (U/m)
    seed: int
    overheads: OverheadModel
    period_min: int = 10 * MS
    period_max: int = 1000 * MS
    kind: str = "splitting"


@dataclass(frozen=True)
class CriteriaUnit:
    """One utilization point of a multi-criteria campaign sweep.

    Executing it regenerates the same task-set population as the matching
    :class:`AcceptanceUnit` (same seed contract) and measures, per
    algorithm, the evaluation axes *beyond* acceptance:

    * static packing axes over **every** accepted assignment —
      spare-capacity balance (``min`` over cores of spare capacity
      divided by the mean spare, 1.0 = perfectly even) and bin-packing
      slack (``1 - total_utilization / m``);
    * dynamic axes from short :class:`~repro.kernel.sim.KernelSim` runs
      (two maximum periods of simulated time) over the first
      ``sim_sets`` accepted sets — preemptions and migrations per job
      release, mean platform power (mW) and energy per hyperperiod (uJ)
      from the simulation's energy ledger.

    Payload values are per-algorithm means; an algorithm that accepted
    no set maps to ``None`` (NaN downstream), and dynamic axes are
    ``None`` when no accepted set was simulated.  Global algorithms
    place tasks at runtime, so their static axes use the evenly-spread
    raw utilization and their simulations route through
    :func:`repro.kernel.global_sim.build_global_assignment`.
    """

    n_cores: int
    n_tasks: int
    sets_per_point: int
    utilization: float  # normalized (U/m)
    seed: int
    algorithms: Tuple[str, ...]
    overheads: OverheadModel
    period_min: int = 10 * MS
    period_max: int = 1000 * MS
    #: Cap on per-algorithm simulated sets (simulation dominates cost).
    sim_sets: int = 5
    kind: str = "criteria"


@dataclass(frozen=True)
class ChaosUnit:
    """A unit that misbehaves on demand — the engine-robustness harness.

    Used by the tests and the CI fault smoke to exercise the engine's
    timeout, retry, crash, and fallback paths with *controlled* failures:

    * ``mode="ok"`` — sleep ``sleep_s`` (if any) and return
      ``{"value": payload_value}``;
    * ``mode="error"`` — raise ``RuntimeError`` every time;
    * ``mode="crash"`` — kill the hosting process with ``os._exit`` (a
      worker crash; **never execute serially**);
    * ``mode="hang"`` — sleep ``sleep_s`` before returning (set it above
      the engine's ``unit_timeout`` to simulate a hung worker);
    * ``mode="crash-once"`` / ``mode="error-once"`` — fail only while
      the ``marker`` file does not exist (it is created just before the
      failure), so the first attempt dies and every retry succeeds.
    """

    mode: str = "ok"
    payload_value: int = 0
    sleep_s: float = 0.0
    marker: Optional[str] = None
    kind: str = "chaos"


@dataclass(frozen=True)
class AdmissionUnit:
    """One online admission-control query: *can this exact task set be
    scheduled on this platform?*

    The unit carries the task set verbatim — ``tasks`` is a tuple of
    ``(name, wcet_ns, period_ns, deadline_ns, wss_bytes)`` tuples — so
    its fingerprint is a content hash of the *query*, which is what the
    service's cache-only degradation tier answers from.  Execution mode
    (vectorized batch vs scalar incremental) is deliberately **not**
    part of the unit: both engines return bit-identical verdicts (the
    batch-vs-scratch differential pair enforces this), so a payload
    cached by either mode answers for both.
    """

    tasks: Tuple[Tuple[str, int, int, int, int], ...]
    n_cores: int
    algorithms: Tuple[str, ...]
    overheads: OverheadModel
    kind: str = "admission"


@dataclass(frozen=True)
class ProfileUnit:
    """One metrics-instrumented simulation of a generated scenario.

    Executing it generates a task set (``seed``), partitions it with
    ``algorithm``, runs a :class:`~repro.kernel.sim.KernelSim` with a
    fresh :class:`~repro.metrics.registry.MetricsRegistry` attached, and
    returns the registry snapshot plus a headline summary.  Snapshots
    are plain dicts, so shards from worker processes merge losslessly in
    the parent (``MetricsRegistry.from_dict(...)`` + ``merge``) — the
    merged registry's ``sim_*`` metrics equal a serial run's exactly.
    Rejected (unschedulable) scenarios return ``{"rejected": True}``.
    """

    n_cores: int
    n_tasks: int
    utilization: float  # normalized (U/m)
    seed: int
    algorithm: str
    overheads: OverheadModel
    duration_ms: int
    overrun_policy: str = "run-on"
    period_min: int = 10 * MS
    period_max: int = 1000 * MS
    kind: str = "profile"


@dataclass(frozen=True)
class VerifyUnit:
    """A contiguous slice of verification-harness trials.

    Executing it runs trials ``start .. start + count - 1`` of the
    :mod:`repro.verify.harness` (each trial derives its own RNG from
    ``seed`` and its index, so slicing is order-independent) and returns
    the failing trials as JSON payloads — scenario plus violation
    strings.  Shrinking happens in the parent process, not here: a unit
    payload must be cheap, cacheable raw data.
    """

    start: int
    count: int
    seed: int
    kind: str = "verify"


@dataclass(frozen=True)
class WorkloadUnit:
    """One synthesized trace-driven scenario: a point on a storm sweep.

    Executing it re-synthesizes the aperiodic job streams from the
    embedded fitted profile (:mod:`repro.workload`) at ``scale`` with
    the configured ON/OFF storm overlay, generates a hard periodic set
    when ``n_hard_tasks > 0``, routes the jobs through the chosen
    aperiodic server, and runs the exact event-driven server simulation.
    The unit carries the *whole* :class:`~repro.workload.profile.
    WorkloadProfile` (nested frozen dataclasses, so ``asdict`` gives a
    stable fingerprint and the unit pickles to process-pool workers);
    ``storm_intensity <= 1`` disables the storm overlay, and an empty
    ``stream`` synthesizes every stream in the profile.  Payloads are
    exact integer totals, never means.
    """

    profile: "WorkloadProfile"
    horizon_ms: int
    seed: int
    scale: float = 1.0
    stream: str = ""
    storm_intensity: float = 1.0
    storm_on_ms: int = 0
    storm_off_ms: int = 0
    server_kind: str = "deferrable"
    server_capacity_us: int = 2000
    server_period_us: int = 10000
    server_priority: int = 0
    n_hard_tasks: int = 0
    hard_utilization: float = 0.0
    period_min: int = 10 * MS
    period_max: int = 1000 * MS
    kind: str = "workload"


WorkUnit = Union[
    AcceptanceUnit,
    AdmissionUnit,
    SplittingUnit,
    ChaosUnit,
    CriteriaUnit,
    VerifyUnit,
    ProfileUnit,
    WorkloadUnit,
]


def unit_spec(unit: WorkUnit) -> dict:
    """The unit's full configuration as a JSON-safe nested dict."""
    return asdict(unit)


def unit_fingerprint(
    unit: WorkUnit, schema_version: Optional[int] = None
) -> str:
    """Stable content hash of a unit's configuration.

    Canonical JSON (sorted keys, no whitespace) of the unit's spec plus
    the cache schema version, SHA-256 hashed — the key under which
    :class:`repro.engine.cache.ResultCache` stores the unit's payload.
    """
    if schema_version is None:
        schema_version = CACHE_SCHEMA_VERSION
    blob = json.dumps(
        {"schema": schema_version, "unit": unit_spec(unit)},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def execute_unit(unit: WorkUnit) -> dict:
    """Execute one work unit and return its JSON-serializable payload.

    Module-level (pickled by reference) so it can be dispatched to a
    :class:`~concurrent.futures.ProcessPoolExecutor` worker.
    """
    if unit.kind == "acceptance":
        return _execute_acceptance(unit)
    if unit.kind == "splitting":
        return _execute_splitting(unit)
    if unit.kind == "criteria":
        return _execute_criteria(unit)
    if unit.kind == "chaos":
        return _execute_chaos(unit)
    if unit.kind == "verify":
        return _execute_verify(unit)
    if unit.kind == "profile":
        return _execute_profile(unit)
    if unit.kind == "admission":
        return execute_admission(unit)
    if unit.kind == "workload":
        # Lazy import: repro.workload.synth pulls in the servers layer,
        # which workers not running workload units never need.
        from repro.workload.synth import run_workload_unit

        return run_workload_unit(unit)
    raise ValueError(f"unknown work-unit kind {unit.kind!r}")


def admission_taskset(unit: AdmissionUnit):
    """Rebuild the unit's task set (rate-monotonic priorities assigned).

    Raises :class:`ValueError` for malformed tasks — the service maps
    that to a 400, never a traceback.
    """
    from repro.model.task import Task
    from repro.model.taskset import TaskSet

    tasks = [
        Task(name=name, wcet=wcet, period=period, deadline=deadline,
             wss=wss)
        for name, wcet, period, deadline, wss in unit.tasks
    ]
    return TaskSet(tasks).assign_rate_monotonic()


def execute_admission(unit: AdmissionUnit, mode: str = "scalar") -> dict:
    """Answer one admission query; payload is mode-independent.

    ``mode="batch"`` routes batchable algorithms through the vectorized
    kernels of :mod:`repro.analysis.batch` (a one-lane population);
    ``mode="scalar"`` uses the incremental per-core contexts.  Verdicts
    are bit-identical either way, so the payload carries no mode marker
    and a cache entry written by one mode answers queries served by the
    other.
    """
    from repro.experiments.algorithms import accept, accept_populations

    if mode not in ("batch", "scalar"):
        raise ValueError(f"unknown admission mode {mode!r}")
    taskset = admission_taskset(unit)
    if mode == "batch":
        from repro.analysis.batch import TaskSetPopulation

        population = TaskSetPopulation.from_tasksets([taskset])
        verdicts = accept_populations(
            list(unit.algorithms), population, unit.n_cores, unit.overheads
        )
        return {
            "verdicts": {
                name: bool(verdicts[name][0]) for name in unit.algorithms
            }
        }
    return {
        "verdicts": {
            name: bool(accept(name, taskset, unit.n_cores, unit.overheads))
            for name in unit.algorithms
        }
    }


def _execute_profile(unit: ProfileUnit) -> dict:
    from repro.experiments.algorithms import build_assignment
    from repro.kernel.sim import KernelSim
    from repro.metrics.registry import MetricsRegistry

    generator = TaskSetGenerator(
        n_tasks=unit.n_tasks,
        seed=unit.seed,
        period_min=unit.period_min,
        period_max=unit.period_max,
    )
    taskset = generator.generate(unit.utilization * unit.n_cores)
    assignment = build_assignment(
        unit.algorithm, taskset, unit.n_cores, unit.overheads
    )
    if assignment is None:
        return {"rejected": True, "metrics": None, "summary": None}
    registry = MetricsRegistry()
    result = KernelSim(
        assignment,
        unit.overheads,
        duration=unit.duration_ms * MS,
        execution_times={task.name: task.wcet for task in taskset},
        seed=unit.seed,
        overrun_policy=unit.overrun_policy,
        metrics=registry,
    ).run()
    return {
        "rejected": False,
        "metrics": registry.as_dict(),
        "summary": {
            "releases": result.releases,
            "misses": result.miss_count,
            "preemptions": result.preemptions,
            "migrations": result.migrations,
            "context_switches": result.context_switches,
            "overhead_ratio": result.total_overhead_ratio,
        },
    }


def _execute_verify(unit: VerifyUnit) -> dict:
    from repro.verify.harness import run_trial

    failures = []
    for index in range(unit.start, unit.start + unit.count):
        failure = run_trial(index, unit.seed)
        if failure is not None:
            failures.append(failure.as_dict())
    return {"trials": unit.count, "failures": failures}


def _execute_chaos(unit: ChaosUnit) -> dict:
    import os
    import time as _t
    from pathlib import Path as _Path

    mode = unit.mode
    if mode in ("crash-once", "error-once"):
        marker = _Path(unit.marker) if unit.marker else None
        if marker is None or marker.exists():
            mode = "ok"
        else:
            marker.touch()
            mode = mode[: -len("-once")]
    if mode == "ok":
        if unit.sleep_s > 0:
            _t.sleep(unit.sleep_s)
        return {"value": unit.payload_value}
    if mode == "error":
        raise RuntimeError("chaos unit: injected error")
    if mode == "crash":
        os._exit(13)  # simulate a worker process dying uncleanly
    if mode == "hang":
        _t.sleep(unit.sleep_s)
        return {"value": unit.payload_value}
    raise ValueError(f"unknown chaos mode {unit.mode!r}")


def _execute_acceptance(unit: AcceptanceUnit) -> dict:
    # Imported lazily: repro.experiments imports repro.engine back.
    from repro.experiments.algorithms import accept

    generator = TaskSetGenerator(
        n_tasks=unit.n_tasks,
        seed=unit.seed,
        period_min=unit.period_min,
        period_max=unit.period_max,
    )
    total = unit.utilization * unit.n_cores
    if unit.batch:
        from repro.analysis.batch import TaskSetPopulation
        from repro.experiments.algorithms import accept_populations

        generated = generator.generate_batch(total, unit.sets_per_point)
        population = TaskSetPopulation.from_arrays(
            generated.wcet,
            generated.period,
            generated.deadline,
            generated.wss,
            generated.names,
        )
        # One packing pass answers every batchable algorithm at once.
        verdicts = accept_populations(
            list(unit.algorithms), population, unit.n_cores, unit.overheads
        )
        accepted = {
            name: sum(verdicts[name]) for name in unit.algorithms
        }
        return {"accepted": accepted, "total": population.n_sets}
    tasksets = generator.generate_many(total, unit.sets_per_point)
    accepted: Dict[str, int] = {}
    for name in unit.algorithms:
        accepted[name] = sum(
            1
            for ts in tasksets
            if accept(name, ts, unit.n_cores, unit.overheads)
        )
    return {"accepted": accepted, "total": len(tasksets)}


def _execute_criteria(unit: CriteriaUnit) -> dict:
    import math

    from repro.experiments.algorithms import ALGORITHMS, build_assignment
    from repro.kernel.global_sim import build_global_assignment
    from repro.kernel.sim import KernelSim

    generator = TaskSetGenerator(
        n_tasks=unit.n_tasks,
        seed=unit.seed,
        period_min=unit.period_min,
        period_max=unit.period_max,
    )
    tasksets = generator.generate_many(
        unit.utilization * unit.n_cores, unit.sets_per_point
    )

    def _mean(values):
        return sum(values) / len(values)

    criteria: Dict[str, Optional[dict]] = {}
    accepted: Dict[str, int] = {}
    for name in unit.algorithms:
        spec = ALGORITHMS[name]
        static_rows = []  # (spare_balance, packing_slack)
        dynamic_rows = []  # (preempt/rel, migr/rel, power_mw, per_hp_uj)
        for taskset in tasksets:
            assignment = build_assignment(
                name, taskset, unit.n_cores, unit.overheads
            )
            if assignment is None:
                continue
            if spec.kind == "global":
                # Placement is a runtime decision; statically the load
                # is spread evenly (placeholder assignments are empty).
                total = sum(t.wcet / t.period for t in taskset)
                core_utils = [total / unit.n_cores] * unit.n_cores
            else:
                core_utils = [
                    core.utilization for core in assignment.cores
                ]
            spare = [max(0.0, 1.0 - u) for u in core_utils]
            mean_spare = _mean(spare)
            static_rows.append(
                (
                    min(spare) / mean_spare if mean_spare > 0 else 1.0,
                    1.0 - sum(core_utils) / unit.n_cores,
                )
            )
            if len(dynamic_rows) >= unit.sim_sets:
                continue
            result = KernelSim(
                build_global_assignment(taskset, unit.n_cores)
                if spec.kind == "global"
                else assignment,
                unit.overheads,
                duration=2 * max(task.period for task in taskset),
                execution_times={
                    task.name: task.wcet for task in taskset
                },
                seed=unit.seed,
                sched_class=spec.sched_class,
            ).run()
            releases = max(1, result.releases)
            hyperperiod = math.lcm(*(t.period for t in taskset))
            try:
                per_hp_uj = (
                    float(result.energy.energy_per_ns(hyperperiod)) / 1e6
                )
            except OverflowError:
                per_hp_uj = math.inf
            dynamic_rows.append(
                (
                    result.preemptions / releases,
                    result.migrations / releases,
                    float(result.energy.average_power_mw),
                    per_hp_uj,
                )
            )
        accepted[name] = len(static_rows)
        if not static_rows:
            criteria[name] = None
            continue
        entry = {
            "spare_balance": _mean([r[0] for r in static_rows]),
            "packing_slack": _mean([r[1] for r in static_rows]),
            "preemptions": None,
            "migrations": None,
            "avg_power_mw": None,
            "energy_per_hp_uj": None,
        }
        if dynamic_rows:
            entry["preemptions"] = _mean([r[0] for r in dynamic_rows])
            entry["migrations"] = _mean([r[1] for r in dynamic_rows])
            entry["avg_power_mw"] = _mean([r[2] for r in dynamic_rows])
            entry["energy_per_hp_uj"] = _mean(
                [r[3] for r in dynamic_rows]
            )
        criteria[name] = entry
    return {
        "accepted": accepted,
        "total": len(tasksets),
        "criteria": criteria,
    }


def _execute_splitting(unit: SplittingUnit) -> dict:
    from repro.experiments.algorithms import build_assignment

    generator = TaskSetGenerator(
        n_tasks=unit.n_tasks,
        seed=unit.seed,
        period_min=unit.period_min,
        period_max=unit.period_max,
    )
    sets_accepted = 0
    split_tasks_total = 0
    subtasks_total = 0
    migrations_per_second_total = 0.0
    for _ in range(unit.sets_per_point):
        taskset = generator.generate(unit.utilization * unit.n_cores)
        assignment = build_assignment(
            unit.algorithm, taskset, unit.n_cores, unit.overheads
        )
        if assignment is None:
            continue
        sets_accepted += 1
        split_tasks_total += assignment.n_split_tasks
        migrations_per_second = 0.0
        for split in assignment.split_tasks.values():
            subtasks_total += len(split.subtasks)
            migrations_per_second += (
                split.migration_count_per_job * SEC / split.task.period
            )
        migrations_per_second_total += migrations_per_second
    return {
        "sets_total": unit.sets_per_point,
        "sets_accepted": sets_accepted,
        "split_tasks_total": split_tasks_total,
        "subtasks_total": subtasks_total,
        "migrations_per_second_total": migrations_per_second_total,
    }
