"""Deterministic, seeded fault injection for the kernel simulator.

The paper evaluates its scheduler under nominal WCETs; this package asks
the complementary question — what a semi-partitioned schedule does when
reality deviates.  It provides:

* :mod:`repro.faults.plan` — :class:`FaultPlan` / :class:`TaskFaults`,
  the declarative fault model (overruns, release jitter, overhead
  spikes, dropped/late migrations) with JSON round-tripping for the
  CLI's ``--faults`` flag;
* :mod:`repro.faults.injector` — :class:`FaultInjector`, the seeded
  draw engine threaded through :class:`~repro.kernel.sim.KernelSim`;
* :mod:`repro.faults.log` — :class:`FaultEvent` / :class:`FaultLog`,
  the ordered record of every injected fault and policy action, carried
  on :class:`~repro.kernel.sim.SimulationResult`.

Overrun policies (``KernelSim(overrun_policy=...)``, names in
:data:`~repro.faults.plan.OVERRUN_POLICIES`):

* ``run-on`` — the default and the pre-fault behaviour: an overrunning
  job keeps its priority and simply runs longer;
* ``abort-job`` — budget enforcement: the job is killed the instant it
  has consumed its nominal demand, counted as an ``aborted`` deadline
  miss;
* ``demote`` — the job finishes its excess demand at background
  priority, below every other task on the core.

Determinism contract: the same simulation seed plus the same plan yields
bit-identical results — fault log included — regardless of how often or
where the run executes.
"""

from repro.faults.injector import FaultInjector
from repro.faults.log import EVENT_KINDS, FaultEvent, FaultLog
from repro.faults.plan import OVERRUN_POLICIES, FaultPlan, TaskFaults

__all__ = [
    "EVENT_KINDS",
    "OVERRUN_POLICIES",
    "FaultEvent",
    "FaultInjector",
    "FaultLog",
    "FaultPlan",
    "TaskFaults",
]
