"""The fault model: what can go wrong, how often, and how badly.

A :class:`FaultPlan` is a declarative, serializable description of the
deviations a :class:`~repro.kernel.sim.KernelSim` run should inject:

* **execution overruns** — with probability ``overrun_probability`` a job's
  actual demand is its nominal demand times ``overrun_factor`` (>= 1), so
  the job needs more CPU than the analysis budgeted for;
* **release jitter** — each release timer fires up to ``release_jitter_ns``
  late (uniform), while the job's deadline stays anchored at the nominal
  arrival, eating into its slack; when ``release_jitter_quantiles`` is
  set (a fitted quantile sketch, see
  :func:`repro.workload.calibrate.fitted_jitter_faults`) the delay is
  drawn by inverse transform from that *measured* distribution instead
  of the uniform bound;
* **overhead spikes** — with probability ``overhead_spike_probability`` a
  kernel op (release, scheduling pass, context switch) costs
  ``overhead_spike_factor`` times its modelled duration, emulating
  interrupt storms or cache-cold kernel paths;
* **migration faults** — a split task's budget-exhaustion migration is
  dropped (the in-flight job context is lost and the job is killed) with
  probability ``migration_drop_probability``, or arrives up to
  ``migration_delay_ns`` late with probability
  ``migration_delay_probability``.

Per-task overrides live in ``tasks``; tasks not named there use
``default``.  An all-defaults plan injects nothing (:attr:`is_empty`), and
the simulator treats it exactly like no plan at all — the zero-cost
default path.

Plans are plain data: :meth:`FaultPlan.to_dict` / :meth:`from_dict` /
:meth:`from_json_file` support the CLI's ``--faults plan.json`` flag, and
``seed`` is folded into the injector's RNG so the same (simulation seed,
plan) pair replays bit-identically.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, Tuple, Union

#: Overrun-policy names accepted by the simulator (validated here so the
#: CLI and KernelSim agree on the vocabulary).
OVERRUN_POLICIES = ("run-on", "abort-job", "demote")


def _check_probability(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")


@dataclass(frozen=True)
class TaskFaults:
    """Per-task fault parameters (all off by default).

    ``release_jitter_quantiles`` — when non-empty — is a fitted quantile
    sketch (values at evenly spaced cumulative probabilities, as produced
    by :class:`repro.workload.profile.EmpiricalDistribution`); the
    injector then draws jitter by inverse transform from it, and
    ``release_jitter_ns`` documents the distribution's bound.
    """

    overrun_factor: float = 1.0
    overrun_probability: float = 0.0
    release_jitter_ns: int = 0
    release_jitter_quantiles: Tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if self.overrun_factor < 1.0:
            raise ValueError(
                f"overrun_factor must be >= 1, got {self.overrun_factor!r}"
            )
        _check_probability("overrun_probability", self.overrun_probability)
        if self.release_jitter_ns < 0:
            raise ValueError(
                "release_jitter_ns must be non-negative, got "
                f"{self.release_jitter_ns!r}"
            )
        # JSON round-trips deliver lists; normalize so equality and
        # asdict stay canonical.
        object.__setattr__(
            self,
            "release_jitter_quantiles",
            tuple(float(q) for q in self.release_jitter_quantiles),
        )
        quantiles = self.release_jitter_quantiles
        if quantiles:
            if quantiles[0] < 0:
                raise ValueError(
                    "release_jitter_quantiles must be non-negative"
                )
            if any(b < a for a, b in zip(quantiles, quantiles[1:])):
                raise ValueError(
                    "release_jitter_quantiles must be non-decreasing"
                )

    @property
    def jitter_active(self) -> bool:
        if self.release_jitter_quantiles:
            return self.release_jitter_quantiles[-1] > 0
        return self.release_jitter_ns > 0

    @property
    def is_empty(self) -> bool:
        return (
            (self.overrun_probability == 0.0 or self.overrun_factor == 1.0)
            and not self.jitter_active
        )


@dataclass(frozen=True)
class FaultPlan:
    """A complete, seeded fault-injection configuration."""

    tasks: Dict[str, TaskFaults] = field(default_factory=dict)
    default: TaskFaults = field(default_factory=TaskFaults)
    overhead_spike_factor: float = 1.0
    overhead_spike_probability: float = 0.0
    migration_drop_probability: float = 0.0
    migration_delay_probability: float = 0.0
    migration_delay_ns: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.overhead_spike_factor < 1.0:
            raise ValueError(
                "overhead_spike_factor must be >= 1, got "
                f"{self.overhead_spike_factor!r}"
            )
        _check_probability(
            "overhead_spike_probability", self.overhead_spike_probability
        )
        _check_probability(
            "migration_drop_probability", self.migration_drop_probability
        )
        _check_probability(
            "migration_delay_probability", self.migration_delay_probability
        )
        if self.migration_delay_ns < 0:
            raise ValueError(
                "migration_delay_ns must be non-negative, got "
                f"{self.migration_delay_ns!r}"
            )

    def spec_for(self, task_name: str) -> TaskFaults:
        """The fault parameters applying to ``task_name``."""
        return self.tasks.get(task_name, self.default)

    @property
    def is_empty(self) -> bool:
        """True when the plan injects nothing at all."""
        return (
            self.default.is_empty
            and all(spec.is_empty for spec in self.tasks.values())
            and (
                self.overhead_spike_probability == 0.0
                or self.overhead_spike_factor == 1.0
            )
            and self.migration_drop_probability == 0.0
            and (
                self.migration_delay_probability == 0.0
                or self.migration_delay_ns == 0
            )
        )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        return asdict(self)

    @staticmethod
    def from_dict(data: dict) -> "FaultPlan":
        if not isinstance(data, dict):
            raise ValueError(
                f"fault plan must be a JSON object, got {type(data).__name__}"
            )
        known = set(FaultPlan.__dataclass_fields__)
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown fault-plan field(s) {sorted(unknown)}; "
                f"valid fields: {sorted(known)}"
            )
        kwargs = dict(data)
        if "default" in kwargs:
            kwargs["default"] = _task_faults_from(kwargs["default"], "default")
        if "tasks" in kwargs:
            tasks = kwargs["tasks"]
            if not isinstance(tasks, dict):
                raise ValueError("fault-plan 'tasks' must be an object")
            kwargs["tasks"] = {
                name: _task_faults_from(spec, f"tasks[{name!r}]")
                for name, spec in tasks.items()
            }
        return FaultPlan(**kwargs)

    @staticmethod
    def from_json_file(path: Union[str, Path]) -> "FaultPlan":
        text = Path(path).read_text(encoding="utf-8")
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise ValueError(f"fault plan {path}: invalid JSON ({exc})")
        return FaultPlan.from_dict(data)


def _task_faults_from(data, where: str) -> TaskFaults:
    if isinstance(data, TaskFaults):
        return data
    if not isinstance(data, dict):
        raise ValueError(f"fault-plan {where} must be an object")
    known = set(TaskFaults.__dataclass_fields__)
    unknown = set(data) - known
    if unknown:
        raise ValueError(
            f"unknown field(s) {sorted(unknown)} in fault-plan {where}; "
            f"valid fields: {sorted(known)}"
        )
    return TaskFaults(**data)
