"""Fault-event recording.

Every injected fault and every overrun-policy action taken by the
simulator lands in a :class:`FaultLog` as a :class:`FaultEvent`, in
simulation order — so two runs with the same seed and the same
:class:`~repro.faults.plan.FaultPlan` produce bit-identical logs
(:meth:`FaultLog.as_dicts` is the canonical comparable form).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

#: Event kinds a log may contain (documentation; the log itself is open).
EVENT_KINDS = (
    "overrun",  # a job's demand was inflated past its nominal C
    "release_jitter",  # a release timer fired late
    "overhead_spike",  # a kernel op cost a multiple of its modelled time
    "migration_drop",  # a budget-exhaustion migration lost the job
    "migration_delay",  # a migration arrived late at the destination
    "abort",  # policy action: job killed at nominal C
    "demote",  # policy action: job demoted to background priority
)


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault or policy action."""

    time: int
    kind: str
    task: str  # task name ("" for task-independent faults)
    core: int  # core index (-1 when not core-bound)
    detail: str  # compact "key=value" description

    def as_dict(self) -> dict:
        return {
            "time": self.time,
            "kind": self.kind,
            "task": self.task,
            "core": self.core,
            "detail": self.detail,
        }


@dataclass
class FaultLog:
    """Ordered record of everything the fault layer did to a run."""

    events: List[FaultEvent] = field(default_factory=list)

    def record(
        self, time: int, kind: str, task: str = "", core: int = -1,
        detail: str = "",
    ) -> None:
        self.events.append(FaultEvent(time, kind, task, core, detail))

    def __len__(self) -> int:
        return len(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    def __iter__(self):
        return iter(self.events)

    @property
    def counts(self) -> Dict[str, int]:
        """Event count per kind, insertion-ordered."""
        out: Dict[str, int] = {}
        for event in self.events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out

    def of_kind(self, kind: str) -> List[FaultEvent]:
        return [event for event in self.events if event.kind == kind]

    def as_dicts(self) -> List[dict]:
        """JSON-safe list form — the canonical bit-comparable encoding."""
        return [event.as_dict() for event in self.events]

    def summary(self) -> str:
        """One line: ``faults: none`` or ``faults: overrun=3 abort=3 ...``."""
        if not self.events:
            return "faults: none"
        parts = [f"{kind}={n}" for kind, n in self.counts.items()]
        return "faults: " + " ".join(parts)
