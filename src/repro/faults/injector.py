"""Deterministic fault injection.

The :class:`FaultInjector` owns a dedicated RNG, seeded from the
simulation seed *and* the plan's own seed, so

* an empty plan never perturbs the simulator's existing random streams
  (sporadic jitter, execution variation keep their sequences), and
* the same ``(seed, plan)`` pair draws the identical fault sequence on
  every run — the determinism contract extends to injected faults.

String seeding (``random.Random(str)``) hashes with SHA-512 and is stable
across processes and Python versions, unlike ``hash()``.
"""

from __future__ import annotations

import random
from typing import Tuple

from repro.faults.log import FaultLog
from repro.faults.plan import FaultPlan

#: Migration fates returned by :meth:`FaultInjector.migration_fate`.
MIGRATION_OK = "ok"
MIGRATION_DROP = "drop"
MIGRATION_LATE = "late"


class FaultInjector:
    """Draws faults from a :class:`FaultPlan` and records them."""

    def __init__(self, plan: FaultPlan, seed: int) -> None:
        self.plan = plan
        self._rng = random.Random(f"repro-faults:{seed}:{plan.seed}")
        self.log = FaultLog()

    # ------------------------------------------------------------------
    # Draw points (each consumes RNG deterministically, in sim order)
    # ------------------------------------------------------------------

    def draw_work(
        self, task: str, nominal: int, t: int, core: int
    ) -> int:
        """Actual demand for a job whose nominal demand is ``nominal``.

        Returns ``nominal`` unchanged, or an inflated demand (recorded as
        an ``overrun`` event) when the per-task overrun fault fires.
        """
        spec = self.plan.spec_for(task)
        if spec.overrun_probability <= 0.0 or spec.overrun_factor <= 1.0:
            return nominal
        if self._rng.random() >= spec.overrun_probability:
            return nominal
        work = max(nominal + 1, int(round(nominal * spec.overrun_factor)))
        self.log.record(
            t, "overrun", task, core,
            f"nominal={nominal} actual={work} "
            f"factor={spec.overrun_factor:g}",
        )
        return work

    def draw_release_jitter(self, task: str) -> int:
        """Extra delay (ns) before this release timer fires.

        The caller records the event only for releases inside the
        horizon; the draw itself always happens so the RNG stream does
        not depend on the horizon.  With a fitted quantile sketch on the
        task's spec the delay is an inverse-transform draw from the
        measured distribution; otherwise uniform in
        ``[0, release_jitter_ns]``.  Either path consumes exactly one
        draw, so swapping models does not shift other fault streams.
        """
        spec = self.plan.spec_for(task)
        if not spec.jitter_active:
            return 0
        quantiles = spec.release_jitter_quantiles
        if quantiles:
            if len(quantiles) == 1 or quantiles[0] == quantiles[-1]:
                self._rng.random()
                return int(round(quantiles[0]))
            position = self._rng.random() * (len(quantiles) - 1)
            low = int(position)
            frac = position - low
            if low + 1 < len(quantiles) and frac > 0:
                value = quantiles[low] + (
                    quantiles[low + 1] - quantiles[low]
                ) * frac
            else:
                value = quantiles[low]
            return int(round(value))
        return self._rng.randint(0, spec.release_jitter_ns)

    def spike(self, op_kind: str, duration: int, t: int, core: int) -> int:
        """Possibly inflate a kernel op's duration (overhead spike)."""
        plan = self.plan
        if (
            plan.overhead_spike_probability <= 0.0
            or plan.overhead_spike_factor <= 1.0
            or duration <= 0
        ):
            return duration
        if self._rng.random() >= plan.overhead_spike_probability:
            return duration
        spiked = int(round(duration * plan.overhead_spike_factor))
        self.log.record(
            t, "overhead_spike", "", core,
            f"op={op_kind} base={duration} spiked={spiked}",
        )
        return spiked

    def migration_fate(self, task: str, t: int, core: int) -> Tuple[str, int]:
        """Fate of a budget-exhaustion migration: ``(kind, delay_ns)``.

        ``("drop", 0)`` — the migration is lost (job context destroyed);
        ``("late", d)`` — the subtask arrives ``d`` ns late;
        ``("ok", 0)`` — the migration proceeds normally.
        """
        plan = self.plan
        if plan.migration_drop_probability > 0.0:
            if self._rng.random() < plan.migration_drop_probability:
                self.log.record(t, "migration_drop", task, core)
                return MIGRATION_DROP, 0
        if (
            plan.migration_delay_probability > 0.0
            and plan.migration_delay_ns > 0
        ):
            if self._rng.random() < plan.migration_delay_probability:
                delay = self._rng.randint(1, plan.migration_delay_ns)
                self.log.record(
                    t, "migration_delay", task, core, f"delay={delay}"
                )
                return MIGRATION_LATE, delay
        return MIGRATION_OK, 0

    # ------------------------------------------------------------------
    # Bookkeeping for the simulator's policy actions
    # ------------------------------------------------------------------

    def record_jitter(self, t: int, task: str, core: int, delay: int) -> None:
        self.log.record(t, "release_jitter", task, core, f"delay={delay}")

    def record_policy(
        self, t: int, action: str, task: str, core: int, detail: str = ""
    ) -> None:
        self.log.record(t, action, task, core, detail)
