"""Single-core simulation of hard periodic tasks + one aperiodic server.

A compact, exact event-driven model (independent of the kernel simulator —
servers change the dispatching rules enough that a dedicated loop is
clearer and doubles as a cross-check):

* hard tasks: synchronous periodic, preemptive fixed priority, worst-case
  execution every job;
* aperiodic jobs: FIFO, served by the chosen policy —
  ``PollingServer`` / ``DeferrableServer`` at the server's priority, or
  background service (no server: aperiodic work runs only on idle time).

Reports hard-deadline misses and aperiodic response statistics.  Pass a
:class:`ServerLedger` to additionally record every budget transition
(replenish / consume / forfeit) and every miss with its *kind*
(``completed-late`` vs ``abandoned``) — the golden storm traces pin the
full ledger, and :func:`check_server_ledger` is the matching oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.model.task import Task
from repro.servers.server import AperiodicJob

#: Miss kinds recorded in the ledger.
MISS_COMPLETED_LATE = "completed-late"
MISS_ABANDONED = "abandoned"


@dataclass
class ServerLedger:
    """Budget-event and miss-kind journal of one server simulation.

    ``events`` are ``{"t", "kind", "amount"}`` dicts in simulation
    order: ``replenish`` sets the budget to ``amount``, ``consume``
    subtracts ``amount``, ``forfeit`` zeroes it (``amount`` is the
    budget lost — polling servers only).  ``misses`` are
    ``{"t", "task", "kind"}`` dicts.  Everything is plain JSON, so
    golden traces can pin a ledger byte-exactly.
    """

    events: List[dict] = field(default_factory=list)
    misses: List[dict] = field(default_factory=list)

    def record(self, t: int, kind: str, amount: int) -> None:
        self.events.append({"t": t, "kind": kind, "amount": amount})

    def record_miss(self, t: int, task: str, kind: str) -> None:
        self.misses.append({"t": t, "task": task, "kind": kind})

    def miss_kinds(self) -> dict:
        counts: dict = {}
        for miss in self.misses:
            counts[miss["kind"]] = counts.get(miss["kind"], 0) + 1
        return counts

    def as_dict(self) -> dict:
        return {"events": self.events, "misses": self.misses}


def check_server_ledger(
    ledger: ServerLedger, server=None
) -> List[str]:
    """Semantic oracle over a :class:`ServerLedger`.

    Replays the budget algebra and returns violation strings (empty =
    consistent): events in time order, replenishes to exactly the
    capacity, consumption never exceeding the running budget, forfeits
    only for polling servers and only of the exact remaining budget,
    and only known miss kinds.
    """
    violations: List[str] = []
    if server is None:
        if ledger.events:
            violations.append(
                "background service recorded "
                f"{len(ledger.events)} budget event(s); expected none"
            )
    else:
        budget = 0
        last_t = 0
        for index, event in enumerate(ledger.events):
            t, kind, amount = event["t"], event["kind"], event["amount"]
            where = f"event {index} (t={t}, kind={kind})"
            if t < last_t:
                violations.append(f"{where}: time went backwards")
            last_t = t
            if kind == "replenish":
                if amount != server.capacity:
                    violations.append(
                        f"{where}: replenished {amount}, "
                        f"capacity is {server.capacity}"
                    )
                budget = amount
            elif kind == "consume":
                if amount <= 0:
                    violations.append(f"{where}: non-positive consume")
                if amount > budget:
                    violations.append(
                        f"{where}: consumed {amount} with only "
                        f"{budget} budget"
                    )
                budget -= amount
            elif kind == "forfeit":
                if server.kind != "polling":
                    violations.append(
                        f"{where}: {server.kind} server forfeited budget"
                    )
                if amount != budget:
                    violations.append(
                        f"{where}: forfeited {amount}, "
                        f"had {budget}"
                    )
                budget = 0
            else:
                violations.append(f"{where}: unknown event kind")
    for index, miss in enumerate(ledger.misses):
        if miss["kind"] not in (MISS_COMPLETED_LATE, MISS_ABANDONED):
            violations.append(
                f"miss {index}: unknown kind {miss['kind']!r}"
            )
    return violations


@dataclass
class AperiodicStats:
    """Response-time statistics for the aperiodic stream."""

    completed: int = 0
    total_response: int = 0
    max_response: int = 0
    unfinished: int = 0

    @property
    def mean_response(self) -> float:
        return self.total_response / self.completed if self.completed else 0.0

    def record(self, response: int) -> None:
        self.completed += 1
        self.total_response += response
        self.max_response = max(self.max_response, response)


@dataclass
class _HardJob:
    task_index: int
    release: int
    deadline: int
    remaining: int


@dataclass
class _ApJob:
    job: AperiodicJob
    remaining: int


def simulate_with_server(
    tasks: Sequence[Task],
    aperiodics: Sequence[AperiodicJob],
    horizon: int,
    server=None,
    server_priority: int = 0,
    ledger: Optional[ServerLedger] = None,
) -> Tuple[int, AperiodicStats]:
    """Simulate; returns ``(hard_deadline_misses, aperiodic_stats)``.

    ``tasks`` must be sorted highest priority first.  ``server=None`` means
    background service.  ``server_priority`` is the insertion index of the
    server in the hard priority order (0 = above every hard task).
    ``ledger`` (optional) records budget events and per-miss kinds; it
    never changes the simulation itself.
    """
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    pending_ap: List[_ApJob] = [
        _ApJob(job=j, remaining=j.work)
        for j in sorted(aperiodics, key=lambda j: j.arrival)
    ]
    arrived_ap: List[_ApJob] = []
    hard_ready: List[_HardJob] = []
    stats = AperiodicStats()
    misses = 0

    budget = 0
    polling_active = False
    if server is not None:
        budget = server.capacity
        next_replenish = server.period
        if server.kind == "polling":
            polling_active = False  # set at t=0 below
    else:
        next_replenish = None

    next_release = [0] * len(tasks)
    t = 0

    def admit_arrivals(now: int) -> None:
        while pending_ap and pending_ap[0].job.arrival <= now:
            arrived_ap.append(pending_ap.pop(0))

    def release_hard(now: int) -> int:
        nonlocal misses
        for index, task in enumerate(tasks):
            while next_release[index] <= now:
                release = next_release[index]
                hard_ready.append(
                    _HardJob(
                        task_index=index,
                        release=release,
                        deadline=release + task.deadline,
                        remaining=task.wcet,
                    )
                )
                next_release[index] += task.period
        # No hard tasks (pure aperiodic workload): never a release event.
        return min(next_release) if next_release else horizon

    def poll(now: int) -> None:
        """Polling-server replenishment bookkeeping."""
        nonlocal budget, polling_active
        if server is None:
            return
        if server.kind == "polling":
            if arrived_ap:
                if ledger is not None:
                    ledger.record(now, "replenish", server.capacity)
                budget = server.capacity
                polling_active = True
            else:
                # An empty queue at the poll instant forfeits the whole
                # budget: grant then immediately lose it, so the ledger
                # algebra (replenish -> forfeit of the full amount)
                # replays exactly.
                if ledger is not None:
                    ledger.record(now, "replenish", server.capacity)
                    ledger.record(now, "forfeit", server.capacity)
                budget = 0
                polling_active = False
        else:  # deferrable
            if ledger is not None:
                ledger.record(now, "replenish", server.capacity)
            budget = server.capacity

    # t = 0 bookkeeping.
    admit_arrivals(0)
    upcoming_hard = release_hard(0)
    if server is not None:
        poll(0)

    while t < horizon:
        # Decide who runs at time t.
        hard_ready.sort(key=lambda j: (j.task_index, j.release))
        runner = None  # "hard" | "server" | "background"
        hard_job: Optional[_HardJob] = None

        server_eligible = (
            server is not None
            and arrived_ap
            and budget > 0
            and (server.kind == "deferrable" or polling_active)
        )
        # Priority comparison: server sits at index server_priority.
        if hard_ready:
            hard_job = hard_ready[0]
        if server_eligible and (
            hard_job is None or server_priority <= hard_job.task_index
        ):
            runner = "server"
        elif hard_job is not None:
            runner = "hard"
        elif server is None and arrived_ap:
            runner = "background"

        # Next scheduling point.
        boundaries = [horizon]
        if upcoming_hard < horizon:
            boundaries.append(upcoming_hard)
        if pending_ap:
            boundaries.append(pending_ap[0].job.arrival)
        if next_replenish is not None and next_replenish < horizon:
            boundaries.append(next_replenish)
        if runner == "hard":
            boundaries.append(t + hard_job.remaining)
        elif runner == "server":
            boundaries.append(t + min(arrived_ap[0].remaining, budget))
        elif runner == "background":
            boundaries.append(t + arrived_ap[0].remaining)
        next_t = min(b for b in boundaries if b > t)
        span = next_t - t

        # Execute.
        if runner == "hard":
            hard_job.remaining -= span
            if hard_job.remaining == 0:
                if next_t > hard_job.deadline:
                    misses += 1
                    if ledger is not None:
                        ledger.record_miss(
                            next_t,
                            tasks[hard_job.task_index].name,
                            MISS_COMPLETED_LATE,
                        )
                hard_ready.remove(hard_job)
        elif runner in ("server", "background"):
            ap = arrived_ap[0]
            ap.remaining -= span
            if runner == "server":
                budget -= span
                if ledger is not None:
                    ledger.record(t, "consume", span)
            if ap.remaining == 0:
                stats.record(next_t - ap.job.arrival)
                arrived_ap.pop(0)
                if (
                    server is not None
                    and server.kind == "polling"
                    and not arrived_ap
                ):
                    # Polling server forfeits leftover budget when the
                    # queue empties.
                    if ledger is not None and budget > 0:
                        ledger.record(next_t, "forfeit", budget)
                    budget = 0
                    polling_active = False

        t = next_t
        admit_arrivals(t)
        if upcoming_hard <= t:
            upcoming_hard = release_hard(t)
        if next_replenish is not None and next_replenish <= t:
            poll(t)
            next_replenish += server.period

        # Hard jobs past their deadline but unfinished: count once.
        for job in list(hard_ready):
            if job.deadline <= t and job.remaining > 0:
                misses += 1
                if ledger is not None:
                    ledger.record_miss(
                        t, tasks[job.task_index].name, MISS_ABANDONED
                    )
                hard_ready.remove(job)

    stats.unfinished = len(arrived_ap) + len(pending_ap)
    return misses, stats
