"""Server definitions and aperiodic workload streams."""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Union


@dataclass(frozen=True)
class AperiodicJob:
    """One aperiodic request: ``work`` ns arriving at ``arrival`` ns."""

    arrival: int
    work: int

    def __post_init__(self) -> None:
        if self.arrival < 0:
            raise ValueError("arrival must be non-negative")
        if self.work <= 0:
            raise ValueError("work must be positive")


@dataclass(frozen=True)
class PollingServer:
    """Polling server: budget available only at replenishment instants.

    At each period start the server polls the aperiodic queue; if it is
    empty the whole budget is forfeited until the next period.
    """

    capacity: int
    period: int
    name: str = "server"

    def __post_init__(self) -> None:
        if not 0 < self.capacity <= self.period:
            raise ValueError("need 0 < capacity <= period")

    @property
    def utilization(self) -> float:
        return self.capacity / self.period

    @property
    def kind(self) -> str:
        return "polling"


@dataclass(frozen=True)
class DeferrableServer:
    """Deferrable server: budget preserved across the period.

    Aperiodic work is served at the server's priority the moment it
    arrives, as long as budget remains; the budget resets to full at each
    period boundary (no carry-over).
    """

    capacity: int
    period: int
    name: str = "server"

    def __post_init__(self) -> None:
        if not 0 < self.capacity <= self.period:
            raise ValueError("need 0 < capacity <= period")

    @property
    def utilization(self) -> float:
        return self.capacity / self.period

    @property
    def kind(self) -> str:
        return "deferrable"


def stream_seed_rng(seed: int) -> random.Random:
    """The canonical RNG for a seeded aperiodic stream.

    String seeding hashes with SHA-512, so the stream is bit-identical
    across processes and Python versions — unlike ad-hoc
    ``random.Random(seed)`` instances shared (and advanced) by unrelated
    draws, which made server scenarios depend on call order.
    """
    return random.Random(f"repro-servers:poisson:{seed}")


def poisson_aperiodic_stream(
    rng: Union[int, random.Random],
    horizon: int,
    mean_interarrival: int,
    mean_work: int,
    max_work: int = 0,
) -> List[AperiodicJob]:
    """Poisson arrivals with exponential work, for server experiments.

    ``rng`` is either an explicit ``random.Random`` or an int seed; a
    seed derives a dedicated, namespaced RNG (:func:`stream_seed_rng`),
    so two call sites using the same seed get the same stream regardless
    of what else they drew first — the end-to-end reproducibility
    contract workload scenarios rely on.

    ``max_work`` (0 = 4x mean) truncates the work distribution so a single
    pathological job cannot dominate a run.
    """
    if isinstance(rng, int):
        rng = stream_seed_rng(rng)
    if mean_interarrival <= 0 or mean_work <= 0:
        raise ValueError("means must be positive")
    if max_work <= 0:
        max_work = 4 * mean_work
    jobs: List[AperiodicJob] = []
    t = 0.0
    while True:
        t += rng.expovariate(1.0 / mean_interarrival)
        arrival = int(t)
        if arrival >= horizon:
            break
        work = min(
            max_work, max(1, int(rng.expovariate(1.0 / mean_work)))
        )
        jobs.append(AperiodicJob(arrival=arrival, work=work))
    return jobs
