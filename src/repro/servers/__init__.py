"""Aperiodic servers (extension).

Real systems mix the paper's hard periodic tasks with *aperiodic* work
(interrupts, operator commands, network packets).  The classic solution is
a **server**: a periodic budget reserved for aperiodic jobs, analysable as
one more task on its core.

* :class:`~repro.servers.server.PollingServer` — budget usable only at
  period boundaries; unused budget is lost immediately.  Interferes with
  lower-priority tasks exactly like a periodic task (C_s, T_s).
* :class:`~repro.servers.server.DeferrableServer` — budget preserved
  through the period, spent whenever aperiodic work arrives.  Better
  aperiodic response times, but its back-to-back effect interferes like a
  periodic task with release jitter ``T_s - C_s`` (the standard bound).
* background service — no server at all: aperiodic work runs at the lowest
  priority (the baseline both servers beat).

:mod:`repro.servers.sim` simulates all three on one core alongside a hard
periodic task set and reports aperiodic response statistics;
:func:`~repro.servers.analysis.server_entry` produces the analysis-facing
entry for the hard tasks' RTA.
"""

from repro.servers.server import (
    AperiodicJob,
    DeferrableServer,
    PollingServer,
    poisson_aperiodic_stream,
    stream_seed_rng,
)
from repro.servers.analysis import server_entry
from repro.servers.sim import (
    AperiodicStats,
    ServerLedger,
    check_server_ledger,
    simulate_with_server,
)

__all__ = [
    "AperiodicJob",
    "DeferrableServer",
    "PollingServer",
    "ServerLedger",
    "check_server_ledger",
    "poisson_aperiodic_stream",
    "server_entry",
    "stream_seed_rng",
    "AperiodicStats",
    "simulate_with_server",
]
