"""Analysis-side view of a server: one more fixed-priority entry.

A polling server interferes with lower-priority hard tasks exactly like a
periodic task ``(C_s, T_s)``.  A deferrable server can produce the
*back-to-back* effect — budget spent at the very end of one period
followed immediately by a fresh budget — which the standard bound models
as release jitter ``T_s - C_s`` on that same periodic task (equivalently,
up to ``ceil((R + T_s - C_s)/T_s)`` interfering budgets in a window).
"""

from __future__ import annotations

from repro.model.assignment import Entry, EntryKind
from repro.model.task import Task


def server_entry(server, priority: int, core: int = 0) -> Entry:
    """Analysis entry representing ``server`` at global ``priority``.

    Use it alongside the hard tasks' entries in
    :func:`repro.analysis.rta.core_schedulable`.
    """
    task = Task(
        name=server.name,
        wcet=server.capacity,
        period=server.period,
        priority=priority,
    )
    jitter = 0
    if server.kind == "deferrable":
        jitter = server.period - server.capacity
    return Entry(
        kind=EntryKind.NORMAL,
        task=task,
        core=core,
        budget=server.capacity,
        deadline=server.period,
        jitter=jitter,
    )
