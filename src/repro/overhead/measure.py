"""Overhead measurement harness.

Applies the paper's Section-3 methodology to *this* implementation: populate
a ready queue (binomial heap) and a sleep queue (red-black tree) with ``N``
entries, exercise the scheduler-shaped operation mix (insert the released
task, extract the highest-priority task, re-insert a preempted task, insert
a sleeping task, pop the earliest wake-up), and record the **maximal**
observed duration of a single operation — the same statistic as the paper's
δ and θ.

We also measure the pure cost of the three scheduler functions
(``release()``, ``sch()``, ``cnt_swth()``) as implemented by our simulated
kernel, by running them on a synthetic core state.

Absolute numbers will differ from the paper's silicon measurements by the
Python-interpreter factor; the *reported shape* that the reproduction
validates is (a) growth of queue cost from N=4 to N=64 and (b) the relative
ordering of the costs.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.structures.instrumented import InstrumentedHeap, InstrumentedTree


@dataclass
class QueueMeasurement:
    """Max/mean cost of one queue operation at a given queue length.

    ``ready_op_counts`` / ``sleep_op_counts`` are the exact per-operation
    counts of the measured (post-warmup) phase.  Unlike the timings they
    are fully deterministic — a fixed ``rounds`` performs a fixed
    scheduler-shaped operation mix — so regression tests can pin them
    (and catch counters accumulating across measurement runs).
    """

    n: int
    ready_max_ns: int
    ready_mean_ns: float
    sleep_max_ns: int
    sleep_mean_ns: float
    ready_op_counts: Optional[Dict[str, int]] = None
    sleep_op_counts: Optional[Dict[str, int]] = None

    @property
    def ready_max_us(self) -> float:
        return self.ready_max_ns / 1000.0

    @property
    def sleep_max_us(self) -> float:
        return self.sleep_max_ns / 1000.0


def measure_queue_operations(
    n: int,
    rounds: int = 2000,
    seed: int = 0,
    warmup_rounds: int = 200,
) -> QueueMeasurement:
    """Measure scheduler-shaped queue operations at steady length ``n``.

    Each round performs the paper's operation mix at queue occupancy ``n``:
    ready-queue insert + extract-min + re-insert + delete, and sleep-queue
    insert + pop-min.
    """
    if n < 1:
        raise ValueError("n must be at least 1")
    rng = random.Random(seed)
    heap = InstrumentedHeap()
    tree = InstrumentedTree()

    handles = [heap.insert((rng.randint(0, 1000), i), f"task{i}") for i in range(n)]
    nodes = [tree.insert(rng.randint(0, 10**9), f"task{i}") for i in range(n)]

    for round_index in range(warmup_rounds + rounds):
        if round_index == warmup_rounds:
            heap.stats.reset()
            tree.stats.reset()
        # Ready queue: a release inserts, the scheduler extracts the min,
        # a preemption re-inserts, and a completion deletes an arbitrary one.
        handles.append(
            heap.insert((rng.randint(0, 1000), round_index + n), "released")
        )
        _key, _value = heap.extract_min()
        handles = [h for h in handles if h.in_heap]
        handles.append(
            heap.insert((rng.randint(0, 1000), round_index + 2 * n), "preempted")
        )
        victim = handles.pop(rng.randrange(len(handles)))
        heap.delete(victim)
        # Sleep queue: a completing job is stored, the earliest wakes up.
        nodes.append(tree.insert(rng.randint(0, 10**9), "sleeper"))
        tree.pop_min()
        nodes = [nd for nd in nodes if nd.parent is not None]

    def collect(stats) -> tuple:
        max_ns = 0
        total = 0
        count = 0
        for op_stats in stats.ops.values():
            max_ns = max(max_ns, op_stats.max_ns)
            total += op_stats.total_ns
            count += op_stats.count
        mean = total / count if count else 0.0
        return max_ns, mean

    ready_max, ready_mean = collect(heap.stats)
    sleep_max, sleep_mean = collect(tree.stats)
    return QueueMeasurement(
        n=n,
        ready_max_ns=ready_max,
        ready_mean_ns=ready_mean,
        sleep_max_ns=sleep_max,
        sleep_mean_ns=sleep_mean,
        ready_op_counts=heap.stats.op_counts(),
        sleep_op_counts=tree.stats.op_counts(),
    )


def measure_scheduler_functions(
    rounds: int = 200, seed: int = 1
) -> Dict[str, float]:
    """Mean wall-clock cost (ns) of the simulated kernel's release/sch/switch
    paths on a small synthetic workload.

    Imports the kernel lazily to avoid a circular dependency at module load.
    """
    from repro.kernel.sim import KernelSim  # local import by design
    from repro.model.task import Task
    from repro.model.taskset import TaskSet
    from repro.model.time import MS
    from repro.partition.heuristics import partition_first_fit_decreasing
    from repro.overhead.model import OverheadModel

    rng = random.Random(seed)
    tasks = []
    for i in range(4):
        period = rng.choice([10, 20, 40, 80]) * MS
        tasks.append(Task(f"m{i}", wcet=period // 10, period=period))
    taskset = TaskSet(tasks).assign_rate_monotonic()
    assignment = partition_first_fit_decreasing(taskset, n_cores=2)
    if assignment is None:
        raise RuntimeError("measurement workload failed to partition")

    totals: Dict[str, float] = {"release": 0.0, "sch": 0.0, "cnt_swth": 0.0}
    counts: Dict[str, int] = {"release": 0, "sch": 0, "cnt_swth": 0}
    for _ in range(rounds):
        sim = KernelSim(
            assignment, OverheadModel.zero(), duration=80 * MS, profile=True
        )
        start = time.perf_counter_ns()
        sim.run()
        _elapsed = time.perf_counter_ns() - start
        for name in totals:
            calls = sim.profile.get(name, (0, 0))
            counts[name] += calls[0]
            totals[name] += calls[1]
    return {
        name: (totals[name] / counts[name] if counts[name] else 0.0)
        for name in totals
    }
