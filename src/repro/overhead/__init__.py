"""Run-time overhead models, measurement, and analysis-side accounting.

Reproduces Section 3 of the paper:

* :mod:`repro.overhead.model` — the four overhead sources (``rls``, ``sch``,
  ``cnt1``, ``cnt2``) plus queue-operation and cache-related costs, with
  constructors calibrated to the paper's measured microsecond values;
* :mod:`repro.overhead.measure` — micro-benchmarks that re-measure queue
  operation costs on *our* binomial heap / red-black tree (the paper's
  methodology applied to this implementation);
* :mod:`repro.overhead.accounting` — WCET inflation used to integrate
  overheads into schedulability analysis (Section 4 of the paper).
"""

from repro.overhead.model import OverheadModel, PAPER_QUEUE_POINTS
from repro.overhead.accounting import (
    arrival_overhead,
    completion_overhead,
    inflate_taskset,
    migration_in_overhead,
    migration_out_overhead,
    per_job_overhead,
    per_migration_overhead,
)
from repro.overhead.measure import (
    QueueMeasurement,
    measure_queue_operations,
    measure_scheduler_functions,
)

__all__ = [
    "OverheadModel",
    "PAPER_QUEUE_POINTS",
    "arrival_overhead",
    "completion_overhead",
    "inflate_taskset",
    "migration_in_overhead",
    "migration_out_overhead",
    "per_job_overhead",
    "per_migration_overhead",
    "QueueMeasurement",
    "measure_queue_operations",
    "measure_scheduler_functions",
]
