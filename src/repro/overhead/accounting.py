"""Analysis-side overhead accounting.

Section 4 of the paper "integrate[s] the measured overhead into the
state-of-the-art partitioned scheduling and semi-partitioned scheduling
algorithms".  The standard way to do this for fixed-priority analysis is
WCET inflation: each job pays, in the worst case,

* one **arrival path** — ``rls`` on its core, a scheduling decision with a
  preemption (``sch`` with re-queue), and a context switch in (``cnt1``);
* one **completion path** — a scheduling decision (``sch`` without
  re-queue) and a context switch out to the sleep queue (``cnt2``);
* one **cache reload** charged for the preemption its arrival inflicts on
  the task it displaces (bounded by the largest working set in the set).

A *split* task additionally pays, per migration (i.e. per body subtask),

* on the source core: ``sch`` + ``cnt2_migrate`` (insert into the remote
  ready queue);
* on the destination core: a scheduling decision + ``cnt1``;
* a migration cache reload.

``per_job_overhead`` and ``per_migration_overhead`` return these charges;
``inflate_taskset`` applies the per-job charge up front so the partitioning
algorithms stay overhead-agnostic, and the semi-partitioned splitter adds
``per_migration_overhead`` for every subtask boundary it creates (passed as
its ``split_cost``).
"""

from __future__ import annotations

from typing import Optional

from repro.model.task import Task
from repro.model.taskset import TaskSet
from repro.overhead.model import OverheadModel


def per_job_overhead(model: OverheadModel, cpmd_wss: int = 0) -> int:
    """Worst-case constant overhead charged to every job (ns).

    ``cpmd_wss`` bounds the working set whose reload the job's arrival
    forces on the task it preempts (0 disables the cache charge).
    """
    arrival = model.rls + model.sch(preemption=True) + model.cnt1
    completion = model.sch(preemption=False) + model.cnt2_finish
    cache = model.cache.preemption_delay(cpmd_wss) if cpmd_wss > 0 else 0
    return arrival + completion + cache


def migration_out_overhead(model: OverheadModel) -> int:
    """Source-side cost of one migration: scheduling pass + ``cnt2`` with
    the remote ready-queue insert.  It executes on the core the subtask
    *leaves*, so the analysis charges it to the body entry there."""
    return model.sch(preemption=False) + model.cnt2_migrate


def migration_in_overhead(model: OverheadModel, cpmd_wss: int = 0) -> int:
    """Destination-side cost of one migration: scheduling pass (with
    re-queue of a preempted resident) + ``cnt1`` + the migrated working
    set's reload + the reload the arrival inflicts on the displaced task.
    Charged to the *arriving* subtask entry."""
    cache = 0
    if cpmd_wss > 0:
        cache = model.cache.migration_delay(
            cpmd_wss
        ) + model.cache.preemption_delay(cpmd_wss)
    return model.sch(preemption=True) + model.cnt1 + cache


def arrival_overhead(model: OverheadModel, cpmd_wss: int = 0) -> int:
    """Release-path cost (``rls`` + ``sch`` + ``cnt1``) on the home core,
    plus the cache reload the arrival inflicts on the task it displaces.
    Used to pin the arrival charge onto a split task's *first* subtask;
    whole tasks carry it inside their inflated WCET."""
    cache = model.cache.preemption_delay(cpmd_wss) if cpmd_wss > 0 else 0
    return model.rls + model.sch(preemption=True) + model.cnt1 + cache


def completion_overhead(model: OverheadModel) -> int:
    """Completion-path cost (``sch`` + ``cnt2``) on the finishing core,
    pinned onto a split task's *tail* subtask."""
    return model.sch(preemption=False) + model.cnt2_finish


def per_migration_overhead(model: OverheadModel, cpmd_wss: int = 0) -> int:
    """Total worst-case overhead per subtask boundary (source + destination
    sides); the per-core split is ``migration_out_overhead`` /
    ``migration_in_overhead``."""
    return migration_out_overhead(model) + migration_in_overhead(
        model, cpmd_wss
    )


def inflate_taskset(
    taskset: TaskSet,
    model: OverheadModel,
    charge_cache: bool = True,
    cpmd_wss: Optional[int] = None,
) -> TaskSet:
    """Return a copy of ``taskset`` with per-job overheads folded into WCETs.

    ``cpmd_wss`` defaults to the largest working set in the task set (the
    sound bound for "whoever I preempt reloads at most this much").

    Tasks whose inflated WCET would exceed their deadline are inflated to
    exactly ``deadline`` (they will then simply fail the schedulability
    test, which is the correct verdict).

    Results are memoized on the task set (tasks are immutable and
    :meth:`~repro.model.taskset.TaskSet.add` drops the memo), so the
    registry's per-algorithm runs share one inflation per model instead
    of recomputing an identical copy each time.
    """
    if model.is_zero and not charge_cache:
        return taskset
    cache = taskset.__dict__.setdefault("_inflate_cache", {})
    key = (model, charge_cache, cpmd_wss)
    cached = cache.get(key)
    if cached is not None:
        return cached
    if cpmd_wss is None:
        effective_wss = max((task.wss for task in taskset), default=0)
    else:
        effective_wss = cpmd_wss
    if not charge_cache:
        effective_wss = 0
    charge = per_job_overhead(model, effective_wss)

    def inflate(task: Task) -> Task:
        new_wcet = min(task.wcet + charge, task.deadline)
        return task.with_wcet(new_wcet)

    inflated = taskset.map_tasks(inflate)
    cache[key] = inflated
    return inflated
