"""The overhead model of Section 3 of the paper.

The paper decomposes scheduler overhead into four parts (Figure 1):

* ``rls``  — task release: gaining access to the ready queue plus the insert
  operation, plus the pure cost of ``release()``;
* ``sch``  — scheduling: selecting the highest-priority task (and, on a
  preemption, putting the previously running task back into the ready
  queue), plus the pure cost of ``sch()``;
* ``cnt1`` — context switch from the preempted to the preempting task;
* ``cnt2`` — context switch at job completion (store to the sleep queue),
  at split-budget exhaustion (insert into the *destination core's* ready
  queue — the migration case) or at split-job completion (store to the
  sleep queue of the core hosting the first subtask).

Measured constants reported by the paper (Intel Core-i7, 4 cores,
Linux 2.6.32):

=====================  =======  =======
quantity                 N = 4   N = 64
=====================  =======  =======
ready-queue op (δ)      3.3 µs   4.6 µs
sleep-queue op (θ)      3.3 µs   5.8 µs
=====================  =======  =======

plus load-independent pure costs ``release() = 3 µs``, ``sch() = 5 µs``,
``cnt_swth() = 1.5 µs``.  Queue costs between the two published points are
interpolated linearly in ``log2 N`` (both structures are logarithmic).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.cache.model import CachePenaltyModel
from repro.model.time import US

#: The two (N, delta_ns, theta_ns) calibration points published in the paper.
PAPER_QUEUE_POINTS = (
    (4, 3300, 3300),
    (64, 4600, 5800),
)


def _log_interpolate(n: int, points=PAPER_QUEUE_POINTS) -> tuple:
    """Interpolate (delta, theta) at queue length ``n`` in log2 space."""
    n = max(1, n)
    (n0, d0, t0), (n1, d1, t1) = points
    x0, x1, x = math.log2(n0), math.log2(n1), math.log2(n)
    if x <= x0:
        slope_d = (d1 - d0) / (x1 - x0)
        slope_t = (t1 - t0) / (x1 - x0)
        return (
            max(0, int(round(d0 + slope_d * (x - x0)))),
            max(0, int(round(t0 + slope_t * (x - x0)))),
        )
    slope_d = (d1 - d0) / (x1 - x0)
    slope_t = (t1 - t0) / (x1 - x0)
    return (
        int(round(d0 + slope_d * (x - x0))),
        int(round(t0 + slope_t * (x - x0))),
    )


@dataclass(frozen=True)
class OverheadModel:
    """All scheduler overhead constants, in nanoseconds.

    ``ready_op_ns`` / ``sleep_op_ns`` are the per-operation queue costs
    (δ and θ in the paper, already fixed for the relevant queue length).
    """

    release_ns: int = 0  # pure cost of release()
    sch_ns: int = 0  # pure cost of sch()
    cnt_swth_ns: int = 0  # pure cost of cnt_swth()
    ready_op_ns: int = 0  # one ready-queue operation (δ)
    sleep_op_ns: int = 0  # one sleep-queue operation (θ)
    cache: CachePenaltyModel = field(default_factory=CachePenaltyModel.none)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @staticmethod
    def zero() -> "OverheadModel":
        """The idealised no-overhead model (pure theory)."""
        return OverheadModel()

    @staticmethod
    def paper_core_i7(
        tasks_per_core: int = 4,
        cache: CachePenaltyModel = None,
    ) -> "OverheadModel":
        """The paper's measured values, queue costs interpolated at
        ``tasks_per_core`` entries per queue.

        >>> model = OverheadModel.paper_core_i7(4)
        >>> model.ready_op_ns, model.sleep_op_ns
        (3300, 3300)
        >>> model = OverheadModel.paper_core_i7(64)
        >>> model.ready_op_ns, model.sleep_op_ns
        (4600, 5800)
        """
        delta, theta = _log_interpolate(tasks_per_core)
        return OverheadModel(
            release_ns=3 * US,
            sch_ns=5 * US,
            cnt_swth_ns=1500,
            ready_op_ns=delta,
            sleep_op_ns=theta,
            cache=cache if cache is not None else CachePenaltyModel(),
        )

    def scaled(self, factor: float) -> "OverheadModel":
        """Scale all constant overheads by ``factor`` (sensitivity studies).

        The cache model is left untouched; scale it separately if needed.
        Rounds every field half-up (``round`` would bankers-round fields
        independently, so a uniformly scaled model could land closer to
        zero on some fields than others); ``scaled(1.0)`` is the exact
        identity.
        """
        if factor == 1.0:
            return self

        def s(value: int) -> int:
            return math.floor(value * factor + 0.5)

        return OverheadModel(
            release_ns=s(self.release_ns),
            sch_ns=s(self.sch_ns),
            cnt_swth_ns=s(self.cnt_swth_ns),
            ready_op_ns=s(self.ready_op_ns),
            sleep_op_ns=s(self.sleep_op_ns),
            cache=self.cache,
        )

    def at_frequency(self, freq) -> "OverheadModel":
        """The model as seen by a core clocked at rational ``freq``.

        Kernel work is CPU work: at frequency ``f`` every constant takes
        ``1/f`` times as long in wall nanoseconds.  The scale is applied
        as one exact rational multiply per field, rounded half-up once —
        integer-exact, unlike the float path of :meth:`scaled`.  The
        cache-penalty path is scaled too (see
        :meth:`repro.cache.model.CachePenaltyModel.at_frequency`).
        ``at_frequency(1)`` returns ``self`` — the identity is ``is``-
        level, which is what makes the ``freq1-vs-unscaled``
        differential structural.
        """
        from repro.energy.model import as_fraction, scale_ns

        f = as_fraction(freq)
        if f == 1:
            return self
        return OverheadModel(
            release_ns=scale_ns(self.release_ns, f),
            sch_ns=scale_ns(self.sch_ns, f),
            cnt_swth_ns=scale_ns(self.cnt_swth_ns, f),
            ready_op_ns=scale_ns(self.ready_op_ns, f),
            sleep_op_ns=scale_ns(self.sleep_op_ns, f),
            cache=self.cache.at_frequency(f),
        )

    # ------------------------------------------------------------------
    # Event costs, as charged by the simulator (Figure 1 decomposition)
    # ------------------------------------------------------------------

    @property
    def rls(self) -> int:
        """Release overhead: ready-queue access + insert + release() body."""
        return self.release_ns + self.ready_op_ns

    def sch(self, preemption: bool) -> int:
        """Scheduling overhead: pick min from ready queue; on a preemption
        additionally re-insert the previously running task."""
        ops = 2 if preemption else 1
        return self.sch_ns + ops * self.ready_op_ns

    @property
    def cnt1(self) -> int:
        """Context-switch-in overhead (store old context, load new)."""
        return self.cnt_swth_ns

    @property
    def cnt2_finish(self) -> int:
        """Context-switch-out at job completion: sleep-queue insert."""
        return self.cnt_swth_ns + self.sleep_op_ns

    @property
    def cnt2_migrate(self) -> int:
        """Context-switch-out at budget exhaustion: insert the next subtask
        into the destination core's ready queue."""
        return self.cnt_swth_ns + self.ready_op_ns

    @property
    def is_zero(self) -> bool:
        return (
            self.release_ns == 0
            and self.sch_ns == 0
            and self.cnt_swth_ns == 0
            and self.ready_op_ns == 0
            and self.sleep_op_ns == 0
        )

    def describe(self) -> str:
        return (
            f"OverheadModel(rls={self.rls}ns, sch={self.sch(True)}ns/"
            f"{self.sch(False)}ns, cnt1={self.cnt1}ns, "
            f"cnt2_finish={self.cnt2_finish}ns, "
            f"cnt2_migrate={self.cnt2_migrate}ns)"
        )
