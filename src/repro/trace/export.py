"""Trace export to JSON and CSV.

Lets external tooling (spreadsheets, trace viewers, plotting scripts)
consume the simulator's segment traces and event logs.  The JSON schema::

    {
      "duration_ns": ...,
      "segments": [
        {"core": 0, "start_ns": 0, "end_ns": 4000000,
         "label": "a/1", "kind": "exec"},
        ...
      ],
      "events": [
        {"time_ns": 0, "type": "release", "task": "a", "core": 0}, ...
      ]
    }
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import List, Optional, Union

from repro.kernel.sim import SimulationResult


def trace_to_dict(result: SimulationResult) -> dict:
    return {
        "duration_ns": result.duration,
        "segments": [
            {
                "core": core,
                "start_ns": start,
                "end_ns": end,
                "label": label,
                "kind": kind,
            }
            for core, start, end, label, kind in result.trace
        ],
        "events": [
            {"time_ns": time, "type": kind, "task": task, "core": core}
            for time, kind, task, core in result.events
        ],
    }


def export_trace_json(
    result: SimulationResult, path: Optional[Union[str, Path]] = None
) -> str:
    """Serialise the trace to JSON; writes to ``path`` if given."""
    text = json.dumps(trace_to_dict(result), indent=2)
    if path is not None:
        Path(path).write_text(text)
    return text


def export_trace_csv(
    result: SimulationResult, path: Optional[Union[str, Path]] = None
) -> str:
    """Serialise the segment trace to CSV (one row per segment)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(["core", "start_ns", "end_ns", "label", "kind"])
    for core, start, end, label, kind in sorted(result.trace):
        writer.writerow([core, start, end, label, kind])
    text = buffer.getvalue()
    if path is not None:
        Path(path).write_text(text)
    return text


def import_trace_json(source: Union[str, Path]) -> List[tuple]:
    """Load a segment trace back from a JSON file or string."""
    text = (
        Path(source).read_text()
        if isinstance(source, Path) or (
            isinstance(source, str) and "\n" not in source
            and source.endswith(".json")
        )
        else str(source)
    )
    data = json.loads(text)
    return [
        (
            seg["core"],
            seg["start_ns"],
            seg["end_ns"],
            seg["label"],
            seg["kind"],
        )
        for seg in data["segments"]
    ]
