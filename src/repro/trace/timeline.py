"""Derived statistics over simulation traces.

Post-processing of :class:`~repro.kernel.sim.SimulationResult` traces into
the quantities an evaluation writes about: per-core time breakdowns,
per-overhead-source totals (the paper's rls/sch/cnt1/cnt2 decomposition),
per-task execution profiles, and busy-interval extraction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.kernel.sim import SimulationResult


@dataclass
class CoreBreakdown:
    """How one core's time divides over the horizon."""

    core: int
    duration: int
    exec_ns: int = 0
    overhead_ns: int = 0

    @property
    def idle_ns(self) -> int:
        return self.duration - self.exec_ns - self.overhead_ns

    @property
    def utilization(self) -> float:
        return self.exec_ns / self.duration if self.duration else 0.0

    @property
    def overhead_ratio(self) -> float:
        return self.overhead_ns / self.duration if self.duration else 0.0


@dataclass
class TimelineStats:
    """Aggregated trace statistics."""

    duration: int
    cores: Dict[int, CoreBreakdown] = field(default_factory=dict)
    overhead_by_source: Dict[str, int] = field(default_factory=dict)
    exec_by_task: Dict[str, int] = field(default_factory=dict)

    @property
    def total_overhead_ns(self) -> int:
        return sum(self.overhead_by_source.values())

    def overhead_share(self, source: str) -> float:
        total = self.total_overhead_ns
        if total == 0:
            return 0.0
        return self.overhead_by_source.get(source, 0) / total

    def describe(self) -> str:
        lines = [f"timeline over {self.duration} ns:"]
        for core in sorted(self.cores):
            b = self.cores[core]
            lines.append(
                f"  core{core}: exec {b.utilization:.1%}, overhead "
                f"{b.overhead_ratio:.3%}, idle "
                f"{b.idle_ns / b.duration:.1%}"
            )
        if self.overhead_by_source:
            lines.append("  overhead by source:")
            for source in sorted(self.overhead_by_source):
                lines.append(
                    f"    {source:<8} {self.overhead_by_source[source]:>12} ns"
                    f" ({self.overhead_share(source):.1%})"
                )
        return "\n".join(lines)


def timeline_stats(result: SimulationResult) -> TimelineStats:
    """Build :class:`TimelineStats` from a trace-recording simulation."""
    stats = TimelineStats(duration=result.duration)
    for core_index in range(result.n_cores):
        stats.cores[core_index] = CoreBreakdown(
            core=core_index, duration=result.duration
        )
    for core, start, end, label, kind in result.trace:
        span = end - start
        breakdown = stats.cores.setdefault(
            core, CoreBreakdown(core=core, duration=result.duration)
        )
        if kind == "exec":
            breakdown.exec_ns += span
            task = label.split("/", 1)[0]
            stats.exec_by_task[task] = stats.exec_by_task.get(task, 0) + span
        elif kind == "overhead":
            breakdown.overhead_ns += span
            source = label.split(":", 1)[0]
            stats.overhead_by_source[source] = (
                stats.overhead_by_source.get(source, 0) + span
            )
    return stats


def busy_intervals(
    result: SimulationResult, core: int
) -> List[Tuple[int, int]]:
    """Maximal contiguous non-idle intervals on ``core`` (merged segments)."""
    segments = sorted(
        (start, end)
        for seg_core, start, end, _label, _kind in result.trace
        if seg_core == core
    )
    merged: List[Tuple[int, int]] = []
    for start, end in segments:
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged
