"""Trace validation: a pluggable registry of schedule-invariant oracles.

Every checker inspects the artifacts a :class:`~repro.kernel.sim.KernelSim`
run produced with ``record_trace=True`` (segment trace, event log, result
counters) and reports :class:`TraceViolation` objects.  Checkers register
themselves under a name via :func:`register_checker`; callers run all of
them (or a subset) through :func:`run_checkers` with a
:class:`CheckContext`.

Structural invariants (any correct semi-partitioned schedule):

* **core-overlap** — segments on one core never overlap;
* **job-parallelism** — a job never executes on two cores at the same
  instant (split subtasks are strictly sequential);
* **budget** — per job, execution on each core never exceeds that core's
  subtask budget plus injected cache-reload delay;
* **placement** — a task only ever executes on cores its assignment gave
  it.

Semantic oracles (the differential-verification layer):

* **preemption-order** — a running job is never lower-priority than a job
  sitting in the same core's ready queue (modulo kernel sections: ready
  sets are reconstructed from the simulator's ``ready``/``dispatch``
  events, which bracket exactly the windows in which the kernel has
  committed a queue state);
* **overhead-ledger** — per core, the ``overhead_ns`` counter equals the
  sum of traced kernel (overhead) segments;
* **budget-conservation** — per task, observed execution time balances
  released work, injected overruns, policy-killed work, and cache-reload
  penalties;
* **handoff-order** — a split job walks its subtask stages strictly in
  order, one core at a time, never skipping or revisiting a stage.

The legacy entry point :func:`validate_trace` keeps its signature and runs
the four structural checks only.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.model.assignment import Assignment

#: Ready-queue key prefix of a demoted (background) job — mirrors
#: ``repro.kernel.sim._BACKGROUND_KEY``.
_BACKGROUND = 1 << 62

#: Ready-queue key base of the fair (EEVDF-style) class — mirrors
#: ``repro.kernel.sched_class.FAIR_KEY_BASE``.  Every hard-RT key sorts
#: below it, so a running fair job can be judged against ready RT jobs
#: without reconstructing virtual deadlines.
_FAIR_BASE = 1 << 56

#: Scheduling classes that share one system-wide ready queue.  Their
#: placement is a runtime decision (any core), so the per-core oracles
#: either merge cores or skip.
GLOBAL_CLASSES = ("global-edf", "global-rm")


def _effective_class(ctx: "CheckContext") -> str:
    """The scheduling class a run actually used.

    ``sched_class="auto"`` mirrors the simulator's default of deriving
    the class from ``policy`` (``fp`` or ``edf``).
    """
    if ctx.sched_class and ctx.sched_class != "auto":
        return ctx.sched_class
    return ctx.policy


@dataclass(frozen=True)
class TraceViolation:
    kind: str
    detail: str


@dataclass
class CheckContext:
    """Everything a checker may consult.

    Only ``trace`` and ``assignment`` are mandatory; checkers that need
    more (events, counters, the overhead model) skip silently when the
    field is absent, so partial contexts — e.g. the legacy
    :func:`validate_trace` path — run the structural subset.
    """

    trace: List[tuple]
    assignment: Assignment
    events: List[tuple] = field(default_factory=list)
    policy: str = "fp"
    duration: int = 0
    overhead_ns: Optional[List[int]] = None
    busy_ns: Optional[List[int]] = None
    #: The run's :class:`~repro.energy.model.EnergyLedger`; ``None`` or
    #: an empty ledger (legacy producers) makes the energy-ledger
    #: checker skip.
    energy: Optional[object] = None
    task_stats: Optional[Dict[str, object]] = None
    misses: Optional[List[object]] = None
    fault_log: Optional[object] = None
    overheads: Optional[object] = None
    #: Per-task nominal job demand, when the caller knows it exactly
    #: (no execution variation).  Enables the execution-time ledger of
    #: the budget-conservation checker.
    expected_work: Optional[Dict[str, int]] = None
    #: IPCP resource sharing changes effective priorities; the
    #: preemption-order oracle does not model ceilings and skips.
    has_resources: bool = False
    #: EDF ready-queue keys are reconstructed from release events, which
    #: only equal the nominal release when no tick deferral or injected
    #: release jitter is active.  Callers clear this flag otherwise.
    edf_keys_reliable: bool = True
    #: Scheduling class the run used (``repro.kernel.sched_class``
    #: registry name).  ``"auto"`` derives it from ``policy``, matching
    #: the simulator's default.
    sched_class: str = "auto"
    #: Names of fair-class (non-hard-deadline) tasks the run coexisted
    #: with.  Their ready windows carry virtual-deadline keys the trace
    #: cannot reconstruct, so priority oracles treat them specially.
    fair_tasks: Optional[Set[str]] = None

    @staticmethod
    def from_result(
        result,
        assignment: Assignment,
        policy: str = "fp",
        overheads=None,
        expected_work: Optional[Dict[str, int]] = None,
        has_resources: bool = False,
        edf_keys_reliable: bool = True,
        sched_class: str = "auto",
        fair_tasks: Optional[Set[str]] = None,
    ) -> "CheckContext":
        """Build a full context from a :class:`SimulationResult`."""
        return CheckContext(
            trace=result.trace,
            assignment=assignment,
            events=result.events,
            policy=policy,
            duration=result.duration,
            overhead_ns=list(result.overhead_ns),
            busy_ns=list(result.busy_ns),
            energy=getattr(result, "energy", None),
            task_stats=result.task_stats,
            misses=result.misses,
            fault_log=result.faults,
            overheads=overheads,
            expected_work=expected_work,
            has_resources=has_resources,
            edf_keys_reliable=edf_keys_reliable,
            sched_class=sched_class,
            fair_tasks=fair_tasks,
        )


CheckerFn = Callable[[CheckContext], List[TraceViolation]]

_CHECKERS: Dict[str, CheckerFn] = {}

#: The original, structure-only checks run by :func:`validate_trace`.
STRUCTURAL_CHECKS = (
    "core-overlap",
    "job-parallelism",
    "placement",
    "budget",
)


def register_checker(name: str) -> Callable[[CheckerFn], CheckerFn]:
    """Register a checker under ``name`` (decorator)."""

    def decorate(fn: CheckerFn) -> CheckerFn:
        if name in _CHECKERS:
            raise ValueError(f"checker {name!r} already registered")
        _CHECKERS[name] = fn
        return fn

    return decorate


def checker_names() -> List[str]:
    """All registered checker names, in registration order."""
    return list(_CHECKERS)


def run_checkers(
    ctx: CheckContext, names: Optional[Sequence[str]] = None
) -> List[TraceViolation]:
    """Run the named checkers (default: all) over ``ctx``."""
    if names is None:
        names = checker_names()
    violations: List[TraceViolation] = []
    for name in names:
        try:
            checker = _CHECKERS[name]
        except KeyError:
            raise KeyError(
                f"unknown checker {name!r}; registered: {checker_names()}"
            ) from None
        violations.extend(checker(ctx))
    return violations


def validate_trace(
    trace: List[tuple], assignment: Assignment
) -> List[TraceViolation]:
    """Structural invariant violations only (legacy API; empty = clean)."""
    ctx = CheckContext(trace=trace, assignment=assignment)
    return run_checkers(ctx, STRUCTURAL_CHECKS)


# ----------------------------------------------------------------------
# Structural checkers
# ----------------------------------------------------------------------

def _exec_segments(trace: List[tuple]):
    for core, start, end, label, kind in trace:
        if kind == "exec":
            yield core, start, end, label


@register_checker("core-overlap")
def _check_core_overlap(ctx: CheckContext) -> List[TraceViolation]:
    violations: List[TraceViolation] = []
    per_core: Dict[int, List[Tuple[int, int, str]]] = {}
    for core, start, end, label, _kind in ctx.trace:
        per_core.setdefault(core, []).append((start, end, label))
    for core, segments in per_core.items():
        segments.sort()
        for (s1, e1, l1), (s2, e2, l2) in zip(segments, segments[1:]):
            if s2 < e1:
                violations.append(
                    TraceViolation(
                        kind="core-overlap",
                        detail=(
                            f"core {core}: {l1}[{s1},{e1}) overlaps "
                            f"{l2}[{s2},{e2})"
                        ),
                    )
                )
    return violations


@register_checker("job-parallelism")
def _check_job_parallelism(ctx: CheckContext) -> List[TraceViolation]:
    violations: List[TraceViolation] = []
    per_job: Dict[str, List[Tuple[int, int, int]]] = {}
    for core, start, end, label in _exec_segments(ctx.trace):
        per_job.setdefault(label, []).append((start, end, core))
    for job, segments in per_job.items():
        segments.sort()
        for (s1, e1, c1), (s2, e2, c2) in zip(segments, segments[1:]):
            if s2 < e1:
                violations.append(
                    TraceViolation(
                        kind="job-parallelism",
                        detail=(
                            f"job {job} runs on core {c1} until {e1} but "
                            f"starts on core {c2} at {s2}"
                        ),
                    )
                )
    return violations


@register_checker("placement")
def _check_placement(ctx: CheckContext) -> List[TraceViolation]:
    if _effective_class(ctx) in GLOBAL_CLASSES:
        # Global classes place jobs on any core at run time; the static
        # assignment only carries task parameters (all entries on core 0).
        return []
    violations: List[TraceViolation] = []
    allowed: Dict[str, Set[int]] = {}
    for entry in ctx.assignment.entries():
        allowed.setdefault(entry.task.name, set()).add(entry.core)
    for core, _start, _end, label in _exec_segments(ctx.trace):
        task_name = label.split("/", 1)[0]
        cores = allowed.get(task_name)
        if cores is not None and core not in cores:
            violations.append(
                TraceViolation(
                    kind="placement",
                    detail=f"task {task_name} executed on core {core}, "
                    f"allowed {sorted(cores)}",
                )
            )
    return violations


@register_checker("budget")
def _check_budget(ctx: CheckContext) -> List[TraceViolation]:
    violations: List[TraceViolation] = []
    budgets: Dict[Tuple[str, int], int] = {}
    restricted = _effective_class(ctx) == "restricted"
    for entry in ctx.assignment.entries():
        if restricted:
            # Restricted migration runs each *whole* job on one of the
            # split task's cores, so any of its cores may legitimately
            # see the full WCET rather than one subtask budget.
            budgets[(entry.task.name, entry.core)] = entry.task.wcet
        else:
            budgets[(entry.task.name, entry.core)] = entry.budget
    # Injected execution overruns legitimately push a job past its
    # budget on the core where the excess runs (run-on and demote keep
    # the job executing); widen that task's allowance by the total
    # injected extra recorded in the fault log.
    overrun_extra: Dict[str, int] = {}
    if ctx.fault_log is not None:
        for event in ctx.fault_log:
            if event.kind == "overrun":
                nominal, actual = _parse_overrun_detail(event.detail)
                overrun_extra[event.task] = (
                    overrun_extra.get(event.task, 0) + (actual - nominal)
                )
    per_job_core: Dict[Tuple[str, int], int] = {}
    for core, start, end, label in _exec_segments(ctx.trace):
        per_job_core[(label, core)] = per_job_core.get((label, core), 0) + (
            end - start
        )
    for (job, core), executed in per_job_core.items():
        task_name = job.split("/", 1)[0]
        budget = budgets.get((task_name, core))
        if budget is None:
            continue  # placement violation already reported
        # Cache-reload penalties execute on the core on top of the budget;
        # bound them by one reload of the full working set per resume.  A
        # generous multiple still catches runaway budget enforcement bugs.
        slack = budget + overrun_extra.get(task_name, 0)
        if executed > budget + slack:
            violations.append(
                TraceViolation(
                    kind="budget",
                    detail=(
                        f"job {job} executed {executed} on core {core}, "
                        f"budget {budget}"
                    ),
                )
            )
    return violations


# ----------------------------------------------------------------------
# Semantic oracles
# ----------------------------------------------------------------------

def _runtime_tables(assignment: Assignment):
    """(task -> core -> local priority, task -> core -> stage index,
    task -> core -> deadline offset, task -> ordered stage cores)."""
    from repro.kernel.runtime import build_runtime_tasks

    priorities: Dict[str, Dict[int, int]] = {}
    stage_index: Dict[str, Dict[int, int]] = {}
    deadline_offset: Dict[str, Dict[int, int]] = {}
    stage_cores: Dict[str, List[int]] = {}
    for rt in build_runtime_tasks(assignment):
        priorities[rt.name] = dict(rt.local_priority)
        cores = [stage.core for stage in rt.stages]
        stage_cores[rt.name] = cores
        if len(set(cores)) != len(cores):
            # A split revisiting a core is not produced by any registered
            # partitioner; the per-core tables would be ambiguous.
            stage_index[rt.name] = {}
            deadline_offset[rt.name] = {}
            continue
        stage_index[rt.name] = {
            stage.core: i for i, stage in enumerate(rt.stages)
        }
        deadline_offset[rt.name] = {
            stage.core: stage.deadline_offset for stage in rt.stages
        }
    return priorities, stage_index, deadline_offset, stage_cores


@dataclass
class _ReadyInterval:
    job: str  # "task/seq"
    start: int  # ready-queue insert time
    end: int  # dispatch time (or horizon)


def _ready_intervals(ctx: CheckContext) -> Dict[int, List[_ReadyInterval]]:
    """Reconstruct per-core ready-queue membership windows.

    A job is *ready* on a core from its ``ready`` event until the next
    ``dispatch`` event of its task on that core.  Events are consumed in
    log order, which is simulation order, so same-instant insert/dispatch
    pairs resolve exactly as the kernel processed them.
    """
    horizon = ctx.duration
    per_core: Dict[int, List[_ReadyInterval]] = {}
    # (task, core) -> FIFO of open intervals awaiting their dispatch.
    open_intervals: Dict[Tuple[str, int], List[_ReadyInterval]] = {}
    for event in ctx.events:
        time, kind, label, core = event
        if kind == "ready":
            task = label.split("/", 1)[0]
            interval = _ReadyInterval(job=label, start=time, end=horizon)
            per_core.setdefault(core, []).append(interval)
            open_intervals.setdefault((task, core), []).append(interval)
        elif kind == "dispatch":
            pending = open_intervals.get((label, core))
            if pending:
                pending.pop(0).end = time
    return per_core


def _job_release_times(ctx: CheckContext) -> Dict[str, int]:
    """Map each job (``task/seq``) to its nominal release time.

    The k-th ``release`` event of a task corresponds to its k-th created
    job; job order follows first ``ready`` appearance.
    """
    release_times: Dict[str, List[int]] = {}
    job_order: Dict[str, List[str]] = {}
    for time, kind, label, _core in ctx.events:
        if kind == "release":
            release_times.setdefault(label, []).append(time)
        elif kind == "ready":
            task = label.split("/", 1)[0]
            jobs = job_order.setdefault(task, [])
            if label not in jobs:
                jobs.append(label)
    out: Dict[str, int] = {}
    for task, jobs in job_order.items():
        times = release_times.get(task, [])
        for job, time in zip(jobs, times):
            out[job] = time
    return out


def _demotion_times(ctx: CheckContext) -> Dict[str, int]:
    """Map demoted jobs (``task/seq``) to their demotion instant."""
    first_ready: Dict[str, List[Tuple[int, str]]] = {}
    for time, kind, label, _core in ctx.events:
        if kind == "ready":
            task = label.split("/", 1)[0]
            jobs = first_ready.setdefault(task, [])
            if not any(job == label for _t, job in jobs):
                jobs.append((time, label))
    demoted: Dict[str, int] = {}
    for time, kind, label, _core in ctx.events:
        if kind != "demote":
            continue
        candidates = [
            (t, job) for t, job in first_ready.get(label, []) if t <= time
        ]
        if candidates:
            demoted[candidates[-1][1]] = time
    return demoted


@register_checker("preemption-order")
def _check_preemption_order(ctx: CheckContext) -> List[TraceViolation]:
    """A running job is never lower-priority than a ready one.

    Reconstructs per-core ready sets from ``ready``/``dispatch`` events
    and flags any execution segment that strictly overlaps a
    higher-priority job's ready window on the same core.  Kernel sections
    need no special casing: the simulator suspends the running job for
    the whole kernel episode, so execution segments never overlap the
    window between a higher-priority arrival and its scheduling pass.

    Per-class priority keys (``sched_class`` in the context):

    * ``fp`` / ``restricted`` — per-core local priority (restricted
      re-plans stages but keeps FP keys on whichever core hosts a job);
    * ``edf`` — ``release + stage deadline offset`` on the stage's core;
    * ``global-edf`` / ``global-rm`` — all cores are merged into one
      virtual core (one shared ready queue, any job may run anywhere)
      and keyed globally; a ready job then only overlaps — and flags —
      running jobs with *larger* keys, which is exactly the global
      invariant "no waiting job outranks any running job".  This
      requires zero kernel overheads: a kernel episode on one core does
      not suspend the others' runners, so non-zero overhead windows
      would produce benign overlaps.
    * fair coexistence — ready fair jobs are skipped (their virtual
      deadlines are not reconstructible from the trace); a *running*
      fair job is keyed at the fair key base, below every hard-RT key,
      so it is still flagged if it runs over a ready RT job.
    """
    if not ctx.events or ctx.has_resources:
        return []
    sched_class = _effective_class(ctx)
    global_mode = sched_class in GLOBAL_CLASSES
    edf = sched_class == "edf"
    if sched_class in ("edf", "global-edf") and not ctx.edf_keys_reliable:
        return []
    if global_mode and ctx.overhead_ns and any(ctx.overhead_ns):
        return []
    fair_tasks = ctx.fair_tasks or frozenset()
    violations: List[TraceViolation] = []
    priorities, _stage_index, deadline_offset, _cores = _runtime_tables(
        ctx.assignment
    )
    if global_mode:
        # One shared ready queue: fold every core's events onto a single
        # virtual core before reconstructing ready windows, and key by
        # the *global* class attributes (task priority / task deadline)
        # taken from the assignment entries.
        from dataclasses import replace as _replace

        ctx = _replace(
            ctx,
            events=[(t, k, label, 0) for t, k, label, _c in ctx.events],
        )
        global_prio: Dict[str, int] = {}
        global_deadline: Dict[str, int] = {}
        for entry in ctx.assignment.entries():
            if entry.task.priority is not None:
                global_prio[entry.task.name] = entry.task.priority
            global_deadline[entry.task.name] = entry.task.deadline
    ready = _ready_intervals(ctx)
    demoted = _demotion_times(ctx)
    releases = (
        _job_release_times(ctx)
        if sched_class in ("edf", "global-edf")
        else {}
    )

    def key_of(job: str, core: int, t: int, running: bool = False):
        task, _, seq = job.partition("/")
        if job in demoted and demoted[job] <= t:
            return (_BACKGROUND, int(seq or 0))
        if task in fair_tasks:
            # Virtual deadlines are not in the trace; a running fair job
            # is conservatively keyed at the class base (below every
            # hard-RT key), ready ones cannot be judged.
            return (_FAIR_BASE, int(seq or 0)) if running else None
        if sched_class == "global-edf":
            release = releases.get(job)
            deadline = global_deadline.get(task)
            if release is None or deadline is None:
                return None
            return (release + deadline, int(seq or 0))
        if sched_class == "global-rm":
            prio = global_prio.get(task)
            if prio is None:
                return None
            return (prio, int(seq or 0))
        if edf:
            offsets = deadline_offset.get(task)
            release = releases.get(job)
            if offsets is None or core not in offsets or release is None:
                return None
            return (release + offsets[core], int(seq or 0))
        table = priorities.get(task)
        if table is None or core not in table:
            return None
        return (table[core], int(seq or 0))

    exec_by_core: Dict[int, List[Tuple[int, int, str]]] = {}
    for core, start, end, label in _exec_segments(ctx.trace):
        exec_by_core.setdefault(0 if global_mode else core, []).append(
            (start, end, label)
        )
    for core, segments in exec_by_core.items():
        waiting = sorted(
            ready.get(core, []), key=lambda iv: (iv.start, iv.end)
        )
        for start, end, running in segments:
            run_key = None
            for interval in waiting:
                if interval.start >= end:
                    break
                overlap_start = max(start, interval.start)
                overlap_end = min(end, interval.end)
                if overlap_end <= overlap_start:
                    continue
                if interval.job == running:
                    continue
                if run_key is None:
                    run_key = key_of(
                        running, core, overlap_start, running=True
                    )
                    if run_key is None:
                        break  # unknown running job: cannot judge
                ready_key = key_of(interval.job, core, overlap_start)
                if ready_key is None:
                    continue
                if ready_key < run_key:
                    violations.append(
                        TraceViolation(
                            kind="preemption-order",
                            detail=(
                                f"core {core}: {running} runs "
                                f"[{overlap_start},{overlap_end}) while "
                                f"higher-priority {interval.job} "
                                f"(key {ready_key} < {run_key}) is ready "
                                f"since {interval.start}"
                            ),
                        )
                    )
    return violations


@register_checker("overhead-ledger")
def _check_overhead_ledger(ctx: CheckContext) -> List[TraceViolation]:
    """Per-core ``overhead_ns`` equals the sum of traced kernel segments.

    Every kernel op with a positive duration is both added to the core's
    ``overhead_ns`` counter and recorded as an ``overhead`` trace
    segment; zero-duration ops contribute to neither.  The two ledgers
    must therefore agree exactly.
    """
    if ctx.overhead_ns is None or not ctx.trace:
        return []
    violations: List[TraceViolation] = []
    traced: Dict[int, int] = {}
    for core, start, end, _label, kind in ctx.trace:
        if kind == "overhead":
            traced[core] = traced.get(core, 0) + (end - start)
    for core, counted in enumerate(ctx.overhead_ns):
        observed = traced.get(core, 0)
        if observed != counted:
            violations.append(
                TraceViolation(
                    kind="overhead-ledger",
                    detail=(
                        f"core {core}: overhead_ns counter {counted} != "
                        f"traced kernel segments {observed}"
                    ),
                )
            )
    return violations


@register_checker("energy-ledger")
def _check_energy_ledger(ctx: CheckContext) -> List[TraceViolation]:
    """The energy ledger balances, replayed from zero.

    Given only the per-core ``busy_ns``/``overhead_ns`` counters and the
    horizon, every ledger field is forced (idle time, then each energy
    as time x recorded power level, then the per-core total) — see
    :func:`repro.energy.model.check_energy_ledger`.  Skips producers
    that don't account energy (``energy`` absent or empty).
    """
    energy = ctx.energy
    if (
        energy is None
        or getattr(energy, "is_empty", True)
        or ctx.busy_ns is None
        or ctx.overhead_ns is None
    ):
        return []
    from repro.energy.model import check_energy_ledger

    return [
        TraceViolation(kind="energy-ledger", detail=problem)
        for problem in check_energy_ledger(
            energy, ctx.busy_ns, ctx.overhead_ns, ctx.duration
        )
    ]


def _parse_overrun_detail(detail: str) -> Tuple[int, int]:
    """Extract (nominal, actual) from an ``overrun`` fault-log detail."""
    values = {}
    for part in detail.split():
        key, _, value = part.partition("=")
        values[key] = value
    return int(values.get("nominal", 0)), int(values.get("actual", 0))


@register_checker("budget-conservation")
def _check_budget_conservation(ctx: CheckContext) -> List[TraceViolation]:
    """Per-task work/exec-time balance under (possibly faulty) runs.

    Two layers:

    * job-count conservation (always, given ``task_stats``/``misses``):
      released jobs = completed + policy-killed + at most one in-flight,
      and killed counts match the ``aborted``/``lost`` miss records;
    * execution-time ledger (when ``expected_work`` is provided): total
      traced execution per task must lie between the demand its
      *accounted* jobs certainly consumed and the demand all its jobs
      plus injected overruns plus cache-reload penalties could consume.
    """
    if ctx.task_stats is None or ctx.misses is None:
        return []
    violations: List[TraceViolation] = []
    miss_kinds: Dict[Tuple[str, str], int] = {}
    for miss in ctx.misses:
        key = (miss.task, miss.kind)
        miss_kinds[key] = miss_kinds.get(key, 0) + 1
    wss: Dict[str, int] = {}
    for entry in ctx.assignment.entries():
        wss[entry.task.name] = entry.task.wss
    exec_by_task: Dict[str, int] = {}
    for _core, start, end, label in _exec_segments(ctx.trace):
        task = label.split("/", 1)[0]
        exec_by_task[task] = exec_by_task.get(task, 0) + (end - start)
    overrun_extra: Dict[str, int] = {}
    if ctx.fault_log is not None:
        for event in ctx.fault_log:
            if event.kind == "overrun":
                nominal, actual = _parse_overrun_detail(event.detail)
                overrun_extra[event.task] = (
                    overrun_extra.get(event.task, 0) + (actual - nominal)
                )
    for task, stats in ctx.task_stats.items():
        released = stats.jobs_released
        completed = stats.jobs_completed
        killed = stats.jobs_killed
        pending = released - completed - killed
        if pending not in (0, 1):
            violations.append(
                TraceViolation(
                    kind="budget-conservation",
                    detail=(
                        f"task {task}: released={released} != "
                        f"completed={completed} + killed={killed} "
                        f"+ in-flight (found {pending})"
                    ),
                )
            )
            continue
        n_aborted = miss_kinds.get((task, "aborted"), 0)
        n_lost = miss_kinds.get((task, "lost"), 0)
        if n_aborted + n_lost != killed:
            violations.append(
                TraceViolation(
                    kind="budget-conservation",
                    detail=(
                        f"task {task}: jobs_killed={killed} but "
                        f"aborted+lost misses = {n_aborted}+{n_lost}"
                    ),
                )
            )
            continue
        if ctx.expected_work is None or task not in ctx.expected_work:
            continue
        work = ctx.expected_work[task]
        extra = overrun_extra.get(task, 0)
        penalties = 0
        if ctx.overheads is not None:
            cache = ctx.overheads.cache
            penalties = (
                stats.preemptions * cache.preemption_delay(wss.get(task, 0))
                + stats.migrations * cache.migration_delay(wss.get(task, 0))
            )
        # Completed and aborted jobs each consumed at least their nominal
        # demand; lost/in-flight jobs consumed anywhere in [0, actual].
        lower = (completed + n_aborted) * work
        upper = released * work + extra + penalties
        observed = exec_by_task.get(task, 0)
        if not lower <= observed <= upper:
            violations.append(
                TraceViolation(
                    kind="budget-conservation",
                    detail=(
                        f"task {task}: traced execution {observed} outside "
                        f"[{lower}, {upper}] (released={released} "
                        f"completed={completed} aborted={n_aborted} "
                        f"lost={n_lost} W={work} overrun_extra={extra} "
                        f"penalties<={penalties})"
                    ),
                )
            )
    return violations


@register_checker("handoff-order")
def _check_handoff_order(ctx: CheckContext) -> List[TraceViolation]:
    """Split jobs visit their subtask cores strictly in stage order.

    Every job of a split task must begin on stage 0's core and may only
    ever move to the *next* stage's core — never backwards, never
    skipping a stage (each stage has positive budget, so skipping one
    would also skip mandatory execution).
    """
    if not ctx.assignment.split_tasks:
        return []
    if _effective_class(ctx) in ("restricted",) + GLOBAL_CLASSES:
        # Restricted migration and the global classes re-plan each job's
        # stages at release time (whole job on one core); the static
        # subtask walk does not apply.
        return []
    _prios, stage_index, _offsets, stage_cores = _runtime_tables(
        ctx.assignment
    )
    violations: List[TraceViolation] = []
    per_job: Dict[str, List[Tuple[int, int, int]]] = {}
    for core, start, end, label in _exec_segments(ctx.trace):
        task = label.split("/", 1)[0]
        if task in ctx.assignment.split_tasks:
            per_job.setdefault(label, []).append((start, end, core))
    for job, segments in sorted(per_job.items()):
        task = job.split("/", 1)[0]
        stages = stage_index.get(task)
        if not stages:
            continue  # ambiguous core->stage mapping (never produced)
        segments.sort()
        current = 0
        first = True
        for start, _end, core in segments:
            stage = stages.get(core)
            if stage is None:
                continue  # placement checker reports this
            if first:
                if stage != 0:
                    violations.append(
                        TraceViolation(
                            kind="handoff-order",
                            detail=(
                                f"job {job} started on core {core} "
                                f"(stage {stage}), expected stage 0 core "
                                f"{stage_cores[task][0]}"
                            ),
                        )
                    )
                    break
                first = False
                continue
            if stage not in (current, current + 1):
                violations.append(
                    TraceViolation(
                        kind="handoff-order",
                        detail=(
                            f"job {job} jumped from stage {current} to "
                            f"stage {stage} (core {core}) at {start}"
                        ),
                    )
                )
                break
            current = stage
    return violations
