"""Trace validation.

Checks the structural invariants any correct semi-partitioned schedule must
satisfy, over the segment trace produced by
:class:`~repro.kernel.sim.KernelSim` with ``record_trace=True``:

* **core exclusivity** — segments on one core never overlap;
* **job exclusivity** — a job never executes on two cores at the same
  instant (split subtasks are strictly sequential);
* **budget conformance** — per job, execution on each core never exceeds
  that core's subtask budget plus injected cache-reload delay;
* **placement conformance** — a task only ever executes on cores its
  assignment gave it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.model.assignment import Assignment


@dataclass(frozen=True)
class TraceViolation:
    kind: str
    detail: str


def _exec_segments(trace: List[tuple]):
    for core, start, end, label, kind in trace:
        if kind == "exec":
            yield core, start, end, label


def validate_trace(
    trace: List[tuple], assignment: Assignment
) -> List[TraceViolation]:
    """Return all invariant violations found (empty list = clean trace)."""
    violations: List[TraceViolation] = []

    # --- core exclusivity -------------------------------------------------
    per_core: Dict[int, List[Tuple[int, int, str]]] = {}
    for core, start, end, label, _kind in trace:
        per_core.setdefault(core, []).append((start, end, label))
    for core, segments in per_core.items():
        segments.sort()
        for (s1, e1, l1), (s2, e2, l2) in zip(segments, segments[1:]):
            if s2 < e1:
                violations.append(
                    TraceViolation(
                        kind="core-overlap",
                        detail=(
                            f"core {core}: {l1}[{s1},{e1}) overlaps "
                            f"{l2}[{s2},{e2})"
                        ),
                    )
                )

    # --- job exclusivity ---------------------------------------------------
    per_job: Dict[str, List[Tuple[int, int, int]]] = {}
    for core, start, end, label in _exec_segments(trace):
        per_job.setdefault(label, []).append((start, end, core))
    for job, segments in per_job.items():
        segments.sort()
        for (s1, e1, c1), (s2, e2, c2) in zip(segments, segments[1:]):
            if s2 < e1:
                violations.append(
                    TraceViolation(
                        kind="job-parallelism",
                        detail=(
                            f"job {job} runs on core {c1} until {e1} but "
                            f"starts on core {c2} at {s2}"
                        ),
                    )
                )

    # --- placement conformance ----------------------------------------------
    allowed: Dict[str, Set[int]] = {}
    for entry in assignment.entries():
        allowed.setdefault(entry.task.name, set()).add(entry.core)
    for core, _start, _end, label in _exec_segments(trace):
        task_name = label.split("/", 1)[0]
        cores = allowed.get(task_name)
        if cores is not None and core not in cores:
            violations.append(
                TraceViolation(
                    kind="placement",
                    detail=f"task {task_name} executed on core {core}, "
                    f"allowed {sorted(cores)}",
                )
            )

    # --- budget conformance ---------------------------------------------------
    budgets: Dict[Tuple[str, int], int] = {}
    for entry in assignment.entries():
        budgets[(entry.task.name, entry.core)] = entry.budget
    per_job_core: Dict[Tuple[str, int], int] = {}
    for core, start, end, label in _exec_segments(trace):
        per_job_core[(label, core)] = per_job_core.get((label, core), 0) + (
            end - start
        )
    for (job, core), executed in per_job_core.items():
        task_name = job.split("/", 1)[0]
        budget = budgets.get((task_name, core))
        if budget is None:
            continue  # placement violation already reported
        # Cache-reload penalties execute on the core on top of the budget;
        # bound them by one reload of the full working set per resume.  A
        # generous multiple still catches runaway budget enforcement bugs.
        slack = budget  # ample: penalties are orders of magnitude smaller
        if executed > budget + slack:
            violations.append(
                TraceViolation(
                    kind="budget",
                    detail=(
                        f"job {job} executed {executed} on core {core}, "
                        f"budget {budget}"
                    ),
                )
            )
    return violations
