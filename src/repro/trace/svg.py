"""Standalone SVG rendering of simulation traces.

Produces a self-contained SVG Gantt chart (no external dependencies) of a
:class:`~repro.kernel.sim.SimulationResult` trace: one lane per core,
execution segments coloured per task, overhead segments hatched dark, and
release/deadline-miss markers.  Open the file in any browser.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.kernel.sim import SimulationResult

_PALETTE = [
    "#4e79a7",
    "#f28e2b",
    "#59a14f",
    "#e15759",
    "#76b7b2",
    "#edc948",
    "#b07aa1",
    "#ff9da7",
    "#9c755f",
    "#bab0ac",
]

_LANE_HEIGHT = 34
_LANE_GAP = 10
_MARGIN_LEFT = 70
_MARGIN_TOP = 30
_MARGIN_BOTTOM = 40


def _escape(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )


def render_svg(
    result: SimulationResult,
    width: int = 1000,
    start: int = 0,
    end: Optional[int] = None,
    title: str = "schedule",
) -> str:
    """Render the trace window ``[start, end)`` as an SVG document string."""
    if end is None:
        end = result.duration
    if end <= start:
        raise ValueError("need end > start")
    span = end - start
    scale = width / span

    tasks = sorted(
        {
            label.split("/", 1)[0]
            for _c, _s, _e, label, kind in result.trace
            if kind == "exec"
        }
    )
    colors: Dict[str, str] = {
        task: _PALETTE[i % len(_PALETTE)] for i, task in enumerate(tasks)
    }
    height = (
        _MARGIN_TOP
        + result.n_cores * (_LANE_HEIGHT + _LANE_GAP)
        + _MARGIN_BOTTOM
    )
    total_width = _MARGIN_LEFT + width + 20

    parts: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" '
        f'width="{total_width}" height="{height + 24 + 16 * ((len(tasks) + 4) // 5)}" '
        f'font-family="sans-serif" font-size="11">',
        f'<text x="{_MARGIN_LEFT}" y="16" font-size="13" '
        f'font-weight="bold">{_escape(title)}</text>',
    ]

    def lane_y(core: int) -> int:
        return _MARGIN_TOP + core * (_LANE_HEIGHT + _LANE_GAP)

    # Lane backgrounds and labels.
    for core in range(result.n_cores):
        y = lane_y(core)
        parts.append(
            f'<rect x="{_MARGIN_LEFT}" y="{y}" width="{width}" '
            f'height="{_LANE_HEIGHT}" fill="#f4f4f4"/>'
        )
        parts.append(
            f'<text x="8" y="{y + _LANE_HEIGHT // 2 + 4}">core {core}</text>'
        )

    # Segments.
    for core, seg_start, seg_end, label, kind in sorted(result.trace):
        if seg_end <= start or seg_start >= end:
            continue
        x0 = _MARGIN_LEFT + max(0.0, (seg_start - start) * scale)
        x1 = _MARGIN_LEFT + min(float(width), (seg_end - start) * scale)
        w = max(x1 - x0, 0.5)
        y = lane_y(core)
        if kind == "exec":
            task = label.split("/", 1)[0]
            color = colors.get(task, "#999999")
            parts.append(
                f'<rect x="{x0:.2f}" y="{y + 4}" width="{w:.2f}" '
                f'height="{_LANE_HEIGHT - 8}" fill="{color}">'
                f"<title>{_escape(label)}: {seg_start}..{seg_end}</title>"
                f"</rect>"
            )
        else:  # overhead
            parts.append(
                f'<rect x="{x0:.2f}" y="{y}" width="{w:.2f}" '
                f'height="{_LANE_HEIGHT}" fill="#333333" opacity="0.8">'
                f"<title>{_escape(label)}: {seg_start}..{seg_end}</title>"
                f"</rect>"
            )

    # Event markers (releases above the lane, misses as red flags).
    for time, kind, task, core in result.events:
        if not start <= time < end or kind not in ("release", "miss"):
            continue
        x = _MARGIN_LEFT + (time - start) * scale
        y = lane_y(core)
        if kind == "release":
            parts.append(
                f'<line x1="{x:.2f}" y1="{y - 5}" x2="{x:.2f}" y2="{y}" '
                f'stroke="#555" stroke-width="1">'
                f"<title>release {_escape(task)} @ {time}</title></line>"
            )
        else:
            parts.append(
                f'<circle cx="{x:.2f}" cy="{y - 6}" r="4" fill="#d62728">'
                f"<title>deadline miss {_escape(task)} @ {time}</title>"
                f"</circle>"
            )

    # Time axis.
    axis_y = lane_y(result.n_cores - 1) + _LANE_HEIGHT + 16
    parts.append(
        f'<line x1="{_MARGIN_LEFT}" y1="{axis_y}" '
        f'x2="{_MARGIN_LEFT + width}" y2="{axis_y}" stroke="#000"/>'
    )
    for i in range(11):
        x = _MARGIN_LEFT + width * i / 10
        t = start + span * i // 10
        parts.append(
            f'<line x1="{x:.2f}" y1="{axis_y}" x2="{x:.2f}" '
            f'y2="{axis_y + 4}" stroke="#000"/>'
        )
        parts.append(
            f'<text x="{x:.2f}" y="{axis_y + 16}" '
            f'text-anchor="middle">{t / 1_000_000:.1f}ms</text>'
        )

    # Legend.
    legend_y = axis_y + 28
    for i, task in enumerate(tasks):
        x = _MARGIN_LEFT + (i % 5) * 140
        y = legend_y + (i // 5) * 16
        parts.append(
            f'<rect x="{x}" y="{y - 9}" width="10" height="10" '
            f'fill="{colors[task]}"/>'
        )
        parts.append(f'<text x="{x + 14}" y="{y}">{_escape(task)}</text>')
    parts.append(
        f'<rect x="{_MARGIN_LEFT + (len(tasks) % 5) * 140}" '
        f'y="{legend_y + (len(tasks) // 5) * 16 - 9}" width="10" '
        f'height="10" fill="#333333" opacity="0.8"/>'
    )
    parts.append(
        f'<text x="{_MARGIN_LEFT + (len(tasks) % 5) * 140 + 14}" '
        f'y="{legend_y + (len(tasks) // 5) * 16}">kernel overhead</text>'
    )

    parts.append("</svg>")
    return "\n".join(parts)


def save_svg(
    result: SimulationResult,
    path: Union[str, Path],
    width: int = 1000,
    start: int = 0,
    end: Optional[int] = None,
    title: str = "schedule",
) -> None:
    Path(path).write_text(
        render_svg(result, width=width, start=start, end=end, title=title)
    )
