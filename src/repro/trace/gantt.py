"""ASCII rendering of simulation traces.

``render_gantt`` draws a per-core timeline; ``render_overhead_anatomy``
renders the Figure-1 reproduction: the labelled sequence of execution and
overhead segments around a preemption (a..i in the paper).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.model.time import format_ns


def render_gantt(
    trace: List[tuple],
    n_cores: int,
    width: int = 100,
    start: int = 0,
    end: Optional[int] = None,
) -> str:
    """Render the trace as one text lane per core.

    Execution segments print the first letter of the task name; overhead
    segments print ``#``; idle prints ``.``.
    """
    if not trace:
        return "(empty trace)"
    if end is None:
        end = max(seg_end for _c, _s, seg_end, _l, _k in trace)
    span = max(1, end - start)
    scale = width / span

    lanes = []
    for core in range(n_cores):
        lane = ["."] * width
        for seg_core, seg_start, seg_end, label, kind in trace:
            if seg_core != core or seg_end <= start or seg_start >= end:
                continue
            lo = max(0, int((seg_start - start) * scale))
            hi = min(width, max(lo + 1, int((seg_end - start) * scale)))
            char = "#" if kind == "overhead" else (label[0] if label else "?")
            for i in range(lo, hi):
                lane[i] = char
        lanes.append(f"core{core} |" + "".join(lane) + "|")
    header = (
        f"t = [{format_ns(start)} .. {format_ns(end)}]   "
        "(# = scheduler overhead, . = idle)"
    )
    return "\n".join([header] + lanes)


def render_overhead_anatomy(trace: List[tuple], core: int = 0) -> str:
    """Figure-1-style listing: every segment on ``core``, in order, with the
    overhead segments labelled by their source (rls / sch / cnt1 / cnt2).
    """
    rows = [
        (start, end, label, kind)
        for seg_core, start, end, label, kind in trace
        if seg_core == core
    ]
    rows.sort()
    lines = [f"{'start':>12} {'end':>12} {'dur':>10}  {'kind':<9} label"]
    for start, end, label, kind in rows:
        lines.append(
            f"{start:>12} {end:>12} {end - start:>10}  {kind:<9} {label}"
        )
    return "\n".join(lines)


def segment_summary(trace: List[tuple]) -> Dict[str, int]:
    """Total nanoseconds per segment kind and overhead label prefix."""
    summary: Dict[str, int] = {}
    for _core, start, end, label, kind in trace:
        duration = end - start
        summary[kind] = summary.get(kind, 0) + duration
        if kind == "overhead":
            prefix = label.split(":", 1)[0]
            summary[f"overhead:{prefix}"] = (
                summary.get(f"overhead:{prefix}", 0) + duration
            )
    return summary
