"""Execution-trace utilities: validation invariants and ASCII rendering."""

from repro.trace.validate import TraceViolation, validate_trace
from repro.trace.gantt import render_gantt, render_overhead_anatomy
from repro.trace.export import (
    export_trace_csv,
    export_trace_json,
    import_trace_json,
    trace_to_dict,
)
from repro.trace.svg import render_svg, save_svg
from repro.trace.timeline import busy_intervals, timeline_stats

__all__ = [
    "TraceViolation",
    "validate_trace",
    "render_gantt",
    "render_overhead_anatomy",
    "export_trace_csv",
    "export_trace_json",
    "import_trace_json",
    "trace_to_dict",
    "render_svg",
    "save_svg",
    "busy_intervals",
    "timeline_stats",
]
