"""Core data structures used by the semi-partitioned scheduler.

The PPES'11 implementation (Zhang, Guan & Yi, Section 2) keeps one *ready
queue* per core, implemented as a **binomial heap**, and one *sleep queue*
per core, implemented as a **red-black tree**.  This package provides faithful
from-scratch implementations of both, plus instrumented wrappers used by the
overhead-measurement harness (Section 3 of the paper).
"""

from repro.structures.binomial_heap import BinomialHeap
from repro.structures.rbtree import RedBlackTree
from repro.structures.instrumented import (
    InstrumentedHeap,
    InstrumentedTree,
    OperationStats,
)

__all__ = [
    "BinomialHeap",
    "RedBlackTree",
    "InstrumentedHeap",
    "InstrumentedTree",
    "OperationStats",
]
