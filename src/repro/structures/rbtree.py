"""Red-black tree.

The per-core *sleep queue* of the paper's scheduler is "implemented by a
red-black tree" (Section 2), mirroring how Linux keeps time-ordered task
collections (e.g. CFS and hrtimers) in ``rb_node`` trees.  Entries are keyed
by absolute wake-up time; the scheduler repeatedly asks for the minimum key
(the next task to release).

This is a textbook CLRS implementation with a shared NIL sentinel, supporting
duplicate keys (duplicates go to the right subtree), O(log n) insert/delete,
and in-order iteration.  ``insert`` returns a stable node reference usable
with ``remove``.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

_RED = 0
_BLACK = 1


class _RBNode:
    __slots__ = ("key", "value", "color", "left", "right", "parent")

    def __init__(self, key: Any, value: Any, color: int) -> None:
        self.key = key
        self.value = value
        self.color = color
        self.left: "_RBNode" = None  # type: ignore[assignment]
        self.right: "_RBNode" = None  # type: ignore[assignment]
        self.parent: "_RBNode" = None  # type: ignore[assignment]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        color = "R" if self.color == _RED else "B"
        return f"_RBNode({self.key!r}, {color})"


class RedBlackTree:
    """Red-black tree keyed by comparable keys, allowing duplicates.

    >>> tree = RedBlackTree()
    >>> node = tree.insert(10, "a")
    >>> _ = tree.insert(5, "b")
    >>> tree.min()
    (5, 'b')
    >>> tree.remove(node)
    >>> tree.pop_min()
    (5, 'b')
    >>> len(tree)
    0
    """

    def __init__(self) -> None:
        self._nil = _RBNode(None, None, _BLACK)
        self._nil.left = self._nil
        self._nil.right = self._nil
        self._nil.parent = self._nil
        self._root = self._nil
        self._size = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def insert(self, key: Any, value: Any = None) -> _RBNode:
        """Insert ``(key, value)``; return the node for later ``remove``."""
        node = _RBNode(key, value, _RED)
        node.left = self._nil
        node.right = self._nil
        parent = self._nil
        current = self._root
        while current is not self._nil:
            parent = current
            if key < current.key:
                current = current.left
            else:
                current = current.right
        node.parent = parent
        if parent is self._nil:
            self._root = node
        elif key < parent.key:
            parent.left = node
        else:
            parent.right = node
        self._size += 1
        self._insert_fixup(node)
        return node

    def min(self) -> Any:
        """Return ``(key, value)`` of the smallest entry."""
        if self._root is self._nil:
            raise IndexError("min on empty red-black tree")
        node = self._minimum(self._root)
        return node.key, node.value

    def min_node(self) -> Optional[_RBNode]:
        """Return the node holding the smallest key, or None if empty."""
        if self._root is self._nil:
            return None
        return self._minimum(self._root)

    def pop_min(self) -> Any:
        """Remove and return ``(key, value)`` of the smallest entry."""
        if self._root is self._nil:
            raise IndexError("pop_min on empty red-black tree")
        node = self._minimum(self._root)
        key, value = node.key, node.value
        self.remove(node)
        return key, value

    def remove(self, node: _RBNode) -> None:
        """Remove a node previously returned by ``insert``."""
        if node.parent is None:
            raise KeyError("node is no longer in the tree")
        self._delete(node)
        node.parent = None  # type: ignore[assignment]
        self._size -= 1

    def find(self, key: Any) -> Optional[_RBNode]:
        """Return some node with ``key``, or None."""
        current = self._root
        while current is not self._nil:
            if key < current.key:
                current = current.left
            elif current.key < key:
                current = current.right
            else:
                return current
        return None

    def items(self) -> Iterator[Any]:
        """In-order iteration over ``(key, value)`` pairs."""
        stack = []
        current = self._root
        while stack or current is not self._nil:
            while current is not self._nil:
                stack.append(current)
                current = current.left
            current = stack.pop()
            yield current.key, current.value
            current = current.right

    def values(self) -> Iterator[Any]:
        for _key, value in self.items():
            yield value

    def clear(self) -> None:
        self._root = self._nil
        self._size = 0

    # ------------------------------------------------------------------
    # Invariant checking (for the property-based tests)
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Raise AssertionError if red-black invariants are broken."""
        assert self._root.color == _BLACK, "root must be black"
        assert self._nil.color == _BLACK, "sentinel must be black"
        count, _black_height = self._check_node(self._root)
        assert count == self._size, f"size mismatch: {count} != {self._size}"

    def _check_node(self, node: _RBNode) -> "tuple[int, int]":
        if node is self._nil:
            return 0, 1
        if node.color == _RED:
            assert node.left.color == _BLACK, "red node with red left child"
            assert node.right.color == _BLACK, "red node with red right child"
        if node.left is not self._nil:
            assert not node.key < node.left.key, "BST order violated on the left"
            assert node.left.parent is node, "left child parent pointer broken"
        if node.right is not self._nil:
            assert not node.right.key < node.key, "BST order violated on the right"
            assert node.right.parent is node, "right child parent pointer broken"
        left_count, left_black = self._check_node(node.left)
        right_count, right_black = self._check_node(node.right)
        assert left_black == right_black, "black heights differ"
        black = left_black + (1 if node.color == _BLACK else 0)
        return left_count + right_count + 1, black

    # ------------------------------------------------------------------
    # Internals (CLRS)
    # ------------------------------------------------------------------

    def _minimum(self, node: _RBNode) -> _RBNode:
        while node.left is not self._nil:
            node = node.left
        return node

    def _left_rotate(self, x: _RBNode) -> None:
        y = x.right
        x.right = y.left
        if y.left is not self._nil:
            y.left.parent = x
        y.parent = x.parent
        if x.parent is self._nil:
            self._root = y
        elif x is x.parent.left:
            x.parent.left = y
        else:
            x.parent.right = y
        y.left = x
        x.parent = y

    def _right_rotate(self, x: _RBNode) -> None:
        y = x.left
        x.left = y.right
        if y.right is not self._nil:
            y.right.parent = x
        y.parent = x.parent
        if x.parent is self._nil:
            self._root = y
        elif x is x.parent.right:
            x.parent.right = y
        else:
            x.parent.left = y
        y.right = x
        x.parent = y

    def _insert_fixup(self, z: _RBNode) -> None:
        while z.parent.color == _RED:
            if z.parent is z.parent.parent.left:
                uncle = z.parent.parent.right
                if uncle.color == _RED:
                    z.parent.color = _BLACK
                    uncle.color = _BLACK
                    z.parent.parent.color = _RED
                    z = z.parent.parent
                else:
                    if z is z.parent.right:
                        z = z.parent
                        self._left_rotate(z)
                    z.parent.color = _BLACK
                    z.parent.parent.color = _RED
                    self._right_rotate(z.parent.parent)
            else:
                uncle = z.parent.parent.left
                if uncle.color == _RED:
                    z.parent.color = _BLACK
                    uncle.color = _BLACK
                    z.parent.parent.color = _RED
                    z = z.parent.parent
                else:
                    if z is z.parent.left:
                        z = z.parent
                        self._right_rotate(z)
                    z.parent.color = _BLACK
                    z.parent.parent.color = _RED
                    self._left_rotate(z.parent.parent)
        self._root.color = _BLACK

    def _transplant(self, u: _RBNode, v: _RBNode) -> None:
        if u.parent is self._nil:
            self._root = v
        elif u is u.parent.left:
            u.parent.left = v
        else:
            u.parent.right = v
        v.parent = u.parent

    def _delete(self, z: _RBNode) -> None:
        y = z
        y_original_color = y.color
        if z.left is self._nil:
            x = z.right
            self._transplant(z, z.right)
        elif z.right is self._nil:
            x = z.left
            self._transplant(z, z.left)
        else:
            y = self._minimum(z.right)
            y_original_color = y.color
            x = y.right
            if y.parent is z:
                x.parent = y
            else:
                self._transplant(y, y.right)
                y.right = z.right
                y.right.parent = y
            self._transplant(z, y)
            y.left = z.left
            y.left.parent = y
            y.color = z.color
        if y_original_color == _BLACK:
            self._delete_fixup(x)

    def _delete_fixup(self, x: _RBNode) -> None:
        while x is not self._root and x.color == _BLACK:
            if x is x.parent.left:
                w = x.parent.right
                if w.color == _RED:
                    w.color = _BLACK
                    x.parent.color = _RED
                    self._left_rotate(x.parent)
                    w = x.parent.right
                if w.left.color == _BLACK and w.right.color == _BLACK:
                    w.color = _RED
                    x = x.parent
                else:
                    if w.right.color == _BLACK:
                        w.left.color = _BLACK
                        w.color = _RED
                        self._right_rotate(w)
                        w = x.parent.right
                    w.color = x.parent.color
                    x.parent.color = _BLACK
                    w.right.color = _BLACK
                    self._left_rotate(x.parent)
                    x = self._root
            else:
                w = x.parent.left
                if w.color == _RED:
                    w.color = _BLACK
                    x.parent.color = _RED
                    self._right_rotate(x.parent)
                    w = x.parent.left
                if w.right.color == _BLACK and w.left.color == _BLACK:
                    w.color = _RED
                    x = x.parent
                else:
                    if w.left.color == _BLACK:
                        w.right.color = _BLACK
                        w.color = _RED
                        self._left_rotate(w)
                        w = x.parent.left
                    w.color = x.parent.color
                    x.parent.color = _BLACK
                    w.left.color = _BLACK
                    self._right_rotate(x.parent)
                    x = self._root
        x.color = _BLACK

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RedBlackTree(size={self._size})"
