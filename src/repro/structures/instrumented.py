"""Instrumented wrappers around the scheduler queue structures.

Section 3 of the paper measures "the maximal measured duration of a single
ready queue operation and sleep queue operation" for different per-core task
counts (N = 4 and N = 64).  These wrappers reproduce that measurement on our
own structures: every operation is timed with ``time.perf_counter_ns`` and
aggregated into per-operation statistics (count, max, total), so the bench
harness can report the same table shape the paper prints.

Two integration points beyond the standalone micro-benchmark:

* a wrapper can be built around a *shared* :class:`_StatsCollection`
  (several queues aggregating into one collection, e.g. all ready queues
  of one simulated platform) and/or a metrics **histogram** — any object
  with an ``observe(elapsed_ns)`` method, in practice a
  :class:`repro.metrics.registry.Histogram` — which receives every
  individual operation duration;
* **op counters are per-simulation, not per-process**: callers that
  reuse a wrapper (or a shared collection) across runs must call
  :meth:`reset` between them.  :class:`~repro.kernel.sim.KernelSim`
  does this at the start of every profiled run, so two identical
  simulations in one process report identical per-run operation counts
  instead of the second run seeing the first run's totals accumulated
  on top (the Table-1 δ/θ count regression in
  ``tests/test_instrumented_reset.py`` pins this).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.structures.binomial_heap import BinomialHeap, HeapHandle
from repro.structures.rbtree import RedBlackTree


@dataclass
class OperationStats:
    """Aggregate timing statistics for one operation type."""

    count: int = 0
    total_ns: int = 0
    max_ns: int = 0

    def record(self, elapsed_ns: int) -> None:
        self.count += 1
        self.total_ns += elapsed_ns
        if elapsed_ns > self.max_ns:
            self.max_ns = elapsed_ns

    @property
    def mean_ns(self) -> float:
        return self.total_ns / self.count if self.count else 0.0

    @property
    def max_us(self) -> float:
        return self.max_ns / 1000.0

    @property
    def mean_us(self) -> float:
        return self.mean_ns / 1000.0


@dataclass
class _StatsCollection:
    ops: Dict[str, OperationStats] = field(default_factory=dict)

    def stat(self, name: str) -> OperationStats:
        if name not in self.ops:
            self.ops[name] = OperationStats()
        return self.ops[name]

    def worst_case_us(self) -> float:
        """Max over all operation types, in microseconds."""
        if not self.ops:
            return 0.0
        return max(stat.max_us for stat in self.ops.values())

    def op_counts(self) -> Dict[str, int]:
        """Deterministic per-operation counts (sorted by name)."""
        return {name: self.ops[name].count for name in sorted(self.ops)}

    def reset(self) -> None:
        self.ops.clear()


class _InstrumentedBase:
    """Shared timing plumbing for the two queue wrappers."""

    __slots__ = ("stats", "_histogram")

    def __init__(
        self,
        stats: Optional[_StatsCollection] = None,
        histogram: Optional[Any] = None,
    ) -> None:
        self.stats = stats if stats is not None else _StatsCollection()
        self._histogram = histogram

    def reset(self) -> None:
        """Forget accumulated op statistics (per-simulation semantics)."""
        self.stats.reset()

    def _timed(self, name: str, fn, *args):
        start = time.perf_counter_ns()
        result = fn(*args)
        elapsed = time.perf_counter_ns() - start
        self.stats.stat(name).record(elapsed)
        if self._histogram is not None:
            self._histogram.observe(elapsed)
        return result


class InstrumentedHeap(_InstrumentedBase):
    """A :class:`BinomialHeap` that times every queue operation."""

    __slots__ = ("_heap",)

    def __init__(
        self,
        stats: Optional[_StatsCollection] = None,
        histogram: Optional[Any] = None,
    ) -> None:
        super().__init__(stats, histogram)
        self._heap = BinomialHeap()

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def insert(self, key: Any, value: Any = None) -> HeapHandle:
        return self._timed("insert", self._heap.insert, key, value)

    def find_min(self) -> Any:
        return self._timed("find_min", self._heap.find_min)

    def extract_min(self) -> Any:
        return self._timed("extract_min", self._heap.extract_min)

    def delete(self, handle: HeapHandle) -> None:
        return self._timed("delete", self._heap.delete, handle)

    def items(self):
        return self._heap.items()

    def check_invariants(self) -> None:
        self._heap.check_invariants()


class InstrumentedTree(_InstrumentedBase):
    """A :class:`RedBlackTree` that times every queue operation."""

    __slots__ = ("_tree",)

    def __init__(
        self,
        stats: Optional[_StatsCollection] = None,
        histogram: Optional[Any] = None,
    ) -> None:
        super().__init__(stats, histogram)
        self._tree = RedBlackTree()

    def __len__(self) -> int:
        return len(self._tree)

    def __bool__(self) -> bool:
        return bool(self._tree)

    def insert(self, key: Any, value: Any = None):
        return self._timed("insert", self._tree.insert, key, value)

    def min(self) -> Any:
        return self._timed("min", self._tree.min)

    def pop_min(self) -> Any:
        return self._timed("pop_min", self._tree.pop_min)

    def remove(self, node) -> None:
        return self._timed("remove", self._tree.remove, node)

    def items(self):
        return self._tree.items()

    def check_invariants(self) -> None:
        self._tree.check_invariants()
