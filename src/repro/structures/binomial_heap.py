"""Binomial min-heap.

The per-core *ready queue* of the paper's scheduler is "implemented by a
binomial heap" (Section 2).  A binomial heap supports O(log n) insert,
find-min, extract-min, arbitrary delete, and O(log n) melding, which is what
makes it attractive for a scheduler ready queue: a migrating subtask can be
inserted into the destination core's queue in logarithmic time.

Keys are arbitrary comparable objects (the scheduler uses
``(priority, sequence)`` tuples so that FIFO order breaks priority ties).
``insert`` returns a :class:`HeapHandle` that remains valid until the entry is
removed, enabling O(log n) ``delete`` and ``decrease_key``.  Internally the
heap moves *payloads* between tree nodes (the classic sift-up), and each move
re-points the affected handles, so handles never go stale.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional


class HeapHandle:
    """Opaque, stable reference to one entry of a :class:`BinomialHeap`."""

    __slots__ = ("_node",)

    def __init__(self, node: "_BinomialNode") -> None:
        self._node = node

    @property
    def key(self) -> Any:
        if self._node is None:
            raise KeyError("handle is no longer in the heap")
        return self._node.key

    @property
    def value(self) -> Any:
        if self._node is None:
            raise KeyError("handle is no longer in the heap")
        return self._node.value

    @property
    def in_heap(self) -> bool:
        return self._node is not None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        if self._node is None:
            return "HeapHandle(detached)"
        return f"HeapHandle(key={self._node.key!r})"


class _BinomialNode:
    """One node of a binomial tree inside the heap forest."""

    __slots__ = ("key", "value", "handle", "degree", "parent", "child", "sibling")

    def __init__(self, key: Any, value: Any) -> None:
        self.key = key
        self.value = value
        self.handle: Optional[HeapHandle] = None
        self.degree = 0
        self.parent: Optional[_BinomialNode] = None
        self.child: Optional[_BinomialNode] = None
        self.sibling: Optional[_BinomialNode] = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"_BinomialNode(key={self.key!r}, degree={self.degree})"


class BinomialHeap:
    """A binomial min-heap with stable node handles.

    >>> heap = BinomialHeap()
    >>> handle = heap.insert(5, "five")
    >>> _ = heap.insert(2, "two")
    >>> heap.find_min()
    (2, 'two')
    >>> heap.delete(handle)
    >>> heap.extract_min()
    (2, 'two')
    >>> len(heap)
    0
    """

    def __init__(self) -> None:
        self._head: Optional[_BinomialNode] = None
        self._size = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def insert(self, key: Any, value: Any = None) -> HeapHandle:
        """Insert ``value`` with priority ``key``; return a stable handle.

        Uses a dedicated single-node fast path instead of the general
        union: inserting a degree-0 tree is a binary-counter increment —
        link while the head root has the same degree as the carry, then
        prepend.  Equivalent to ``_union`` (the new node sorts first among
        equal degrees), but with no merge bookkeeping on the hot path.
        """
        node = _BinomialNode(key, value)
        handle = HeapHandle(node)
        node.handle = handle
        head = self._head
        link = self._link
        while head is not None and head.degree == node.degree:
            nxt = head.sibling
            head.sibling = None
            if head.key < node.key:
                link(node, head)
                node = head
            else:
                link(head, node)
            head = nxt
        node.sibling = head
        self._head = node
        self._size += 1
        return handle

    def find_min(self) -> Any:
        """Return ``(key, value)`` of the minimum entry without removing it."""
        node = self._min_node()
        if node is None:
            raise IndexError("find_min on empty binomial heap")
        return node.key, node.value

    def peek_value(self) -> Any:
        """Return only the value of the minimum entry."""
        return self.find_min()[1]

    def extract_min(self) -> Any:
        """Remove and return ``(key, value)`` of the minimum entry."""
        node = self._min_node()
        if node is None:
            raise IndexError("extract_min on empty binomial heap")
        self._remove_root(node)
        self._detach(node)
        self._size -= 1
        return node.key, node.value

    def delete(self, handle: HeapHandle) -> None:
        """Remove an arbitrary entry via its handle in O(log n)."""
        node = handle._node
        if node is None:
            raise KeyError("handle is no longer in the heap")
        root = self._bubble_to_root(node)
        self._remove_root(root)
        self._detach(root)
        self._size -= 1

    def decrease_key(self, handle: HeapHandle, new_key: Any) -> None:
        """Decrease the key of the entry referenced by ``handle``."""
        node = handle._node
        if node is None:
            raise KeyError("handle is no longer in the heap")
        if node.key < new_key:
            raise ValueError("decrease_key called with a larger key")
        node.key = new_key
        self._sift_up(node)

    def merge(self, other: "BinomialHeap") -> None:
        """Meld ``other`` into this heap, emptying ``other``."""
        if other is self:
            raise ValueError("cannot merge a heap with itself")
        if other._head is not None:
            self._merge_root_list(other._head)
            self._size += other._size
        other._head = None
        other._size = 0

    def items(self) -> Iterator[Any]:
        """Iterate over all ``(key, value)`` pairs in no particular order."""
        stack: List[_BinomialNode] = []
        node = self._head
        while node is not None:
            stack.append(node)
            node = node.sibling
        while stack:
            current = stack.pop()
            yield current.key, current.value
            child = current.child
            while child is not None:
                stack.append(child)
                child = child.sibling

    def values(self) -> Iterator[Any]:
        for _key, value in self.items():
            yield value

    def clear(self) -> None:
        # Detach all handles so stale handles raise instead of corrupting.
        stack: List[_BinomialNode] = []
        node = self._head
        while node is not None:
            stack.append(node)
            node = node.sibling
        while stack:
            current = stack.pop()
            child = current.child
            while child is not None:
                stack.append(child)
                child = child.sibling
            self._detach(current)
        self._head = None
        self._size = 0

    # ------------------------------------------------------------------
    # Structural invariant check (used by the property-based tests)
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Raise AssertionError if the binomial-heap invariants are broken."""
        seen_degrees = set()
        count = 0
        node = self._head
        prev_degree = -1
        while node is not None:
            assert node.parent is None, "root with a parent"
            assert node.degree > prev_degree, "root degrees not strictly increasing"
            assert node.degree not in seen_degrees, "duplicate root degree"
            seen_degrees.add(node.degree)
            prev_degree = node.degree
            count += self._check_tree(node)
            node = node.sibling
        assert count == self._size, f"size mismatch: {count} != {self._size}"

    def _check_tree(self, root: _BinomialNode) -> int:
        """Check heap order and binomial shape below ``root``; return node count."""
        assert root.handle is not None and root.handle._node is root, (
            "handle backlink broken"
        )
        count = 1
        expected_child_degree = root.degree - 1
        child = root.child
        while child is not None:
            assert child.parent is root, "child with wrong parent pointer"
            assert not child.key < root.key, "heap order violated"
            assert child.degree == expected_child_degree, "binomial shape violated"
            count += self._check_tree(child)
            expected_child_degree -= 1
            child = child.sibling
        assert expected_child_degree == -1, "missing children for degree"
        return count

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    @staticmethod
    def _detach(node: _BinomialNode) -> None:
        if node.handle is not None:
            node.handle._node = None
            node.handle = None

    def _min_node(self) -> Optional[_BinomialNode]:
        best = None
        node = self._head
        while node is not None:
            if best is None or node.key < best.key:
                best = node
            node = node.sibling
        return best

    @staticmethod
    def _link(child: _BinomialNode, parent: _BinomialNode) -> None:
        """Make ``child`` the left-most child of ``parent`` (equal degrees)."""
        child.parent = parent
        child.sibling = parent.child
        parent.child = child
        parent.degree += 1

    def _merge_root_list(self, other_head: _BinomialNode) -> None:
        """Merge another root list into ours and fix up duplicate degrees."""
        self._head = self._union(self._head, other_head)

    def _union(
        self, a: Optional[_BinomialNode], b: Optional[_BinomialNode]
    ) -> Optional[_BinomialNode]:
        head = self._merge_by_degree(a, b)
        if head is None:
            return None
        prev: Optional[_BinomialNode] = None
        curr = head
        nxt = curr.sibling
        while nxt is not None:
            if curr.degree != nxt.degree or (
                nxt.sibling is not None and nxt.sibling.degree == curr.degree
            ):
                prev = curr
                curr = nxt
            elif not nxt.key < curr.key:
                curr.sibling = nxt.sibling
                self._link(nxt, curr)
            else:
                if prev is None:
                    head = nxt
                else:
                    prev.sibling = nxt
                self._link(curr, nxt)
                curr = nxt
            nxt = curr.sibling
        return head

    @staticmethod
    def _merge_by_degree(
        a: Optional[_BinomialNode], b: Optional[_BinomialNode]
    ) -> Optional[_BinomialNode]:
        """Merge two root lists sorted by degree (like merging sorted lists)."""
        dummy = _BinomialNode(None, None)
        tail = dummy
        while a is not None and b is not None:
            if a.degree <= b.degree:
                tail.sibling = a
                a = a.sibling
            else:
                tail.sibling = b
                b = b.sibling
            tail = tail.sibling
        tail.sibling = a if a is not None else b
        return dummy.sibling

    def _remove_root(self, root: _BinomialNode) -> None:
        """Detach ``root`` from the root list and re-meld its children."""
        prev = None
        node = self._head
        while node is not root:
            prev = node
            node = node.sibling
        if prev is None:
            self._head = root.sibling
        else:
            prev.sibling = root.sibling
        # Reverse the child list (children are stored in decreasing degree).
        child = root.child
        reversed_head: Optional[_BinomialNode] = None
        while child is not None:
            nxt = child.sibling
            child.sibling = reversed_head
            child.parent = None
            reversed_head = child
            child = nxt
        root.child = None
        root.sibling = None
        root.parent = None
        root.degree = 0
        if reversed_head is not None:
            self._head = self._union(self._head, reversed_head)

    @staticmethod
    def _swap_payload(a: _BinomialNode, b: _BinomialNode) -> None:
        """Swap keys, values and handle backlinks so handles stay valid."""
        a.key, b.key = b.key, a.key
        a.value, b.value = b.value, a.value
        a.handle, b.handle = b.handle, a.handle
        if a.handle is not None:
            a.handle._node = a
        if b.handle is not None:
            b.handle._node = b

    def _sift_up(self, node: _BinomialNode) -> _BinomialNode:
        """Swap payloads towards the root while heap order is violated."""
        current = node
        parent = current.parent
        while parent is not None and current.key < parent.key:
            self._swap_payload(current, parent)
            current = parent
            parent = current.parent
        return current

    def _bubble_to_root(self, node: _BinomialNode) -> _BinomialNode:
        """Move ``node``'s payload to the root of its tree unconditionally."""
        current = node
        parent = current.parent
        while parent is not None:
            self._swap_payload(current, parent)
            current = parent
            parent = current.parent
        return current

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"BinomialHeap(size={self._size})"
