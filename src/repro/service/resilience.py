"""The service's resilience core: the load-bearing part of `repro serve`.

Serving schedulability analysis to real traffic means the interesting
engineering is not the HTTP plumbing but what happens when the system is
loaded, broken, or both.  This module collects the four mechanisms the
service composes, each deterministic under an injectable clock and seed
so the chaos suite can pin exact schedules:

* :class:`TokenBucket` — request-rate load shedding.  A request that
  finds no token is answered ``429`` with a truthful ``Retry-After``.
* :class:`BoundedQueue` — admission-queue back-pressure.  The service
  bounds *concurrently admitted* work; beyond the bound it sheds rather
  than queueing unboundedly (the classic overload death spiral).
* :class:`DeadlineBudget` — a per-request wall-clock budget, decremented
  as the request moves through the ladder and propagated down to the
  engine's per-unit timeouts.  A request never outlives its budget: it
  is answered (possibly degraded) or explicitly shed, never hung.
* :class:`CircuitBreaker` — per-worker-shard failure isolation with the
  classic closed/open/half-open protocol and seeded deterministic
  exponential backoff, so a crashing shard stops receiving traffic
  until a probe proves it healthy again.
* :class:`DegradationLadder` — the explicit quality-of-service ladder:
  ``batch`` (vectorized kernels) → ``scalar`` (incremental contexts) →
  ``cache`` (answer warm queries only) → ``shed``.  Every downgrade is
  counted in the metrics registry, so ``/metrics`` shows exactly how
  much quality was traded for survival.

None of these classes knows about HTTP or asyncio; they are plain
synchronous state machines driven by the service layer (and, in tests,
by a fake clock).
"""

from __future__ import annotations

import random
from typing import Callable, Optional, Tuple

from repro.metrics.registry import MetricsRegistry, active as _metrics_active

Clock = Callable[[], float]

#: The ladder's rungs, best first.  ``mode_at_most`` clamps toward the
#: degraded end; the service walks left to right when rungs fail.
MODES: Tuple[str, ...] = ("batch", "scalar", "cache", "shed")


def mode_index(mode: str) -> int:
    try:
        return MODES.index(mode)
    except ValueError:
        raise ValueError(
            f"unknown degradation mode {mode!r}; modes: {MODES}"
        ) from None


class TokenBucket:
    """A token bucket: ``rate`` tokens/second, at most ``burst`` stored.

    ``try_acquire`` either takes a token (True) or reports the shed,
    and :meth:`retry_after` tells the shed client how long until a
    token will exist — an honest ``Retry-After``, not a guess.
    A non-positive ``rate`` disables the limiter (always admits).
    """

    def __init__(
        self, rate: float, burst: int, clock: Optional[Clock] = None
    ) -> None:
        if burst < 1:
            raise ValueError("burst must be at least 1")
        import time

        self.rate = float(rate)
        self.burst = int(burst)
        self.clock = clock if clock is not None else time.monotonic
        self._tokens = float(burst)
        self._last = self.clock()

    def _refill(self) -> None:
        now = self.clock()
        elapsed = max(0.0, now - self._last)
        self._last = now
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)

    def try_acquire(self) -> bool:
        if self.rate <= 0:
            return True
        self._refill()
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False

    def retry_after(self) -> float:
        """Seconds until one full token exists (0 if one does already)."""
        if self.rate <= 0:
            return 0.0
        self._refill()
        if self._tokens >= 1.0:
            return 0.0
        return (1.0 - self._tokens) / self.rate


class BoundedQueue:
    """Back-pressure on concurrently admitted requests.

    Not an actual queue: the service admits a request by ``try_enter``
    and releases the slot in ``leave``.  Holding the bound here (rather
    than letting asyncio accept unboundedly) keeps latency under
    overload flat — excess requests are shed immediately with 429.
    ``limit=0`` sheds everything (useful to force the path in tests).
    """

    def __init__(self, limit: int) -> None:
        if limit < 0:
            raise ValueError("queue limit must be non-negative")
        self.limit = limit
        self.depth = 0

    def try_enter(self) -> bool:
        if self.depth >= self.limit:
            return False
        self.depth += 1
        return True

    def leave(self) -> None:
        if self.depth > 0:
            self.depth -= 1


class DeadlineBudget:
    """A per-request wall-clock budget.

    Created when the request is admitted; every stage asks
    :meth:`remaining` before starting and :meth:`sub_timeout` when
    deriving a child timeout (e.g. the engine's ``unit_timeout``), so
    the deadline propagates down instead of multiplying.
    """

    def __init__(
        self, budget_s: float, clock: Optional[Clock] = None
    ) -> None:
        import time

        if budget_s <= 0:
            raise ValueError("deadline budget must be positive")
        self.budget_s = float(budget_s)
        self.clock = clock if clock is not None else time.monotonic
        self._start = self.clock()

    def elapsed(self) -> float:
        return max(0.0, self.clock() - self._start)

    def remaining(self) -> float:
        return max(0.0, self.budget_s - self.elapsed())

    def expired(self) -> bool:
        return self.remaining() <= 0.0

    def sub_timeout(self, cap: Optional[float] = None) -> float:
        """The budget left, optionally capped (never below 1 ms)."""
        remaining = self.remaining()
        if cap is not None:
            remaining = min(remaining, cap)
        return max(0.001, remaining)


class CircuitBreaker:
    """Per-shard closed/open/half-open circuit breaker.

    * **closed** — traffic flows; ``failures`` consecutive failures trip
      the breaker open.
    * **open** — :meth:`allow` refuses until the backoff window elapses;
      the window is ``reset_timeout * 2**(trips-1)`` plus up to +25%
      jitter seeded from ``(seed, name, trips)`` — deterministic for a
      fixed seed, decorrelated across shards (no thundering herd of
      simultaneous probes).
    * **half-open** — exactly one probe request is allowed through; its
      success closes the breaker, its failure re-opens with a doubled
      window.

    Transitions are reported through ``on_transition(name, old, new)``
    (the service counts them in ``svc_breaker_transitions_total``).
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(
        self,
        name: str,
        failure_threshold: int = 3,
        reset_timeout: float = 1.0,
        max_backoff: float = 60.0,
        seed: int = 0,
        clock: Optional[Clock] = None,
        on_transition: Optional[Callable[[str, str, str], None]] = None,
    ) -> None:
        import time

        if failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        if reset_timeout <= 0:
            raise ValueError("reset_timeout must be positive")
        self.name = name
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.max_backoff = max_backoff
        self.seed = seed
        self.clock = clock if clock is not None else time.monotonic
        self.on_transition = on_transition
        self.state = self.CLOSED
        self.consecutive_failures = 0
        self.trips = 0  # times the breaker has opened
        self._opened_at = 0.0
        self._probing = False

    def _transition(self, new_state: str) -> None:
        old, self.state = self.state, new_state
        if old != new_state and self.on_transition is not None:
            self.on_transition(self.name, old, new_state)

    def backoff(self, trips: Optional[int] = None) -> float:
        """The open window after the ``trips``-th trip (deterministic)."""
        if trips is None:
            trips = self.trips
        base = self.reset_timeout * (2 ** max(0, trips - 1))
        jitter = random.Random(
            f"repro-breaker:{self.seed}:{self.name}:{trips}"
        ).random() * 0.25
        return min(self.max_backoff, base * (1.0 + jitter))

    def allow(self) -> bool:
        """May a request be sent to this shard right now?"""
        if self.state == self.CLOSED:
            return True
        if self.state == self.OPEN:
            if self.clock() - self._opened_at >= self.backoff():
                self._transition(self.HALF_OPEN)
                self._probing = True
                return True
            return False
        # half-open: exactly one probe in flight
        if not self._probing:
            self._probing = True
            return True
        return False

    def retry_after(self) -> float:
        """Seconds until the breaker would next allow a probe."""
        if self.state != self.OPEN:
            return 0.0
        return max(
            0.0, self.backoff() - (self.clock() - self._opened_at)
        )

    def record_success(self) -> None:
        self.consecutive_failures = 0
        self._probing = False
        if self.state != self.CLOSED:
            self.trips = 0
            self._transition(self.CLOSED)

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        if self.state == self.HALF_OPEN:
            self._probing = False
            self._open()
        elif (
            self.state == self.CLOSED
            and self.consecutive_failures >= self.failure_threshold
        ):
            self._open()

    def _open(self) -> None:
        self.trips += 1
        self._opened_at = self.clock()
        self._transition(self.OPEN)


class DegradationLadder:
    """The service-wide quality level: ``batch → scalar → cache → shed``.

    The ladder holds the *starting* rung for new requests.  Failures
    (``report_failure``) push it one rung toward ``shed`` once
    ``trip_threshold`` of them accumulate at the current rung; sustained
    success (``recovery_s`` seconds without a failure, observed by
    ``report_success``) climbs one rung back toward ``batch``.  Every
    move is counted: ``svc_degraded_total{to=...}`` going down,
    ``svc_recovered_total{to=...}`` going up, and the current rung is
    exported as the ``svc_ladder_level`` gauge (0 = batch ... 3 = shed).

    Requests may additionally be degraded *individually* below the
    ladder's rung (open breaker on the routed shard, expired deadline);
    the service counts those through :meth:`count_downgrade` so the same
    metric family covers both causes.
    """

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        clock: Optional[Clock] = None,
        trip_threshold: int = 2,
        recovery_s: float = 5.0,
    ) -> None:
        import time

        if trip_threshold < 1:
            raise ValueError("trip_threshold must be at least 1")
        self.metrics = _metrics_active(metrics)
        self.clock = clock if clock is not None else time.monotonic
        self.trip_threshold = trip_threshold
        self.recovery_s = recovery_s
        self._level = 0
        self._failures_at_level = 0
        self._last_failure = self.clock() - recovery_s
        self._export_level()

    @property
    def mode(self) -> str:
        return MODES[self._level]

    def _export_level(self) -> None:
        if self.metrics is not None:
            self.metrics.gauge("svc_ladder_level").set(self._level)

    def count_downgrade(self, to_mode: str, reason: str) -> None:
        """Count one per-request downgrade (ladder rung unchanged)."""
        if self.metrics is not None:
            self.metrics.counter(
                "svc_degraded_total", to=to_mode, reason=reason
            ).inc()

    def report_failure(self, reason: str = "failure") -> None:
        """A rung failed to serve a request; maybe step down."""
        self._last_failure = self.clock()
        self._failures_at_level += 1
        if (
            self._failures_at_level >= self.trip_threshold
            and self._level < len(MODES) - 1
        ):
            self._level += 1
            self._failures_at_level = 0
            self.count_downgrade(MODES[self._level], reason)
            self._export_level()

    def report_success(self) -> None:
        """A request succeeded; climb after a quiet recovery window."""
        if (
            self._level > 0
            and self.clock() - self._last_failure >= self.recovery_s
        ):
            self._level -= 1
            self._failures_at_level = 0
            if self.metrics is not None:
                self.metrics.counter(
                    "svc_recovered_total", to=MODES[self._level]
                ).inc()
            self._export_level()

    def force(self, mode: str) -> None:
        """Pin the ladder at ``mode`` (tests and operational override)."""
        self._level = mode_index(mode)
        self._failures_at_level = 0
        self._export_level()
