"""`repro serve`: the schedulability-as-a-service asyncio front end.

A stdlib-only HTTP/1.1 service (no frameworks — ``asyncio.start_server``
plus a small parser) that wraps the analysis stack for online use:

* ``POST /v1/admission`` — one task set, one verdict per algorithm:
  *admit this workload to this platform?*  Served through the
  degradation ladder under a per-request deadline budget.
* ``POST /v1/campaign`` — a whole acceptance campaign; returns a job id
  immediately.  ``GET /v1/jobs/<id>`` polls it.  Jobs survive worker
  crashes and service restarts (see :mod:`repro.service.jobs`).
* ``GET /metrics`` — Prometheus exposition of the shared registry
  (service counters plus the engines' ``engine_*`` and analysis
  ``ana_*`` families).
* ``GET /healthz`` / ``GET /readyz`` — liveness and readiness.

Every response is explicit about what it is: a ``200`` carries a real
verdict (possibly with ``"degraded"`` naming the rung that produced
it), a ``429``/``503`` carries a truthful ``Retry-After``.  There is no
path that returns a wrong or hung answer: compute rungs that fail step
down the ladder, the cache rung answers only byte-validated entries,
and the final rung sheds.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple

from repro.engine import AdmissionUnit, ResultCache, unit_fingerprint
from repro.engine.units import admission_taskset, execute_admission
from repro.metrics.registry import MetricsRegistry
from repro.service.chaos import ChaosController
from repro.service.jobs import JobManager, JobSpec, overhead_model_from_spec
from repro.service.resilience import (
    MODES,
    BoundedQueue,
    DeadlineBudget,
    DegradationLadder,
    TokenBucket,
    mode_index,
)
from repro.service.shards import DeadlineExceeded, ShardPool

#: Largest accepted request body; admission task sets and campaign specs
#: are small, so anything bigger is a client bug or an attack.
MAX_BODY_BYTES = 1 << 20

Response = Tuple[int, Dict[str, str], bytes]


@dataclass
class ServiceConfig:
    """Tuning knobs of one service instance (see docs/service.md)."""

    host: str = "127.0.0.1"
    port: int = 8337
    shards: int = 2
    queue_limit: int = 64
    rate: float = 0.0  # requests/second admitted; <= 0 disables
    burst: int = 8
    deadline_s: float = 5.0  # default per-request budget
    unit_timeout: Optional[float] = None  # campaign per-unit budget
    retries: int = 1
    data_dir: str = ".repro-service"
    cache_dir: Optional[str] = None  # default: <data_dir>/cache
    seed: int = 0
    breaker_threshold: int = 3
    breaker_reset_s: float = 1.0
    ladder_trip_threshold: int = 2
    ladder_recovery_s: float = 5.0


class ServiceApp:
    """The service: routing, the resilience core, and the HTTP glue.

    ``handle()`` is a pure async function from (method, path, body) to a
    response triple, so the whole behaviour — ladder walks, shedding,
    breaker trips — is testable without opening a socket; ``serve()``
    is a thin asyncio adapter over it.
    """

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
        clock=None,
        chaos: Optional[ChaosController] = None,
    ) -> None:
        import time

        self.config = config if config is not None else ServiceConfig()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.clock = clock if clock is not None else time.monotonic
        self.chaos = chaos
        # Deadline budgets use the (possibly chaos-skewed) clock; the
        # breakers/bucket keep the true one, mirroring a host whose
        # processes disagree about time.
        self.deadline_clock = (
            chaos.skew_clock(self.clock) if chaos is not None else self.clock
        )
        self.data_dir = Path(self.config.data_dir)
        self.data_dir.mkdir(parents=True, exist_ok=True)
        cache_dir = (
            Path(self.config.cache_dir)
            if self.config.cache_dir is not None
            else self.data_dir / "cache"
        )
        self.cache = ResultCache(cache_dir)
        self.bucket = TokenBucket(
            self.config.rate, self.config.burst, clock=self.clock
        )
        self.queue = BoundedQueue(self.config.queue_limit)
        self.ladder = DegradationLadder(
            metrics=self.metrics,
            clock=self.clock,
            trip_threshold=self.config.ladder_trip_threshold,
            recovery_s=self.config.ladder_recovery_s,
        )
        self.pool = ShardPool(
            n_shards=self.config.shards,
            metrics=self.metrics,
            clock=self.clock,
            seed=self.config.seed,
            chaos=chaos,
            failure_threshold=self.config.breaker_threshold,
            reset_timeout=self.config.breaker_reset_s,
        )
        self.jobs = JobManager(
            self.data_dir,
            self.pool,
            metrics=self.metrics,
            unit_timeout=self.config.unit_timeout,
            retries=self.config.retries,
        )
        self._started = False
        self._server: Optional[asyncio.AbstractServer] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def startup(self) -> list:
        """Resume interrupted campaign jobs; idempotent."""
        if self._started:
            return []
        self._started = True
        return self.jobs.resume_pending()

    async def shutdown(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.pool.close()

    # ------------------------------------------------------------------
    # Response helpers
    # ------------------------------------------------------------------

    def _json(
        self,
        status: int,
        payload: dict,
        retry_after: Optional[float] = None,
    ) -> Response:
        headers = {"Content-Type": "application/json"}
        if retry_after is not None:
            # Ceil to a whole second; 0 invites an instant retry storm.
            headers["Retry-After"] = str(max(1, int(retry_after + 0.999)))
        body = (json.dumps(payload, sort_keys=True) + "\n").encode()
        return status, headers, body

    def _shed(self, status: int, reason: str, retry_after: float) -> Response:
        self.metrics.counter("svc_shed_total", reason=reason).inc()
        return self._json(
            status,
            {"error": "overloaded", "reason": reason},
            retry_after=retry_after,
        )

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    async def handle(self, method: str, path: str, body: bytes) -> Response:
        try:
            response = await self._route(method, path, body)
        except Exception as exc:  # last-resort: a 500, never a hang
            response = self._json(
                500, {"error": f"{type(exc).__name__}: {exc}"}
            )
        self.metrics.counter(
            "svc_requests_total",
            endpoint=self._endpoint_label(method, path),
            status=str(response[0]),
        ).inc()
        return response

    @staticmethod
    def _endpoint_label(method: str, path: str) -> str:
        if path.startswith("/v1/jobs/"):
            path = "/v1/jobs"
        return f"{method} {path}"

    async def _route(self, method: str, path: str, body: bytes) -> Response:
        if method == "GET" and path == "/healthz":
            return self._json(200, {"status": "ok"})
        if method == "GET" and path == "/readyz":
            if self._started and self.pool.any_closed():
                return self._json(
                    200, {"status": "ready", "shards": self.pool.state()}
                )
            return self._json(
                503,
                {"status": "not ready", "shards": self.pool.state()},
                retry_after=1.0,
            )
        if method == "GET" and path == "/metrics":
            return (
                200,
                {"Content-Type": "text/plain; version=0.0.4"},
                self.metrics.to_prometheus().encode(),
            )
        if method == "POST" and path == "/v1/admission":
            return await self._admission(body)
        if method == "POST" and path == "/v1/campaign":
            return await self._campaign(body)
        if method == "GET" and path.startswith("/v1/jobs/"):
            return self._job_status(path[len("/v1/jobs/"):])
        return self._json(404, {"error": f"no route {method} {path}"})

    # ------------------------------------------------------------------
    # Admission: the degradation-ladder walk
    # ------------------------------------------------------------------

    def _parse_admission(self, body: bytes):
        """Body → (AdmissionUnit, deadline_s); ValueError = 400."""
        try:
            data = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            raise ValueError("body is not valid JSON") from None
        if not isinstance(data, dict) or "tasks" not in data:
            raise ValueError("body must be an object with a 'tasks' list")
        from repro.experiments.algorithms import ALGORITHMS
        from repro.model.io import taskset_from_dict

        taskset = taskset_from_dict({"tasks": data["tasks"]})
        if len(taskset) == 0:
            raise ValueError("'tasks' must be non-empty")
        n_cores = int(data.get("cores", 4))
        if n_cores < 1:
            raise ValueError("'cores' must be at least 1")
        algorithms = tuple(data.get("algorithms", ("FP-TS", "FFD", "WFD")))
        for name in algorithms:
            if name not in ALGORITHMS:
                raise ValueError(
                    f"unknown algorithm {name!r}; choose from "
                    f"{sorted(ALGORITHMS)}"
                )
        model = overhead_model_from_spec(
            str(data.get("overheads", "zero")),
            max(1, len(taskset) // n_cores),
        )
        deadline_s = float(
            data.get("deadline_ms", self.config.deadline_s * 1000)
        ) / 1000.0
        if deadline_s <= 0:
            raise ValueError("'deadline_ms' must be positive")
        unit = AdmissionUnit(
            tasks=tuple(
                (task.name, task.wcet, task.period, task.deadline, task.wss)
                for task in taskset
            ),
            n_cores=n_cores,
            algorithms=algorithms,
            overheads=model,
        )
        admission_taskset(unit)  # validates task parameters (ValueError)
        return unit, deadline_s

    async def _admission(self, body: bytes) -> Response:
        # Shed before spending any work: rate first, then queue bound.
        if not self.bucket.try_acquire():
            return self._shed(429, "rate", self.bucket.retry_after())
        if not self.queue.try_enter():
            return self._shed(429, "queue", 1.0)
        try:
            try:
                unit, deadline_s = self._parse_admission(body)
            except ValueError as exc:
                return self._json(400, {"error": str(exc)})
            budget = DeadlineBudget(deadline_s, clock=self.deadline_clock)
            return await self._admission_ladder(unit, budget)
        finally:
            self.queue.leave()

    async def _admission_ladder(
        self, unit: AdmissionUnit, budget: DeadlineBudget
    ) -> Response:
        """Walk the ladder from its current rung until a rung answers."""
        fingerprint = unit_fingerprint(unit)
        shard_index = self.pool.route(fingerprint)
        level = mode_index(self.ladder.mode)
        entry_level = level
        # An open breaker on the routed shard degrades this request to
        # the cache rung without consuming the ladder's global state.
        if level < 2 and not self.pool.allow(shard_index):
            level = 2
            self.ladder.count_downgrade("cache", "breaker")

        from repro.analysis.batch import PopulationError

        while True:
            mode = MODES[level]
            if budget.expired() and mode in ("batch", "scalar"):
                # No time left to compute; drop to the cache rung.
                self.ladder.count_downgrade("cache", "deadline")
                level = 2
                continue
            if mode == "shed":
                return self._shed(503, "ladder", 1.0)
            if mode == "cache":
                payload = self.cache.load(fingerprint)
                if payload is not None and "verdicts" in payload:
                    self.metrics.counter("svc_cache_answers_total").inc()
                    return self._verdict_response(
                        unit, payload, degraded="cache" if entry_level < 2
                        else None,
                    )
                retry_after = max(1.0, self.pool.retry_after(shard_index))
                return self._shed(503, "cache-miss", retry_after)
            # Compute rungs: batch or scalar, on the routed shard.
            try:
                if mode == "batch" and self.chaos is not None:
                    self.chaos.before_batch()
                payload = await self.pool.run(
                    shard_index,
                    lambda: execute_admission(unit, mode),
                    timeout=budget.sub_timeout(),
                    kind=f"admission:{mode}",
                )
            except PopulationError:
                self.ladder.report_failure("batch")
                self.ladder.count_downgrade("scalar", "batch-error")
                level = max(level, 1)
                continue
            except DeadlineExceeded:
                self.ladder.report_failure("deadline")
                self.ladder.count_downgrade("cache", "deadline")
                level = 2
                continue
            except Exception:
                # ShardKilled or a genuine analysis crash: breaker has
                # been fed by the pool; step one rung down.
                self.ladder.report_failure("shard")
                level = min(level + 1, len(MODES) - 1)
                self.ladder.count_downgrade(MODES[level], "shard-failure")
                continue
            self.cache.store(fingerprint, payload)
            self.ladder.report_success()
            degraded = mode if level > entry_level else None
            return self._verdict_response(unit, payload, degraded=degraded)

    def _verdict_response(
        self,
        unit: AdmissionUnit,
        payload: dict,
        degraded: Optional[str] = None,
    ) -> Response:
        verdicts = payload["verdicts"]
        for name, admitted in verdicts.items():
            self.metrics.counter(
                "svc_admission_verdicts_total",
                verdict="admit" if admitted else "reject",
            ).inc()
        doc = {
            "verdicts": verdicts,
            "admitted": sorted(
                name for name, ok in verdicts.items() if ok
            ),
            "cores": unit.n_cores,
        }
        if degraded is not None:
            doc["degraded"] = degraded
        return self._json(200, doc)

    # ------------------------------------------------------------------
    # Campaign jobs
    # ------------------------------------------------------------------

    async def _campaign(self, body: bytes) -> Response:
        if not self.bucket.try_acquire():
            return self._shed(429, "rate", self.bucket.retry_after())
        try:
            data = json.loads(body.decode("utf-8"))
            spec = JobSpec.from_dict(data)
        except (ValueError, UnicodeDecodeError) as exc:
            return self._json(400, {"error": str(exc)})
        job_id, state = self.jobs.submit(spec)
        return self._json(
            202 if state == "running" else 200,
            {"id": job_id, "state": state, "href": f"/v1/jobs/{job_id}"},
        )

    def _job_status(self, job_id: str) -> Response:
        status = self.jobs.status(job_id)
        if status is None:
            return self._json(404, {"error": f"unknown job {job_id!r}"})
        return self._json(200, status)

    # ------------------------------------------------------------------
    # The socket layer
    # ------------------------------------------------------------------

    async def _client_connected(self, reader, writer) -> None:
        try:
            try:
                method, path, length = await asyncio.wait_for(
                    _read_head(reader), timeout=10.0
                )
            except (asyncio.TimeoutError, asyncio.IncompleteReadError,
                    ValueError, ConnectionError):
                return
            if length > MAX_BODY_BYTES:
                status, headers, body = self._json(
                    413, {"error": "body too large"}
                )
            else:
                payload = (
                    await reader.readexactly(length) if length else b""
                )
                status, headers, body = await self.handle(
                    method, path, payload
                )
            writer.write(_render_response(status, headers, body))
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def serve(self) -> asyncio.AbstractServer:
        """Bind the socket, resume jobs, and return the server object."""
        await self.startup()
        self._server = await asyncio.start_server(
            self._client_connected, self.config.host, self.config.port
        )
        return self._server

    async def serve_forever(self, log=print) -> None:
        server = await self.serve()
        sockets = server.sockets or ()
        for sock in sockets:
            host, port = sock.getsockname()[:2]
            log(f"repro serve: listening on http://{host}:{port} "
                f"({self.config.shards} shard(s), "
                f"queue={self.config.queue_limit}, "
                f"rate={self.config.rate:g}/s)")
        async with server:
            await server.serve_forever()


_STATUS_TEXT = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


async def _read_head(reader) -> Tuple[str, str, int]:
    """Parse the request line + headers; returns (method, path, length)."""
    request_line = (await reader.readline()).decode("latin-1").strip()
    if not request_line:
        raise ValueError("empty request")
    parts = request_line.split()
    if len(parts) != 3:
        raise ValueError(f"malformed request line {request_line!r}")
    method, target, _version = parts
    length = 0
    while True:
        line = (await reader.readline()).decode("latin-1").strip()
        if not line:
            break
        if ":" in line:
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                try:
                    length = int(value.strip())
                except ValueError:
                    raise ValueError("bad Content-Length") from None
    path = target.split("?", 1)[0]
    return method.upper(), path, length


def _render_response(
    status: int, headers: Dict[str, str], body: bytes
) -> bytes:
    text = _STATUS_TEXT.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {text}"]
    out = dict(headers)
    out.setdefault("Content-Type", "application/json")
    out["Content-Length"] = str(len(body))
    out["Connection"] = "close"
    for name, value in out.items():
        lines.append(f"{name}: {value}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + body
