"""Supervised worker-shard pool, keyed by unit fingerprints.

The service executes analysis work on ``n_shards`` single-threaded
shards.  A query is routed by its unit fingerprint (a stable content
hash), so identical queries always land on the same shard — warm path
locality — and campaign units spread uniformly.  Each shard is:

* one single-worker :class:`~concurrent.futures.ThreadPoolExecutor`
  (the shard's serialization point — a shard executes one thing at a
  time, which is what makes per-shard health meaningful);
* one :class:`~repro.service.resilience.CircuitBreaker`, consulted by
  the service before routing a request and fed by every outcome;
* a **generation** counter: when a shard dies (a real crash, or the
  chaos harness's :class:`~repro.service.chaos.ShardKilled`), the
  supervisor abandons its executor and builds a fresh one — the shard
  is *replaced*, not resurrected, and the respawn is counted.

All breaker and metrics mutation happens on the event loop (the worker
threads only compute and return), so the shared registry needs no locks.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Optional

from repro.metrics.registry import MetricsRegistry, active as _metrics_active
from repro.service.chaos import ChaosController, ShardKilled
from repro.service.resilience import CircuitBreaker, Clock


class DeadlineExceeded(RuntimeError):
    """A request's deadline budget ran out while a shard was computing."""


class Shard:
    """One worker shard: an executor, a breaker, and a generation."""

    def __init__(self, index: int, breaker: CircuitBreaker) -> None:
        self.index = index
        self.breaker = breaker
        self.generation = 0
        self.executor = self._new_executor()

    def _new_executor(self) -> ThreadPoolExecutor:
        return ThreadPoolExecutor(
            max_workers=1,
            thread_name_prefix=f"repro-shard-{self.index}",
        )

    def respawn(self) -> None:
        """Replace the executor (abandon any wedged worker thread)."""
        old = self.executor
        self.generation += 1
        self.executor = self._new_executor()
        old.shutdown(wait=False, cancel_futures=True)


class ShardPool:
    """Routes work to supervised shards and enforces deadline budgets."""

    def __init__(
        self,
        n_shards: int = 2,
        metrics: Optional[MetricsRegistry] = None,
        clock: Optional[Clock] = None,
        seed: int = 0,
        chaos: Optional[ChaosController] = None,
        failure_threshold: int = 3,
        reset_timeout: float = 1.0,
    ) -> None:
        import time

        if n_shards < 1:
            raise ValueError("n_shards must be at least 1")
        self.metrics = _metrics_active(metrics)
        self.clock = clock if clock is not None else time.monotonic
        self.chaos = chaos
        self.shards: List[Shard] = [
            Shard(
                index,
                CircuitBreaker(
                    name=f"shard{index}",
                    failure_threshold=failure_threshold,
                    reset_timeout=reset_timeout,
                    seed=seed,
                    clock=self.clock,
                    on_transition=self._on_breaker_transition,
                ),
            )
            for index in range(n_shards)
        ]

    # -- observability ---------------------------------------------------

    def _on_breaker_transition(self, name: str, old: str, new: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(
                "svc_breaker_transitions_total", shard=name, to=new
            ).inc()
            self.metrics.gauge("svc_breaker_open", shard=name).set(
                1 if new != CircuitBreaker.CLOSED else 0
            )

    def state(self) -> List[dict]:
        return [
            {
                "shard": shard.index,
                "state": shard.breaker.state,
                "generation": shard.generation,
                "trips": shard.breaker.trips,
            }
            for shard in self.shards
        ]

    def any_closed(self) -> bool:
        """At least one shard can take traffic right now."""
        return any(
            shard.breaker.state != CircuitBreaker.OPEN
            or shard.breaker.allow()
            for shard in self.shards
        )

    # -- routing ---------------------------------------------------------

    def route(self, fingerprint: str) -> int:
        """Deterministic fingerprint → shard mapping."""
        return int(fingerprint[:16], 16) % len(self.shards)

    def allow(self, index: int) -> bool:
        return self.shards[index].breaker.allow()

    def retry_after(self, index: int) -> float:
        return self.shards[index].breaker.retry_after()

    # -- execution -------------------------------------------------------

    async def run(
        self,
        index: int,
        fn: Callable[[], object],
        timeout: Optional[float] = None,
        kind: str = "work",
    ):
        """Execute ``fn`` on shard ``index`` under supervision.

        * ``ShardKilled`` (and any other exception escaping ``fn``)
          feeds the breaker and, for kills, respawns the shard; the
          exception propagates to the caller, which decides how far
          down the ladder to step.
        * A ``timeout`` (the request's remaining deadline budget) that
          expires raises :class:`DeadlineExceeded`; the shard is
          respawned too — its worker may be wedged on the slow unit,
          and a fresh generation must not queue behind it.
        """
        shard = self.shards[index]
        loop = asyncio.get_running_loop()
        chaos = self.chaos

        def guarded():
            if chaos is not None:
                chaos.before_execute(index, kind)
            return fn()

        try:
            result = await asyncio.wait_for(
                loop.run_in_executor(shard.executor, guarded),
                timeout=timeout,
            )
        except asyncio.TimeoutError:
            shard.breaker.record_failure()
            self._respawn(shard, reason="deadline")
            raise DeadlineExceeded(
                f"shard {index} exceeded the {timeout:g}s budget "
                f"executing {kind}"
            ) from None
        except ShardKilled:
            shard.breaker.record_failure()
            self._respawn(shard, reason="killed")
            raise
        except Exception:
            shard.breaker.record_failure()
            raise
        shard.breaker.record_success()
        return result

    def _respawn(self, shard: Shard, reason: str) -> None:
        shard.respawn()
        if self.metrics is not None:
            self.metrics.counter(
                "svc_shard_respawns_total",
                shard=f"shard{shard.index}",
                reason=reason,
            ).inc()

    def close(self) -> None:
        for shard in self.shards:
            shard.executor.shutdown(wait=False, cancel_futures=True)
