"""Campaign jobs: submitted over HTTP, executed on the shard pool,
resumable across worker *and* service restarts.

A job is an acceptance-ratio sweep (the paper's E3 shape) described by a
:class:`JobSpec`.  Its identity is the SHA-256 of its canonical spec, so
resubmitting the same campaign is idempotent: the second POST returns
the same job id, and a completed job answers from its persisted result.

Execution reuses the PR 2 machinery end to end: the spec decomposes
into :class:`~repro.engine.units.AcceptanceUnit`\\ s, each routed to a
shard by its fingerprint; every shard runs its slice through its own
:class:`~repro.engine.ExperimentEngine` with a per-shard JSONL journal
(``<job>.shard<k>.jsonl``) under the service data directory.  Crash
recovery falls out of the journal contract:

* a **killed shard** mid-campaign is respawned by the pool and the
  slice retried — units already journaled are not recomputed;
* a **killed service** leaves spec files without result files; on
  restart :meth:`JobManager.resume_pending` reschedules them, and the
  fresh engines resume from the journals.  Because every unit is
  independently seeded, the resumed result is bit-identical to an
  uninterrupted run.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.engine import ExperimentEngine, unit_fingerprint
from repro.experiments.acceptance import (
    AcceptanceConfig,
    acceptance_units,
    assemble_acceptance,
)
from repro.metrics.registry import MetricsRegistry, active as _metrics_active
from repro.overhead.model import OverheadModel
from repro.service.chaos import ShardKilled
from repro.service.shards import DeadlineExceeded, ShardPool


def overhead_model_from_spec(spec: str, tasks_per_core: int) -> OverheadModel:
    """``zero | paper | paper*<factor>`` → model (ValueError, not exit)."""
    if spec == "zero":
        return OverheadModel.zero()
    if spec == "paper":
        return OverheadModel.paper_core_i7(tasks_per_core)
    if spec.startswith("paper*"):
        try:
            factor = float(spec.split("*", 1)[1])
        except ValueError:
            raise ValueError(f"bad overhead factor in {spec!r}") from None
        return OverheadModel.paper_core_i7(tasks_per_core).scaled(factor)
    raise ValueError(
        f"unknown overhead spec {spec!r}; use zero | paper | paper*<factor>"
    )


@dataclass(frozen=True)
class JobSpec:
    """One campaign job: an acceptance sweep over a utilization grid."""

    n_cores: int = 2
    n_tasks: int = 6
    sets_per_point: int = 5
    utilizations: Tuple[float, ...] = (0.6, 0.8, 1.0)
    algorithms: Tuple[str, ...] = ("FFD", "WFD")
    seed: int = 2011
    overheads: str = "zero"
    batch: bool = False

    @staticmethod
    def from_dict(data: dict) -> "JobSpec":
        from repro.experiments.algorithms import ALGORITHMS

        if not isinstance(data, dict):
            raise ValueError("campaign spec must be a JSON object")
        known = {f for f in JobSpec.__dataclass_fields__}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown campaign field(s) {sorted(unknown)}; "
                f"known: {sorted(known)}"
            )
        spec = JobSpec(
            n_cores=int(data.get("n_cores", 2)),
            n_tasks=int(data.get("n_tasks", 6)),
            sets_per_point=int(data.get("sets_per_point", 5)),
            utilizations=tuple(
                float(u) for u in data.get("utilizations", (0.6, 0.8, 1.0))
            ),
            algorithms=tuple(data.get("algorithms", ("FFD", "WFD"))),
            seed=int(data.get("seed", 2011)),
            overheads=str(data.get("overheads", "zero")),
            batch=bool(data.get("batch", False)),
        )
        if spec.n_cores < 1 or spec.n_tasks < 1 or spec.sets_per_point < 1:
            raise ValueError(
                "n_cores, n_tasks, and sets_per_point must be at least 1"
            )
        if not spec.utilizations:
            raise ValueError("utilizations must be non-empty")
        if not spec.algorithms:
            raise ValueError("algorithms must be non-empty")
        for name in spec.algorithms:
            if name not in ALGORITHMS:
                raise ValueError(
                    f"unknown algorithm {name!r}; choose from "
                    f"{sorted(ALGORITHMS)}"
                )
        overhead_model_from_spec(  # validate eagerly (raises ValueError)
            spec.overheads, max(1, spec.n_tasks // spec.n_cores)
        )
        return spec

    def canonical(self) -> str:
        return json.dumps(
            asdict(self), sort_keys=True, separators=(",", ":")
        )

    def job_id(self) -> str:
        return hashlib.sha256(self.canonical().encode()).hexdigest()[:16]

    def to_config(self) -> AcceptanceConfig:
        model = overhead_model_from_spec(
            self.overheads, max(1, self.n_tasks // self.n_cores)
        )
        return AcceptanceConfig(
            n_cores=self.n_cores,
            n_tasks=self.n_tasks,
            sets_per_point=self.sets_per_point,
            utilizations=list(self.utilizations),
            seed=self.seed,
            overheads=model,
            algorithms=tuple(self.algorithms),
            batch=self.batch,
        )


class JobManager:
    """Owns job state files, journals, and the running asyncio tasks."""

    def __init__(
        self,
        data_dir: Path,
        pool: ShardPool,
        metrics: Optional[MetricsRegistry] = None,
        unit_timeout: Optional[float] = None,
        retries: int = 1,
        shard_attempts: int = 3,
    ) -> None:
        self.jobs_dir = Path(data_dir) / "jobs"
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        self.pool = pool
        self.metrics = _metrics_active(metrics)
        self.unit_timeout = unit_timeout
        self.retries = retries
        self.shard_attempts = max(1, shard_attempts)
        self._tasks: Dict[str, asyncio.Task] = {}
        self._status: Dict[str, dict] = {}

    # -- paths -----------------------------------------------------------

    def _spec_path(self, job_id: str) -> Path:
        return self.jobs_dir / f"{job_id}.spec.json"

    def _result_path(self, job_id: str) -> Path:
        return self.jobs_dir / f"{job_id}.result.json"

    def _journal_path(self, job_id: str, shard: int) -> Path:
        return self.jobs_dir / f"{job_id}.shard{shard}.jsonl"

    # -- public API ------------------------------------------------------

    def submit(self, spec: JobSpec) -> Tuple[str, str]:
        """Persist and schedule ``spec``; returns ``(job_id, state)``.

        Idempotent: a completed job reports ``done`` immediately, a
        running duplicate attaches to the in-flight task.
        """
        job_id = spec.job_id()
        if self._result_path(job_id).exists():
            return job_id, "done"
        if job_id in self._tasks and not self._tasks[job_id].done():
            return job_id, "running"
        spec_path = self._spec_path(job_id)
        if not spec_path.exists():
            spec_path.write_text(spec.canonical(), encoding="utf-8")
        self._schedule(job_id, spec)
        return job_id, "running"

    def status(self, job_id: str) -> Optional[dict]:
        """The job's current status document (None = unknown id)."""
        result_path = self._result_path(job_id)
        if result_path.exists():
            try:
                return json.loads(result_path.read_text(encoding="utf-8"))
            except ValueError:
                return {
                    "id": job_id,
                    "state": "failed",
                    "error": "result file is corrupt",
                }
        if job_id in self._status:
            return self._status[job_id]
        if self._spec_path(job_id).exists():
            return {"id": job_id, "state": "pending"}
        return None

    async def wait(self, job_id: str) -> Optional[dict]:
        """Await the running task (if any), then return the status."""
        task = self._tasks.get(job_id)
        if task is not None:
            await asyncio.shield(task)
        return self.status(job_id)

    def resume_pending(self) -> List[str]:
        """Reschedule every job with a spec but no result (crash

        recovery after a service restart).  Returns the resumed ids."""
        resumed = []
        for spec_path in sorted(self.jobs_dir.glob("*.spec.json")):
            job_id = spec_path.name[: -len(".spec.json")]
            if self._result_path(job_id).exists():
                continue
            if job_id in self._tasks and not self._tasks[job_id].done():
                continue
            try:
                spec = JobSpec.from_dict(
                    json.loads(spec_path.read_text(encoding="utf-8"))
                )
            except ValueError:
                continue  # unreadable spec: leave for post-mortem
            self._schedule(job_id, spec)
            resumed.append(job_id)
            if self.metrics is not None:
                self.metrics.counter(
                    "svc_jobs_total", event="resumed"
                ).inc()
        return resumed

    # -- execution -------------------------------------------------------

    def _schedule(self, job_id: str, spec: JobSpec) -> None:
        self._status[job_id] = {"id": job_id, "state": "running"}
        if self.metrics is not None:
            self.metrics.counter("svc_jobs_total", event="submitted").inc()
        self._tasks[job_id] = asyncio.get_running_loop().create_task(
            self._run(job_id, spec)
        )

    async def _run(self, job_id: str, spec: JobSpec) -> None:
        try:
            status = await self._execute(job_id, spec)
        except Exception as exc:  # a job must never take the loop down
            status = {
                "id": job_id,
                "state": "failed",
                "error": f"{type(exc).__name__}: {exc}",
            }
        self._status[job_id] = status
        self._write_result(job_id, status)
        if self.metrics is not None:
            self.metrics.counter(
                "svc_jobs_total", event=status["state"]
            ).inc()

    def _write_result(self, job_id: str, status: dict) -> None:
        path = self._result_path(job_id)
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(
            json.dumps(status, sort_keys=True), encoding="utf-8"
        )
        tmp.replace(path)

    async def _execute(self, job_id: str, spec: JobSpec) -> dict:
        config = spec.to_config()
        units = acceptance_units(config)
        by_shard: Dict[int, List[int]] = {}
        for index, unit in enumerate(units):
            shard = self.pool.route(unit_fingerprint(unit))
            by_shard.setdefault(shard, []).append(index)

        payloads: List[Optional[dict]] = [None] * len(units)
        shard_stats: Dict[str, dict] = {}
        shard_registries: List[MetricsRegistry] = []

        async def run_shard(shard_index: int, indices: List[int]) -> None:
            registry = MetricsRegistry()
            engine = ExperimentEngine(
                jobs=1,
                unit_timeout=self.unit_timeout,
                retries=self.retries,
                journal=self._journal_path(job_id, shard_index),
                resume=True,
                metrics=registry,
            )
            subunits = [units[i] for i in indices]
            results = None
            for attempt in range(self.shard_attempts):
                try:
                    results = await self.pool.run(
                        shard_index,
                        lambda: engine.run(subunits),
                        kind="campaign",
                    )
                    break
                except (ShardKilled, DeadlineExceeded):
                    # The shard was respawned; units already journaled
                    # are not recomputed on the next attempt.
                    if attempt == self.shard_attempts - 1:
                        raise
            for i, payload in zip(indices, results):
                payloads[i] = payload
            shard_registries.append(registry)
            shard_stats[f"shard{shard_index}"] = {
                "units": len(indices),
                "computed": engine.stats.computed,
                "journal_hits": engine.stats.journal_hits,
                "journal_corrupt": engine.stats.journal_corrupt,
                "failed": engine.stats.failed,
            }

        await asyncio.gather(
            *(
                run_shard(shard_index, indices)
                for shard_index, indices in sorted(by_shard.items())
            )
        )
        # Worker-thread engines recorded into private registries; fold
        # them into the shared one here, on the event loop.
        if self.metrics is not None:
            for registry in shard_registries:
                self.metrics.merge(registry)

        result = assemble_acceptance(config, payloads)
        partial = bool(result.failed_utilizations)
        return {
            "id": job_id,
            "state": "done" if not partial else "partial",
            "spec": json.loads(spec.canonical()),
            "result": {
                "utilizations": list(result.utilizations),
                "ratios": {
                    name: list(values)
                    for name, values in result.ratios.items()
                },
            },
            "shards": shard_stats,
        }
