"""Schedulability-as-a-service: the resilient asyncio front end.

The ROADMAP's "millions of users" direction: a long-running HTTP
service (``repro serve``) wrapping the incremental analysis contexts,
the vectorized batch kernel, the content-addressed result cache, and
the experiment engine behind online admission control and campaign
jobs.  The load-bearing part is the resilience core:

* :mod:`repro.service.resilience` — token-bucket load shedding, a
  bounded admission queue, per-request deadline budgets, per-shard
  circuit breakers, and the explicit degradation ladder
  (batch → scalar → cache-only → shed);
* :mod:`repro.service.shards` — the supervised worker-shard pool,
  routed by unit fingerprints;
* :mod:`repro.service.jobs` — journal-resumable campaign jobs (crash
  recovery across worker and service restarts);
* :mod:`repro.service.app` — the stdlib-asyncio HTTP layer
  (``/v1/admission``, ``/v1/campaign``, ``/v1/jobs/<id>``,
  ``/metrics``, ``/healthz``, ``/readyz``);
* :mod:`repro.service.chaos` — the seeded chaos harness the test suite
  drives the whole ladder with.

See ``docs/service.md`` for endpoints and tuning knobs.
"""

from repro.service.app import ServiceApp, ServiceConfig
from repro.service.chaos import ChaosConfig, ChaosController, ShardKilled
from repro.service.jobs import JobManager, JobSpec
from repro.service.resilience import (
    MODES,
    BoundedQueue,
    CircuitBreaker,
    DeadlineBudget,
    DegradationLadder,
    TokenBucket,
)
from repro.service.shards import DeadlineExceeded, Shard, ShardPool

__all__ = [
    "MODES",
    "BoundedQueue",
    "ChaosConfig",
    "ChaosController",
    "CircuitBreaker",
    "DeadlineBudget",
    "DeadlineExceeded",
    "DegradationLadder",
    "JobManager",
    "JobSpec",
    "ServiceApp",
    "ServiceConfig",
    "Shard",
    "ShardKilled",
    "ShardPool",
    "TokenBucket",
]
