"""Seeded chaos harness for the service: deterministic injected failure.

The robustness claims of `repro serve` are only worth what the tests can
demonstrate, and the tests can only demonstrate what they can *inject*.
A :class:`ChaosController` sits between the shard pool and the real
execution functions and, driven entirely by its seed and per-site call
counters, decides when to

* **kill a shard** — raise :class:`ShardKilled` inside the shard's
  worker, as a crashed worker process would (the supervisor respawns
  the shard and the breaker counts the failure);
* **slow a unit** — sleep past the request's deadline budget, as an
  analysis stuck on a pathological task set would;
* **corrupt a cache entry** — overwrite the content-addressed payload
  with garbage, as a torn write or disk fault would (the cache must
  quarantine it and report a miss, never return it);
* **fail the batch kernel** — raise
  :class:`~repro.analysis.batch.PopulationError` from the batch rung,
  driving the ladder's batch → scalar downgrade;
* **skew the clock** — make the deadline clock *drift*: every reading
  lands ``clock_skew_s`` further ahead of the true clock, so budgets
  expire "early" the way they do on a host whose timers misbehave.

Determinism contract: a decision at injection site ``site`` on its
``n``-th visit is drawn from ``random.Random(f"chaos:{seed}:{site}:{n}")``
— independent of thread scheduling, shard interleaving, or wall time, so
a chaos test's exact failure sequence is pinned by its seed.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.analysis.batch import PopulationError


class ShardKilled(RuntimeError):
    """Injected equivalent of a shard's worker dying mid-request."""


@dataclass
class ChaosConfig:
    """What to inject, and how often.

    Count-based knobs (``kill_first_n``, ``slow_first_n``,
    ``fail_batch_first_n``) fire on the first N visits to their site —
    the sharpest tool for pinning exact ladder walks.  Probability knobs
    (``kill_probability`` ...) draw from the seeded per-site stream.
    """

    seed: int = 0
    # shard kills (site: "execute")
    kill_first_n: int = 0
    kill_probability: float = 0.0
    # slow units (site: "slow")
    slow_first_n: int = 0
    slow_probability: float = 0.0
    slow_s: float = 0.0
    # batch-kernel failures (site: "batch")
    fail_batch_first_n: int = 0
    fail_batch_probability: float = 0.0
    # deadline-clock drift: every reading lands this many further
    # seconds ahead of the true clock (a constant offset would cancel
    # inside a budget that both starts and checks on the same clock)
    clock_skew_s: float = 0.0


class ChaosController:
    """Applies a :class:`ChaosConfig` at the pool's injection sites."""

    def __init__(self, config: Optional[ChaosConfig] = None) -> None:
        self.config = config if config is not None else ChaosConfig()
        self._visits: Dict[str, int] = {}
        self.injected: Dict[str, int] = {}  # what actually fired

    def _visit(self, site: str) -> int:
        count = self._visits.get(site, 0)
        self._visits[site] = count + 1
        return count

    def _draw(self, site: str, visit: int) -> float:
        return random.Random(
            f"chaos:{self.config.seed}:{site}:{visit}"
        ).random()

    def _fire(self, site: str) -> None:
        self.injected[site] = self.injected.get(site, 0) + 1

    # -- injection sites -------------------------------------------------

    def before_execute(self, shard_index: int, kind: str) -> None:
        """Called in the shard's worker thread before real execution.

        May raise :class:`ShardKilled` (killed shard) or sleep
        (slow unit); ``kind`` is the work-unit kind, for logs only.
        """
        cfg = self.config
        visit = self._visit("execute")
        if visit < cfg.kill_first_n or (
            cfg.kill_probability > 0
            and self._draw("execute", visit) < cfg.kill_probability
        ):
            self._fire("kill")
            raise ShardKilled(
                f"chaos: shard {shard_index} killed executing {kind} "
                f"(visit {visit})"
            )
        slow_visit = self._visit("slow")
        if slow_visit < cfg.slow_first_n or (
            cfg.slow_probability > 0
            and self._draw("slow", slow_visit) < cfg.slow_probability
        ):
            self._fire("slow")
            time.sleep(cfg.slow_s)

    def before_batch(self) -> None:
        """Called before the batch rung runs; may raise PopulationError."""
        cfg = self.config
        visit = self._visit("batch")
        if visit < cfg.fail_batch_first_n or (
            cfg.fail_batch_probability > 0
            and self._draw("batch", visit) < cfg.fail_batch_probability
        ):
            self._fire("fail_batch")
            raise PopulationError("chaos: batch kernel refused the lane")

    def skew_clock(
        self, clock: Callable[[], float]
    ) -> Callable[[], float]:
        """Wrap ``clock`` with the configured drift (0 = identity).

        The n-th reading returns ``clock() + n * clock_skew_s``: a
        deterministically drifting clock, so a deadline budget started
        on reading *n* has already lost ``clock_skew_s`` seconds by its
        first expiry check on reading *n+1*.
        """
        skew = self.config.clock_skew_s
        if not skew:
            return clock
        readings = {"n": 0}

        def drifting() -> float:
            readings["n"] += 1
            return clock() + skew * readings["n"]

        return drifting

    @staticmethod
    def corrupt_cache_entry(cache, fingerprint: str) -> bool:
        """Overwrite a cached payload with garbage (torn-write fault).

        Returns False if the entry does not exist.  The cache layer is
        expected to quarantine the damage on next load and report a
        miss — tested by the chaos suite's cache-only tier walk.
        """
        path = cache.path_for(fingerprint)
        if not path.is_file():
            return False
        path.write_text('{"verdicts": {tru', encoding="utf-8")
        return True
