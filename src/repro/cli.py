"""Command-line interface.

Exposes the library's main workflows to non-Python users::

    repro list-algorithms
    repro analyze  --tasks workload.json --cores 4 --algorithm FP-TS \
                   --overheads paper
    repro simulate --tasks workload.json --cores 4 --algorithm FP-TS \
                   --duration-ms 2000 --overheads paper [--gantt]
    repro sweep    --cores 4 --n-tasks 12 --sets 50 --overheads paper \
                   --algorithms FP-TS,FFD,WFD
    repro measure  [--rounds 2000]
    repro profile  --tasks workload.json --cores 4 --algorithm FP-TS \
                   --duration-ms 1000 [--format json|prom] [--out report.json]
    repro profile  --sets 8 --n-tasks 12 --utilization 0.75 --cores 4 \
                   --jobs 4 [--format json|prom]
    repro generate --n-tasks 12 --utilization 3.2 --seed 7 --out workload.json
    repro verify   --trials 100 --seed 3 [--jobs 4] [--out verify-failures]
    repro verify   --replay verify-failures/<repro>.json

Task files are JSON (see :mod:`repro.model.io`).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.rta import core_schedulable
from repro.experiments.acceptance import AcceptanceConfig, run_acceptance
from repro.experiments.algorithms import ALGORITHMS, build_assignment
from repro.faults import OVERRUN_POLICIES
from repro.kernel.sched_class import SCHED_CLASSES
from repro.kernel.sim import KernelSim
from repro.model.generator import TaskSetGenerator
from repro.model.io import load_taskset, save_taskset
from repro.model.time import MS
from repro.overhead.measure import measure_queue_operations
from repro.overhead.model import OverheadModel
from repro.trace.gantt import render_gantt


def _overhead_model(spec: str, tasks_per_core: int) -> OverheadModel:
    if spec == "zero":
        return OverheadModel.zero()
    if spec == "paper":
        return OverheadModel.paper_core_i7(tasks_per_core)
    if spec.startswith("paper*"):
        return OverheadModel.paper_core_i7(tasks_per_core).scaled(
            float(spec.split("*", 1)[1])
        )
    if spec.startswith("calib:"):
        from repro.workload.calibrate import CalibrationResult

        path = spec.split(":", 1)[1]
        try:
            result = CalibrationResult.load(path)
        except OSError as exc:
            raise SystemExit(
                f"--overheads: cannot read calibration {path!r}: {exc}"
            )
        except (ValueError, KeyError, TypeError) as exc:
            raise SystemExit(f"--overheads: calibration {path!r}: {exc}")
        return result.overhead_model(tasks_per_core)
    raise SystemExit(
        f"unknown overhead spec {spec!r}; use zero | paper | "
        "paper*<factor> | calib:<file> (from 'repro calibrate')"
    )


def _parse_algorithms(spec: str) -> tuple:
    """Split and validate a comma-separated algorithm list.

    Unknown names are a one-line error naming the valid choices, not a
    traceback from deep inside the sweep.
    """
    names = tuple(name.strip() for name in spec.split(",") if name.strip())
    if not names:
        raise SystemExit(
            f"--algorithms needs at least one algorithm; valid choices: "
            f"{', '.join(sorted(ALGORITHMS))}"
        )
    unknown = [name for name in names if name not in ALGORITHMS]
    if unknown:
        raise SystemExit(
            f"unknown algorithm(s) {', '.join(unknown)}; valid choices: "
            f"{', '.join(sorted(ALGORITHMS))}"
        )
    return names


def _check_algorithm(name: str) -> str:
    if name not in ALGORITHMS:
        raise SystemExit(
            f"unknown algorithm {name!r}; valid choices: "
            f"{', '.join(sorted(ALGORITHMS))}"
        )
    return name


def _check_positive(value: int, flag: str) -> int:
    if value < 1:
        raise SystemExit(f"{flag} must be at least 1, got {value}")
    return value


def _load_fault_plan(path):
    """Parse ``--faults plan.json`` into a FaultPlan (one-line errors)."""
    if path is None:
        return None
    from repro.faults import FaultPlan

    try:
        return FaultPlan.from_json_file(path)
    except OSError as exc:
        raise SystemExit(f"--faults: cannot read {path!r}: {exc}")
    except (ValueError, TypeError) as exc:
        raise SystemExit(f"--faults: {exc}")


def _cmd_list_algorithms(_args) -> int:
    width = max(len(name) for name in ALGORITHMS)
    for name, spec in sorted(ALGORITHMS.items()):
        print(f"{name:<{width}}  [{spec.kind:>16}]  {spec.description}")
    return 0


def _cmd_generate(args) -> int:
    generator = TaskSetGenerator(n_tasks=args.n_tasks, seed=args.seed)
    taskset = generator.generate(args.utilization)
    save_taskset(taskset, args.out)
    print(f"wrote {len(taskset)} tasks (U={taskset.total_utilization:.3f}) "
          f"to {args.out}")
    return 0


def _prepare(args):
    _check_algorithm(args.algorithm)
    _check_positive(args.cores, "--cores")
    taskset = load_taskset(args.tasks).assign_rate_monotonic()
    tasks_per_core = max(1, len(taskset) // args.cores)
    model = _overhead_model(args.overheads, tasks_per_core)
    assignment = build_assignment(args.algorithm, taskset, args.cores, model)
    return taskset, model, assignment


def _cmd_analyze(args) -> int:
    taskset, _model, assignment = _prepare(args)
    print(taskset.describe())
    print()
    if assignment is None:
        print(f"{args.algorithm}: REJECTED (not schedulable on "
              f"{args.cores} cores under the overhead-aware analysis)")
        return 1
    print(f"{args.algorithm}: accepted")
    if getattr(args, "save_assignment", None):
        from repro.model.io import save_assignment

        save_assignment(assignment, args.save_assignment)
        print(f"assignment saved to {args.save_assignment}")
    print(assignment.describe())
    print("\nworst-case response times:")
    for core in assignment.cores:
        analysis = core_schedulable(core.entries)
        for result in analysis.results:
            entry = result.entry
            response = "FAIL" if result.response is None else (
                f"{result.response / MS:9.3f} ms"
            )
            print(
                f"  core{core.core} {entry.name:<16} R={response}  "
                f"D={entry.deadline / MS:9.3f} ms"
            )
    return 0


def _cmd_simulate(args) -> int:
    if getattr(args, "assignment", None):
        from repro.model.io import load_assignment

        taskset = load_taskset(args.tasks).assign_rate_monotonic()
        assignment = load_assignment(args.assignment)
        model = _overhead_model(
            args.overheads, max(1, len(taskset) // args.cores)
        )
    else:
        taskset, model, assignment = _prepare(args)
    if assignment is None:
        print(f"{args.algorithm}: REJECTED; nothing to simulate")
        return 1
    sched_class = getattr(args, "sched_class", "auto")
    if sched_class == "auto":
        sched_class = ALGORITHMS[args.algorithm].sched_class
    if sched_class in ("global-edf", "global-rm") and not list(
        assignment.entries()
    ):
        # The global acceptance tests return a placeholder partition (no
        # entries — placement is a runtime decision); build the runnable
        # shared-queue assignment from the task set instead.
        from repro.kernel.global_sim import build_global_assignment

        assignment = build_global_assignment(taskset, args.cores)
    plan = _load_fault_plan(getattr(args, "faults", None))
    frequencies = None
    power = None
    freq_spec = getattr(args, "freq", None)
    if freq_spec:
        from repro.energy.model import PowerModel, parse_freq_spec

        try:
            frequencies = parse_freq_spec(freq_spec, args.cores)
        except ValueError as error:
            raise SystemExit(str(error))
        power = PowerModel()
    sim = KernelSim(
        assignment,
        model,
        duration=args.duration_ms * MS,
        record_trace=args.gantt,
        execution_times={task.name: task.wcet for task in taskset},
        seed=args.seed,
        faults=plan,
        overrun_policy=args.overrun_policy,
        sched_class=sched_class,
        frequencies=frequencies,
        power=power,
    )
    result = sim.run()
    print(
        f"simulated {args.duration_ms} ms on {args.cores} cores: "
        f"releases={result.releases} misses={result.miss_count} "
        f"preemptions={result.preemptions} migrations={result.migrations}"
    )
    print(f"scheduler overhead: {100 * result.total_overhead_ratio:.3f}% "
          f"of the platform")
    energy = result.energy
    if not energy.is_empty:
        freq_text = ",".join(
            f"{core.freq_num}/{core.freq_den}"
            if core.freq_den != 1
            else f"{core.freq_num}"
            for core in energy.cores
        )
        print(
            f"energy: {energy.total_pj / 1e6:.3f} uJ "
            f"(busy {energy.busy_pj / 1e6:.3f} + "
            f"overhead {energy.overhead_pj / 1e6:.3f} + "
            f"idle {energy.idle_pj / 1e6:.3f}), "
            f"mean power {float(energy.average_power_mw):.1f} mW, "
            f"freq [{freq_text}]"
        )
    if plan is not None:
        print(result.faults.summary())
        killed = sum(s.jobs_killed for s in result.task_stats.values())
        by_kind = {}
        for miss in result.misses:
            by_kind[miss.kind] = by_kind.get(miss.kind, 0) + 1
        misses = " ".join(f"{k}={n}" for k, n in sorted(by_kind.items()))
        print(
            f"under faults (policy={args.overrun_policy}): "
            f"jobs_killed={killed} misses[{misses or 'none'}]"
        )
    for name in sorted(result.task_stats):
        stats = result.task_stats[name]
        print(
            f"  {name:<16} jobs={stats.jobs_completed:<6} "
            f"maxR={stats.max_response / MS:9.3f} ms "
            f"meanR={stats.mean_response / MS:9.3f} ms"
        )
    if args.gantt:
        window = min(args.duration_ms * MS, 50 * MS)
        print()
        print(render_gantt(result.trace, args.cores, width=100, end=window))
    return 0 if result.no_misses else 2


def _engine_for(args):
    """Build the shared ExperimentEngine from the engine flags
    (--jobs/--cache/--unit-timeout/--retries/--journal/--resume)."""
    from repro.engine import ExperimentEngine

    if args.jobs < 1:
        raise SystemExit("--jobs must be at least 1")
    if args.cache is not None:
        import pathlib

        cache_root = pathlib.Path(args.cache)
        if cache_root.exists() and not cache_root.is_dir():
            raise SystemExit(
                f"--cache {args.cache!r} exists and is not a directory"
            )
    if args.unit_timeout is not None and args.unit_timeout <= 0:
        raise SystemExit("--unit-timeout must be positive")
    if args.retries < 0:
        raise SystemExit("--retries must be non-negative")
    if args.resume and args.journal is None:
        raise SystemExit("--resume requires --journal")
    return ExperimentEngine(
        jobs=args.jobs,
        cache=args.cache,
        unit_timeout=args.unit_timeout,
        retries=args.retries,
        journal=args.journal,
        resume=args.resume,
    )


def _report_failures(engine) -> None:
    """One line per unit the engine gave up on (partial results)."""
    for failure in engine.last_failures:
        print(
            f"FAILED unit #{failure.index} [{failure.kind}] after "
            f"{failure.attempts} attempt(s): {failure.error}"
        )


def _parse_float_axis(spec: str, flag: str) -> tuple:
    try:
        values = tuple(
            float(v.strip()) for v in spec.split(",") if v.strip()
        )
    except ValueError:
        raise SystemExit(f"{flag}: expected comma-separated numbers")
    if not values:
        raise SystemExit(f"{flag} needs at least one value")
    return values


def _load_workload_profile(path):
    from repro.workload import WorkloadProfile

    try:
        return WorkloadProfile.load(path)
    except OSError as exc:
        raise SystemExit(f"cannot read profile {path!r}: {exc}")
    except (ValueError, KeyError, TypeError) as exc:
        raise SystemExit(f"profile {path!r}: {exc}")


def _cmd_workload_sweep(args) -> int:
    from repro.experiments.workload_sweep import (
        WorkloadSweepConfig,
        run_workload_sweep,
    )

    profile = _load_workload_profile(args.workload)
    config = WorkloadSweepConfig(
        profile=profile,
        horizon_ms=_check_positive(args.horizon_ms, "--horizon-ms"),
        seed=args.seed,
        scales=_parse_float_axis(args.scales, "--scales"),
        storm_intensities=_parse_float_axis(
            args.storm_intensities, "--storm-intensities"
        ),
        storm_on_ms=_check_positive(args.storm_on_ms, "--storm-on-ms"),
        storm_off_ms=args.storm_off_ms,
        stream=args.stream,
        server_kind=args.server,
        server_capacity_us=_check_positive(
            args.server_capacity_us, "--server-capacity-us"
        ),
        server_period_us=_check_positive(
            args.server_period_us, "--server-period-us"
        ),
        n_hard_tasks=args.hard_tasks,
        hard_utilization=args.hard_utilization,
    )
    engine = _engine_for(args)
    result = run_workload_sweep(config, engine=engine)
    print(result.as_table())
    print(engine.stats.summary())
    _report_failures(engine)
    return 0 if not engine.last_failures else 3


def _cmd_sweep(args) -> int:
    if args.workload is not None:
        return _cmd_workload_sweep(args)
    algorithms = _parse_algorithms(args.algorithms)
    _check_positive(args.cores, "--cores")
    _check_positive(args.n_tasks, "--n-tasks")
    _check_positive(args.sets, "--sets")
    model = _overhead_model(
        args.overheads, max(1, args.n_tasks // args.cores)
    )
    config = AcceptanceConfig(
        n_cores=args.cores,
        n_tasks=args.n_tasks,
        sets_per_point=args.sets,
        overheads=model,
        algorithms=algorithms,
        seed=args.seed,
        batch=args.batch,
    )
    engine = _engine_for(args)
    result = run_acceptance(config, engine=engine)
    print(result.as_table())
    print(engine.stats.summary())
    _report_failures(engine)
    return 0 if not engine.last_failures else 3


def _cmd_breakdown(args) -> int:
    from repro.experiments.breakdown import run_breakdown

    algorithms = _parse_algorithms(args.algorithms)
    _check_positive(args.cores, "--cores")
    _check_positive(args.n_tasks, "--n-tasks")
    _check_positive(args.sets, "--sets")
    model = _overhead_model(
        args.overheads, max(1, args.n_tasks // args.cores)
    )
    result = run_breakdown(
        algorithms=algorithms,
        n_cores=args.cores,
        n_tasks=args.n_tasks,
        sets=args.sets,
        seed=args.seed,
        model=model,
    )
    print(result.as_table())
    return 0


def _mean_axis(result, algorithm: str, axis: str) -> float:
    """Mean of one criteria axis over an algorithm's measured records."""
    import math

    values = [
        getattr(r, axis)
        for r in result.filtered(algorithm=algorithm)
        if not math.isnan(getattr(r, axis))
    ]
    return sum(values) / len(values) if values else math.nan


def _cmd_campaign(args) -> int:
    from repro.experiments.campaign import CRITERIA_AXES, run_campaign
    from repro.overhead.model import OverheadModel as _OM

    algorithms = _parse_algorithms(args.algorithms)
    core_counts = tuple(int(c) for c in args.core_counts.split(","))
    task_counts = tuple(int(c) for c in args.task_counts.split(","))
    for count in core_counts:
        _check_positive(count, "--core-counts")
    for count in task_counts:
        _check_positive(count, "--task-counts")
    _check_positive(args.sets, "--sets")
    engine = _engine_for(args)
    result = run_campaign(
        core_counts=core_counts,
        task_counts=task_counts,
        algorithms=algorithms,
        overhead_specs=(
            ("zero", _OM.zero()),
            ("paper", _OM.paper_core_i7(4)),
        ),
        sets_per_point=args.sets,
        engine=engine,
        criteria=args.criteria,
    )
    print(result.pivot(row_key="algorithm", column_key="n_cores"))
    if args.criteria:
        from repro.experiments.plot import pareto_table

        for axis in CRITERIA_AXES:
            print()
            print(f"mean {axis}:")
            print(
                result.pivot(
                    row_key="algorithm",
                    column_key="n_cores",
                    value_key=axis,
                )
            )
        points = [
            {
                "algorithm": algorithm,
                "acceptance": result.mean_acceptance(algorithm=algorithm),
                "avg_power_mw": _mean_axis(result, algorithm,
                                           "avg_power_mw"),
                "preemptions": _mean_axis(result, algorithm,
                                          "preemptions"),
            }
            for algorithm in algorithms
        ]
        print()
        print("Pareto front (acceptance max, power min, preemptions min):")
        print(
            pareto_table(
                points,
                [
                    ("acceptance", "max"),
                    ("avg_power_mw", "min"),
                    ("preemptions", "min"),
                ],
            )
        )
    print(engine.stats.summary())
    _report_failures(engine)
    if result.is_partial:
        print(
            f"PARTIAL campaign: {len(result.failed_units)} grid point(s) "
            f"missing from the records (see failed-unit lines above)"
        )
    if args.csv:
        result.to_csv(args.csv)
        print(f"\n{len(result.records)} records written to {args.csv}")
    return 0 if not result.is_partial else 3


def _cmd_measure(args) -> int:
    print(f"{'N':>4} {'ready max(us)':>14} {'ready mean(us)':>15} "
          f"{'sleep max(us)':>14} {'sleep mean(us)':>15}")
    for n in (4, 16, 64):
        m = measure_queue_operations(n, rounds=args.rounds)
        print(
            f"{n:>4} {m.ready_max_ns / 1000:>14.2f} "
            f"{m.ready_mean_ns / 1000:>15.2f} "
            f"{m.sleep_max_ns / 1000:>14.2f} "
            f"{m.sleep_mean_ns / 1000:>15.2f}"
        )
    return 0


def _cmd_calibrate(args) -> int:
    """Fit overhead-model constants from this machine's micro-benchmarks."""
    from repro.workload.calibrate import calibrate

    _check_positive(args.rounds, "--rounds")
    _check_positive(args.scheduler_rounds, "--scheduler-rounds")
    result = calibrate(
        rounds=args.rounds,
        scheduler_rounds=args.scheduler_rounds,
        seed=args.seed,
    )
    print(result.describe())
    if args.out:
        result.save(args.out)
        print(f"wrote {args.out} (use with --overheads calib:{args.out})")
    return 0


def _cmd_workload(args) -> int:
    """Trace ingest / profile fitting / scenario synthesis."""
    from repro.workload import (
        ScenarioSynthesizer,
        StormSpec,
        fit_profile,
        import_azure_invocations,
        import_csv,
        load_trace,
        save_trace,
    )

    try:
        if args.workload_command == "import-csv":
            trace = import_csv(args.input, default_stream=args.stream or "csv")
            save_trace(trace, args.out)
            print(
                f"wrote {args.out}: {len(trace.records)} records, "
                f"{len(trace.streams)} stream(s)"
            )
            return 0
        if args.workload_command == "import-azure":
            trace = import_azure_invocations(
                args.input,
                max_streams=args.max_streams,
            )
            save_trace(trace, args.out)
            print(
                f"wrote {args.out}: {len(trace.records)} records, "
                f"{len(trace.streams)} stream(s)"
            )
            return 0
        if args.workload_command == "fit":
            trace = load_trace(args.input)
            profile = fit_profile(trace, source=str(args.input))
            profile.save(args.out)
            for stream in profile.streams:
                print(
                    f"{stream.name}: {stream.n_jobs} jobs, "
                    f"rate={stream.rate_per_sec:.2f}/s, "
                    f"dispersion={stream.burst.index_of_dispersion:.2f}, "
                    f"storm intensity={stream.burst.intensity:.2f}"
                )
            print(f"wrote {args.out}")
            return 0
        if args.workload_command == "synth":
            profile = _load_workload_profile(args.input)
            storm = None
            if args.storm_intensity > 1.0:
                storm = StormSpec(
                    intensity=args.storm_intensity,
                    on_ns=_check_positive(args.storm_on_ms, "--storm-on-ms")
                    * MS,
                    off_ns=args.storm_off_ms * MS,
                )
            jobs = ScenarioSynthesizer(profile, seed=args.seed).synthesize(
                _check_positive(args.horizon_ms, "--horizon-ms") * MS,
                scale=args.scale,
                storm=storm,
            )
            total_work = sum(job.work for job in jobs)
            print(
                f"{len(jobs)} jobs over {args.horizon_ms} ms "
                f"(total work {total_work / 1e6:.2f} ms, "
                f"utilization {total_work / (args.horizon_ms * MS):.3f})"
            )
            return 0
    except OSError as exc:
        raise SystemExit(f"workload: {exc}")
    except (ValueError, KeyError) as exc:
        raise SystemExit(f"workload: {exc}")
    raise SystemExit(
        f"unknown workload command {args.workload_command!r}"
    )


def _cmd_profile(args) -> int:
    """Run a metrics-instrumented scenario (or sweep) and emit a report.

    Single mode (``--tasks``): one in-process simulation.  Sweep mode
    (no ``--tasks``): ``--sets`` generated scenarios fanned out through
    the experiment engine (``--jobs``), whose metric shards are merged
    in the parent — the merged ``sim_*`` metrics equal a serial run's.
    """
    import json as _json

    from repro.kernel.sim import KernelSim as _KernelSim
    from repro.metrics import MetricsRegistry, build_report

    _check_positive(args.cores, "--cores")
    _check_positive(args.duration_ms, "--duration-ms")
    registry = MetricsRegistry()
    lost_units = False
    if args.tasks:
        taskset, model, assignment = _prepare(args)
        if assignment is None:
            print(
                f"{args.algorithm}: REJECTED (not schedulable on "
                f"{args.cores} cores); nothing to profile",
                file=sys.stderr,
            )
            return 1
        plan = _load_fault_plan(args.faults)
        result = _KernelSim(
            assignment,
            model,
            duration=args.duration_ms * MS,
            execution_times={task.name: task.wcet for task in taskset},
            seed=args.seed,
            faults=plan,
            overrun_policy=args.overrun_policy,
            metrics=registry,
        ).run()
        scenario = {
            "mode": "single",
            "tasks": args.tasks,
            "cores": args.cores,
            "algorithm": args.algorithm,
            "overheads": args.overheads,
            "duration_ms": args.duration_ms,
            "seed": args.seed,
            "overrun_policy": args.overrun_policy,
            "faults": args.faults,
        }
        summary = {
            "releases": result.releases,
            "misses": result.miss_count,
            "preemptions": result.preemptions,
            "migrations": result.migrations,
            "context_switches": result.context_switches,
            "overhead_ratio": result.total_overhead_ratio,
            "rejected_sets": 0,
            "profiled_sets": 1,
        }
    else:
        from repro.engine.units import ProfileUnit

        _check_positive(args.sets, "--sets")
        _check_positive(args.n_tasks, "--n-tasks")
        if args.utilization <= 0:
            raise SystemExit("--utilization must be positive")
        model = _overhead_model(
            args.overheads, max(1, args.n_tasks // args.cores)
        )
        units = [
            ProfileUnit(
                n_cores=args.cores,
                n_tasks=args.n_tasks,
                utilization=args.utilization,
                seed=args.seed + 7919 * index,
                algorithm=_check_algorithm(args.algorithm),
                overheads=model,
                duration_ms=args.duration_ms,
                overrun_policy=args.overrun_policy,
            )
            for index in range(args.sets)
        ]
        engine = _engine_for(args)
        payloads = engine.run(units)
        _report_failures(engine)
        summary = {
            "releases": 0,
            "misses": 0,
            "preemptions": 0,
            "migrations": 0,
            "context_switches": 0,
            "rejected_sets": 0,
            "profiled_sets": 0,
        }
        for payload in payloads:
            if payload is None:
                lost_units = True
                continue
            if payload["rejected"]:
                summary["rejected_sets"] += 1
                continue
            summary["profiled_sets"] += 1
            registry.merge(MetricsRegistry.from_dict(payload["metrics"]))
            for key in (
                "releases",
                "misses",
                "preemptions",
                "migrations",
                "context_switches",
            ):
                summary[key] += payload["summary"][key]
        scenario = {
            "mode": "sweep",
            "sets": args.sets,
            "n_tasks": args.n_tasks,
            "utilization": args.utilization,
            "cores": args.cores,
            "algorithm": args.algorithm,
            "overheads": args.overheads,
            "duration_ms": args.duration_ms,
            "seed": args.seed,
            "overrun_policy": args.overrun_policy,
        }
        if summary["profiled_sets"] == 0:
            print(
                "profile: every generated scenario was rejected; "
                "no metrics collected",
                file=sys.stderr,
            )
            return 1
    if args.format == "prom":
        text = registry.to_prometheus()
    else:
        report = build_report(registry, scenario, summary)
        text = _json.dumps(report, indent=2, sort_keys=True) + "\n"
    if args.out:
        import pathlib

        pathlib.Path(args.out).write_text(text, encoding="utf-8")
        print(
            f"profile: {summary['profiled_sets']} scenario(s), "
            f"{len(registry)} metric series -> {args.out}"
        )
    else:
        print(text, end="")
    return 3 if lost_units else 0


def _cmd_verify(args) -> int:
    from repro.verify import (
        TrialFailure,
        Scenario,
        full_check,
        load_repro,
        run_differential_suite,
        run_harness,
        shrink_scenario,
        write_repro,
    )

    if args.replay:
        scenario = load_repro(args.replay)
        violations = full_check(scenario)
        if violations:
            print(
                f"REPLAY {args.replay}: {len(violations)} violation(s)"
            )
            for violation in violations:
                print(f"  {violation}")
            return 2
        print(f"replay {args.replay}: scenario is clean")
        return 0

    _check_positive(args.trials, "--trials")
    if args.jobs < 1:
        raise SystemExit("--jobs must be at least 1")

    exit_code = 0
    if not args.skip_differential:
        suite = run_differential_suite(
            seed=args.seed,
            trials=min(50, max(10, args.trials // 5)),
            jobs=max(2, args.jobs),
        )
        for pair, diffs in suite.items():
            if diffs:
                exit_code = 2
                print(f"differential {pair}: FAIL")
                for diff in diffs[:5]:
                    print(f"  {diff}")
            else:
                print(f"differential {pair}: ok")

    if args.jobs == 1:
        report = run_harness(args.trials, args.seed, log=print)
        failures = report.failures
    else:
        from repro.engine import ExperimentEngine
        from repro.engine.units import VerifyUnit

        chunk = max(1, -(-args.trials // (args.jobs * 4)))
        units = [
            VerifyUnit(start=start, count=min(chunk, args.trials - start),
                       seed=args.seed)
            for start in range(0, args.trials, chunk)
        ]
        engine = ExperimentEngine(jobs=args.jobs)
        payloads = engine.run(units)
        failures = []
        for payload in payloads:
            if payload is None:
                print("verify: engine lost a trial chunk")
                exit_code = 2
                continue
            for failure in payload["failures"]:
                failures.append(
                    TrialFailure(
                        index=failure["index"],
                        scenario=Scenario.from_dict(failure["scenario"]),
                        violations=list(failure["violations"]),
                    )
                )
        failures.sort(key=lambda f: f.index)

    print(
        f"harness: {args.trials} trial(s), seed {args.seed}, "
        f"{len(failures)} failure(s)"
    )
    for failure in failures:
        exit_code = 2
        shrunk = shrink_scenario(failure.scenario)
        violations = shrunk.violations or failure.violations
        path = write_repro(
            shrunk.scenario,
            violations,
            out_dir=args.out,
            original=failure.scenario,
        )
        print(
            f"trial {failure.index}: shrunk "
            f"{len(failure.scenario.tasks)} -> "
            f"{len(shrunk.scenario.tasks)} task(s) in "
            f"{shrunk.evaluations} evaluation(s); repro: {path}"
        )
        for violation in violations[:3]:
            print(f"  {violation}")
    return exit_code


def _cmd_serve(args) -> int:
    """Run the schedulability service (see docs/service.md)."""
    import asyncio

    from repro.service import ServiceApp, ServiceConfig

    if args.shards < 1:
        raise SystemExit("--shards must be at least 1")
    if args.queue_limit < 0:
        raise SystemExit("--queue-limit must be non-negative")
    if args.deadline_ms <= 0:
        raise SystemExit("--deadline-ms must be positive")
    config = ServiceConfig(
        host=args.host,
        port=args.port,
        shards=args.shards,
        queue_limit=args.queue_limit,
        rate=args.rate,
        burst=args.burst,
        deadline_s=args.deadline_ms / 1000.0,
        unit_timeout=args.unit_timeout,
        retries=args.retries,
        data_dir=args.data_dir,
        cache_dir=args.cache,
        seed=args.seed,
    )
    app = ServiceApp(config)
    try:
        asyncio.run(app.serve_forever())
    except KeyboardInterrupt:
        print("repro serve: interrupted, shutting down")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Semi-partitioned multi-core scheduling toolkit "
        "(reproduction of Zhang, Guan & Yi, PPES 2011)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser(
        "list-algorithms", help="list registered scheduling algorithms"
    ).set_defaults(fn=_cmd_list_algorithms)

    gen = sub.add_parser("generate", help="generate a random task set")
    gen.add_argument("--n-tasks", type=int, default=12)
    gen.add_argument("--utilization", type=float, required=True)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--out", required=True)
    gen.set_defaults(fn=_cmd_generate)

    def common(p):
        p.add_argument("--tasks", required=True, help="task-set JSON file")
        p.add_argument("--cores", type=int, default=4)
        p.add_argument("--algorithm", default="FP-TS")
        p.add_argument(
            "--overheads",
            default="paper",
            help="zero | paper | paper*<factor>",
        )

    analyze = sub.add_parser("analyze", help="run schedulability analysis")
    common(analyze)
    analyze.add_argument(
        "--save-assignment",
        help="write the accepted assignment to this JSON file",
    )
    analyze.set_defaults(fn=_cmd_analyze)

    simulate = sub.add_parser("simulate", help="simulate an assignment")
    common(simulate)
    simulate.add_argument("--duration-ms", type=int, default=1000)
    simulate.add_argument("--gantt", action="store_true")
    simulate.add_argument(
        "--assignment",
        help="simulate a saved assignment JSON instead of re-partitioning",
    )
    simulate.add_argument(
        "--seed",
        type=int,
        default=0,
        help="simulation seed (drives fault injection; default: 0)",
    )
    simulate.add_argument(
        "--faults",
        metavar="FILE",
        help="fault-plan JSON (see docs/robustness.md); deterministic "
        "for a fixed --seed",
    )
    simulate.add_argument(
        "--overrun-policy",
        choices=list(OVERRUN_POLICIES),
        default="run-on",
        help="what the kernel does when a job exceeds its nominal WCET "
        "(default: run-on)",
    )
    simulate.add_argument(
        "--freq",
        metavar="SPEC",
        help="per-core frequency scaling for the simulation: '0.8' sets "
        "every core, '0.8,1.0' is positional per core, '0:0.8,2:0.5' "
        "names cores (rest stay at 1); enables the energy ledger's "
        "DVFS power model (docs/energy.md)",
    )
    simulate.add_argument(
        "--sched-class",
        choices=["auto"] + sorted(SCHED_CLASSES),
        default="auto",
        help="scheduling-class plugin for the simulator; auto derives it "
        "from the algorithm (EDF-side partitioners run under edf, the "
        "global tests under a shared-queue class; default: auto)",
    )
    simulate.set_defaults(fn=_cmd_simulate)

    def engine_flags(p):
        p.add_argument(
            "--jobs",
            type=int,
            default=1,
            help="worker processes for the experiment engine "
            "(default: 1, serial; results are identical for any value)",
        )
        p.add_argument(
            "--cache",
            metavar="DIR",
            help="content-addressed result cache directory "
            "(e.g. .repro-cache; off by default)",
        )
        p.add_argument(
            "--unit-timeout",
            type=float,
            default=None,
            metavar="SECONDS",
            help="per-unit wall-clock timeout; a unit exceeding it is "
            "retried or reported as failed (default: none)",
        )
        p.add_argument(
            "--retries",
            type=int,
            default=0,
            help="retry attempts per failed unit, with exponential "
            "backoff (default: 0)",
        )
        p.add_argument(
            "--journal",
            metavar="PATH",
            help="JSONL checkpoint journal; completed units are appended "
            "as they finish",
        )
        p.add_argument(
            "--resume",
            action="store_true",
            help="reuse finished units from --journal and recompute "
            "only the rest",
        )

    sweep = sub.add_parser(
        "sweep",
        help="acceptance-ratio sweep, or (with --workload) a "
        "trace-driven scale x storm sweep",
    )
    sweep.add_argument("--cores", type=int, default=4)
    sweep.add_argument("--n-tasks", type=int, default=12)
    sweep.add_argument("--sets", type=int, default=50)
    sweep.add_argument("--seed", type=int, default=2011)
    sweep.add_argument("--overheads", default="paper")
    sweep.add_argument("--algorithms", default="FP-TS,FFD,WFD")
    sweep.add_argument(
        "--batch",
        action="store_true",
        help="vectorized batch analysis per sweep point (bit-identical "
        "ratios; scalar fallback where inexpressible)",
    )
    sweep.add_argument(
        "--workload",
        metavar="PROFILE",
        help="fitted workload-profile JSON (from 'repro workload fit'); "
        "switches the sweep to the trace-driven scale x storm grid",
    )
    sweep.add_argument(
        "--scales",
        default="1.0",
        help="comma-separated load scales (workload mode; default: 1.0)",
    )
    sweep.add_argument(
        "--storm-intensities",
        default="1.0,2.0,4.0",
        help="comma-separated ON-phase rate multipliers (workload mode; "
        "default: 1.0,2.0,4.0)",
    )
    sweep.add_argument("--storm-on-ms", type=int, default=100)
    sweep.add_argument("--storm-off-ms", type=int, default=400)
    sweep.add_argument("--horizon-ms", type=int, default=2000)
    sweep.add_argument(
        "--stream",
        default="",
        help="synthesize only this profile stream (default: all)",
    )
    sweep.add_argument(
        "--server",
        choices=["polling", "deferrable", "background"],
        default="deferrable",
        help="aperiodic server policy (workload mode; default: deferrable)",
    )
    sweep.add_argument("--server-capacity-us", type=int, default=2000)
    sweep.add_argument("--server-period-us", type=int, default=10000)
    sweep.add_argument(
        "--hard-tasks",
        type=int,
        default=4,
        help="hard periodic tasks generated alongside the aperiodic load "
        "(workload mode; 0 = none)",
    )
    sweep.add_argument("--hard-utilization", type=float, default=0.5)
    engine_flags(sweep)
    sweep.set_defaults(fn=_cmd_sweep)

    measure = sub.add_parser(
        "measure", help="measure queue-operation costs (paper Section 3)"
    )
    measure.add_argument("--rounds", type=int, default=2000)
    measure.set_defaults(fn=_cmd_measure)

    calibrate = sub.add_parser(
        "calibrate",
        help="fit overhead-model constants (delta/theta, release/sch/"
        "cnt_swth) from this machine's instrumented micro-benchmarks",
    )
    calibrate.add_argument("--rounds", type=int, default=400)
    calibrate.add_argument("--scheduler-rounds", type=int, default=10)
    calibrate.add_argument("--seed", type=int, default=0)
    calibrate.add_argument(
        "--out",
        help="write the calibration JSON here (consumed by "
        "--overheads calib:<file>)",
    )
    calibrate.set_defaults(fn=_cmd_calibrate)

    workload = sub.add_parser(
        "workload",
        help="trace ingest, profile fitting, and scenario synthesis",
    )
    wsub = workload.add_subparsers(dest="workload_command", required=True)

    wimport = wsub.add_parser(
        "import-csv", help="ingest an arrival/work CSV into a trace"
    )
    wimport.add_argument("input", help="CSV file")
    wimport.add_argument("--out", required=True, help="trace JSONL output")
    wimport.add_argument(
        "--stream", default="", help="stream name for unlabeled rows"
    )
    wimport.set_defaults(fn=_cmd_workload)

    wazure = wsub.add_parser(
        "import-azure",
        help="ingest an Azure-Functions-style per-bin invocation log",
    )
    wazure.add_argument("input", help="invocation-count CSV")
    wazure.add_argument("--out", required=True, help="trace JSONL output")
    wazure.add_argument(
        "--max-streams",
        type=int,
        default=0,
        help="keep only the N busiest functions (0 = all)",
    )
    wazure.set_defaults(fn=_cmd_workload)

    wfit = wsub.add_parser(
        "fit", help="fit a workload profile from a trace"
    )
    wfit.add_argument("input", help="trace JSONL (from import-*)")
    wfit.add_argument("--out", required=True, help="profile JSON output")
    wfit.set_defaults(fn=_cmd_workload)

    wsynth = wsub.add_parser(
        "synth", help="synthesize a scenario from a fitted profile"
    )
    wsynth.add_argument("input", help="profile JSON (from fit)")
    wsynth.add_argument("--seed", type=int, default=0)
    wsynth.add_argument("--scale", type=float, default=1.0)
    wsynth.add_argument("--horizon-ms", type=int, default=2000)
    wsynth.add_argument("--storm-intensity", type=float, default=1.0)
    wsynth.add_argument("--storm-on-ms", type=int, default=100)
    wsynth.add_argument("--storm-off-ms", type=int, default=400)
    wsynth.set_defaults(fn=_cmd_workload)

    profile = sub.add_parser(
        "profile",
        help="metrics-instrumented simulation: per-primitive overhead "
        "anatomy (rls/sch/cnt1/cnt2), queue-op cost by N, simulator "
        "self-profile",
    )
    profile.add_argument(
        "--tasks",
        help="task-set JSON file (single-scenario mode; omit to profile "
        "a generated sweep)",
    )
    profile.add_argument("--cores", type=int, default=4)
    profile.add_argument("--algorithm", default="FP-TS")
    profile.add_argument(
        "--overheads", default="paper", help="zero | paper | paper*<factor>"
    )
    profile.add_argument("--duration-ms", type=int, default=1000)
    profile.add_argument("--seed", type=int, default=0)
    profile.add_argument(
        "--faults",
        metavar="FILE",
        help="fault-plan JSON to profile under (single mode only)",
    )
    profile.add_argument(
        "--overrun-policy",
        choices=list(OVERRUN_POLICIES),
        default="run-on",
    )
    profile.add_argument(
        "--sets",
        type=int,
        default=4,
        help="generated scenarios in sweep mode (default: 4)",
    )
    profile.add_argument("--n-tasks", type=int, default=12)
    profile.add_argument(
        "--utilization",
        type=float,
        default=0.75,
        help="normalized per-core utilization of generated sets "
        "(default: 0.75)",
    )
    profile.add_argument(
        "--format",
        choices=("json", "prom"),
        default="json",
        help="json: full profile report; prom: Prometheus text "
        "exposition of the raw metrics (default: json)",
    )
    profile.add_argument(
        "--out", metavar="FILE", help="write the report here instead of stdout"
    )
    engine_flags(profile)
    profile.set_defaults(fn=_cmd_profile)

    breakdown = sub.add_parser(
        "breakdown", help="breakdown-utilization distributions"
    )
    breakdown.add_argument("--cores", type=int, default=4)
    breakdown.add_argument("--n-tasks", type=int, default=12)
    breakdown.add_argument("--sets", type=int, default=20)
    breakdown.add_argument("--seed", type=int, default=31)
    breakdown.add_argument("--overheads", default="zero")
    breakdown.add_argument("--algorithms", default="FP-TS,FFD,WFD")
    breakdown.set_defaults(fn=_cmd_breakdown)

    campaign = sub.add_parser(
        "campaign", help="factorial acceptance campaign with CSV output"
    )
    campaign.add_argument("--core-counts", default="2,4")
    campaign.add_argument("--task-counts", default="8,16")
    campaign.add_argument("--algorithms", default="FP-TS,FFD,WFD")
    campaign.add_argument("--sets", type=int, default=15)
    campaign.add_argument(
        "--criteria",
        action="store_true",
        help="also measure the multi-criteria axes (preemptions, "
        "migrations, spare balance, packing slack, power, energy per "
        "hyperperiod) and print per-axis pivots plus a Pareto front",
    )
    campaign.add_argument("--csv", help="write long-format CSV here")
    engine_flags(campaign)
    campaign.set_defaults(fn=_cmd_campaign)

    serve = sub.add_parser(
        "serve",
        help="run the schedulability service: admission queries and "
        "campaign jobs over HTTP, with load shedding, circuit "
        "breaking, and a degradation ladder (docs/service.md)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8337)
    serve.add_argument(
        "--shards",
        type=int,
        default=2,
        help="worker shards; queries route by unit fingerprint "
        "(default: 2)",
    )
    serve.add_argument(
        "--queue-limit",
        type=int,
        default=64,
        help="max concurrently admitted requests; beyond it requests "
        "are shed with 429 (default: 64)",
    )
    serve.add_argument(
        "--rate",
        type=float,
        default=0.0,
        help="token-bucket admission rate in requests/second "
        "(default: 0, disabled)",
    )
    serve.add_argument(
        "--burst",
        type=int,
        default=8,
        help="token-bucket burst capacity (default: 8)",
    )
    serve.add_argument(
        "--deadline-ms",
        type=float,
        default=5000,
        help="default per-request deadline budget, propagated to the "
        "engine's per-unit timeouts (default: 5000)",
    )
    serve.add_argument(
        "--unit-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-unit budget for campaign jobs (default: none)",
    )
    serve.add_argument(
        "--retries",
        type=int,
        default=1,
        help="per-unit retries for campaign jobs (default: 1)",
    )
    serve.add_argument(
        "--data-dir",
        default=".repro-service",
        help="service state: job specs, journals, results, cache "
        "(default: .repro-service)",
    )
    serve.add_argument(
        "--cache",
        metavar="DIR",
        help="admission/result cache directory "
        "(default: <data-dir>/cache)",
    )
    serve.add_argument(
        "--seed",
        type=int,
        default=0,
        help="seed for breaker backoff jitter (default: 0)",
    )
    serve.set_defaults(fn=_cmd_serve)

    verify = sub.add_parser(
        "verify",
        help="differential verification: invariant oracles, metamorphic "
        "harness, cross-implementation checks",
    )
    verify.add_argument("--trials", type=int, default=100)
    verify.add_argument("--seed", type=int, default=3)
    verify.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="fan harness trials out over worker processes "
        "(default: 1, serial; the failure set is identical)",
    )
    verify.add_argument(
        "--out",
        default="verify-failures",
        help="directory for shrunk JSON repros (default: verify-failures)",
    )
    verify.add_argument(
        "--replay",
        metavar="FILE",
        help="re-run one saved repro instead of the harness",
    )
    verify.add_argument(
        "--skip-differential",
        action="store_true",
        help="run only the random harness (skip the four differential "
        "pairs)",
    )
    verify.set_defaults(fn=_cmd_verify)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
