"""Differential cross-checks: independent implementations must agree.

Ten pairs, each exercising a different redundancy in the codebase:

* **sim-vs-oracle** — a zero-overhead :class:`KernelSim` run on one core
  must agree with the analytical time-demand oracle
  (:func:`repro.analysis.oracle.fp_schedulable_oracle`) about whether a
  synchronous periodic FP task set misses a deadline;
* **serial-vs-parallel** — the experiment engine must produce identical
  payloads with ``jobs=1`` and ``jobs=2`` for the same units;
* **empty-plan-vs-no-plan** — ``faults=FaultPlan()`` (all defaults) must
  leave every field of :class:`SimulationResult` bit-identical to
  ``faults=None``;
* **tick-vs-event** — when every release instant is a multiple of the
  tick, deferring release processing to tick boundaries is a no-op, so
  tick-driven and event-driven runs must be bit-identical;
* **incremental-vs-scratch** — every partitioner run on the incremental
  analysis contexts (:mod:`repro.analysis.incremental`) must produce a
  bit-identical :class:`~repro.model.assignment.Assignment` to the same
  run on the from-scratch contexts, over seeded random task sets across
  the utilization grid;
* **batch-vs-scratch** — the struct-of-arrays batch kernels
  (:mod:`repro.analysis.batch`) must produce bit-identical accept/reject
  vectors to the from-scratch scalar contexts on whole populations, and
  the batched RTA fixed point must return the identical integer response
  times as the scalar analyzer on every accepted core;
* **legacy-vs-plugin** — :class:`~repro.kernel.legacy.LegacyKernelSim`
  (a frozen snapshot of the monolithic pre-plugin simulator) must
  produce bit-identical full-granularity results — every counter,
  per-task stat, miss, trace segment, event, and fault-log entry — to
  the scheduling-class-based :class:`~repro.kernel.sim.KernelSim`, over
  both policies, the fault-plan matrix, and every overrun policy;
* **cross-class-sanity** — trace-level laws relating scheduling classes:
  global EDF never leaves a core idle while a job waits in the shared
  ready queue (work conservation, reconstructed from the event log and
  segment trace of a zero-overhead run), and restricted-migration
  semi-partitioning performs at most as many migrations as the
  unrestricted split schedule, per task and in total.
* **replay-vs-synthetic** — replaying a zero-variance trace verbatim
  and synthesizing from its fitted profile at scale 1.0 must produce
  the identical job stream and hence identical admission verdicts
  through the same aperiodic server (the exactness contract of the
  quantile-sketch workload profiles);
* **freq1-vs-unscaled** — an all-ones frequency vector (in every
  spelling: scalar, list, string) must reproduce the pre-DVFS
  simulator bit-for-bit at full-result granularity, produce an equal
  energy ledger, and balance that ledger on both sides.

Every check returns a list of human-readable discrepancy strings; empty
means the pair agrees.  :func:`run_differential_suite` runs all ten.
"""

from __future__ import annotations

import random
from dataclasses import asdict
from typing import Dict, List

from repro.model.generator import TaskSetGenerator
from repro.model.time import MS, US
from repro.overhead.model import OverheadModel


def result_to_canonical(result) -> dict:
    """A :class:`SimulationResult` as one JSON-safe, comparable dict.

    Full granularity: counters, per-task statistics, every miss, the
    complete segment trace and event log, and the fault log.  The
    energy ledger is deliberately excluded (the frozen legacy simulator
    does not account energy); pairs that care about it — freq1-vs-
    unscaled — compare ``result.energy`` explicitly.
    """
    return {
        "duration": result.duration,
        "misses": [asdict(miss) for miss in result.misses],
        "task_stats": {
            name: asdict(stats)
            for name, stats in sorted(result.task_stats.items())
        },
        "busy_ns": list(result.busy_ns),
        "overhead_ns": list(result.overhead_ns),
        "cache_delay_ns": result.cache_delay_ns,
        "context_switches": result.context_switches,
        "preemptions": result.preemptions,
        "migrations": result.migrations,
        "releases": result.releases,
        "trace": [list(segment) for segment in result.trace],
        "events": [list(event) for event in result.events],
        "faults": result.faults.as_dicts(),
    }


def _diff_canonical(a: dict, b: dict, label_a: str, label_b: str) -> List[str]:
    """Field-level differences between two canonical result dicts."""
    diffs: List[str] = []
    for key in a:
        if a[key] != b[key]:
            va, vb = a[key], b[key]
            if isinstance(va, list) and isinstance(vb, list):
                detail = f"{len(va)} vs {len(vb)} entries"
                for i, (x, y) in enumerate(zip(va, vb)):
                    if x != y:
                        detail = f"first diff at [{i}]: {x!r} vs {y!r}"
                        break
            else:
                detail = f"{va!r} vs {vb!r}"
            diffs.append(
                f"{key}: {label_a} != {label_b} ({detail})"
            )
    return diffs


def _single_core_rm_assignment(taskset):
    """All tasks on core 0 in RM priority order — no acceptance test.

    Built by hand (not through an algorithm) precisely so unschedulable
    sets still get simulated and the sim's verdict can be compared with
    the oracle's.
    """
    from repro.model.assignment import Assignment, Entry, EntryKind

    assignment = Assignment(1)
    ordered = sorted(
        taskset, key=lambda t: t.priority if t.priority is not None else 0
    )
    for rank, task in enumerate(ordered):
        assignment.add_entry(
            Entry(
                kind=EntryKind.NORMAL,
                task=task,
                core=0,
                budget=task.wcet,
                local_priority=rank,
            )
        )
    return assignment


def sim_vs_oracle(trials: int = 20, seed: int = 0) -> List[str]:
    """KernelSim (zero overhead) vs. the time-demand schedulability oracle.

    Draws task sets around the RM schedulability boundary so both
    verdicts occur, then asserts: oracle says schedulable ⇔ the
    simulation of the synchronous periodic schedule has no misses.
    """
    from repro.analysis.oracle import fp_schedulable_oracle
    from repro.kernel.sim import KernelSim

    diffs: List[str] = []
    rng = random.Random(seed)
    for trial in range(trials):
        n_tasks = rng.randint(3, 8)
        utilization = rng.uniform(0.7, 1.0)
        generator = TaskSetGenerator(
            n_tasks=n_tasks,
            seed=rng.randint(0, 10**6),
            period_min=5 * MS,
            period_max=50 * MS,
        )
        taskset = generator.generate(utilization)
        ordered = sorted(taskset, key=lambda t: t.priority)
        oracle_verdict = fp_schedulable_oracle(
            [(t.wcet, t.period, t.deadline) for t in ordered]
        )
        assignment = _single_core_rm_assignment(taskset)
        result = KernelSim(
            assignment,
            OverheadModel.zero(),
            duration=2 * max(t.period for t in taskset),
        ).run()
        sim_verdict = result.miss_count == 0
        if oracle_verdict != sim_verdict:
            diffs.append(
                f"trial {trial} (U={utilization:.3f}, n={n_tasks}): "
                f"oracle says schedulable={oracle_verdict} but simulation "
                f"has {result.miss_count} miss(es)"
            )
    return diffs


def serial_vs_parallel(seed: int = 0, jobs: int = 2) -> List[str]:
    """ExperimentEngine payloads: in-process vs. process-pool execution."""
    from repro.engine.executor import ExperimentEngine
    from repro.engine.units import AcceptanceUnit

    units = [
        AcceptanceUnit(
            n_cores=2,
            n_tasks=6,
            sets_per_point=4,
            utilization=utilization,
            seed=seed + 7919 * index,
            algorithms=("FP-TS", "FFD", "WFD"),
            overheads=OverheadModel.zero(),
            period_min=5 * MS,
            period_max=100 * MS,
        )
        for index, utilization in enumerate((0.5, 0.7, 0.85))
    ]
    serial = ExperimentEngine(jobs=1).run(units)
    parallel = ExperimentEngine(jobs=jobs).run(units)
    diffs: List[str] = []
    for index, (a, b) in enumerate(zip(serial, parallel)):
        if a != b:
            diffs.append(
                f"unit {index}: serial payload {a!r} != parallel {b!r}"
            )
    return diffs


def _simulate_for_identity(
    seed: int, faults=None, tick_ns: int = 0, sporadic_jitter: int = MS
):
    """One mid-utilization FP-TS run with every stochastic path enabled."""
    from repro.experiments.algorithms import build_assignment
    from repro.kernel.sim import KernelSim

    generator = TaskSetGenerator(
        n_tasks=8, seed=seed, period_min=5 * MS, period_max=50 * MS
    )
    taskset = None
    assignment = None
    for attempt in range(20):
        candidate = generator.generate(0.6 * 2)
        assignment = build_assignment(
            "FP-TS", candidate, 2, OverheadModel.zero()
        )
        if assignment is not None:
            taskset = candidate
            break
    if assignment is None:
        raise RuntimeError(f"no accepted task set from seed {seed}")
    result = KernelSim(
        assignment,
        OverheadModel.paper_core_i7(4),
        duration=4 * max(t.period for t in taskset),
        record_trace=True,
        sporadic_jitter=sporadic_jitter,
        execution_variation=0.3,
        seed=seed,
        tick_ns=tick_ns,
        faults=faults,
    ).run()
    return result


def empty_plan_vs_no_plan(seed: int = 0) -> List[str]:
    """``faults=FaultPlan()`` must be bit-identical to ``faults=None``."""
    from repro.faults.plan import FaultPlan

    without = result_to_canonical(_simulate_for_identity(seed, faults=None))
    with_empty = result_to_canonical(
        _simulate_for_identity(seed, faults=FaultPlan())
    )
    return _diff_canonical(without, with_empty, "no-plan", "empty-plan")


def tick_vs_event(seed: int = 0) -> List[str]:
    """Tick-driven release processing is a no-op on tick-aligned releases.

    Generated periods are multiples of the 100 µs generator granularity
    and first releases are synchronous at 0, so with ``tick_ns=100 µs``
    every release timer already fires on a tick boundary — the deferral
    rounds to itself and the runs must agree bit-for-bit (in particular
    on the miss set).
    """
    # Sporadic jitter draws arbitrary (non-tick-aligned) inter-arrival
    # delays, which would make the deferral a real perturbation — keep
    # arrivals strictly periodic for this pair.
    event_mode = result_to_canonical(
        _simulate_for_identity(seed, tick_ns=0, sporadic_jitter=0)
    )
    tick_mode = result_to_canonical(
        _simulate_for_identity(seed, tick_ns=100 * US, sporadic_jitter=0)
    )
    return _diff_canonical(event_mode, tick_mode, "event-mode", "tick-mode")


def assignment_to_canonical(assignment) -> dict:
    """An :class:`~repro.model.assignment.Assignment` (or ``None``) as one
    JSON-safe, bit-comparable dict: every entry field that the analysis or
    the simulator reads, plus the split-task registry."""
    if assignment is None:
        return {"accepted": False}
    return {
        "accepted": True,
        "n_cores": assignment.n_cores,
        "cores": [
            [
                {
                    "name": entry.name,
                    "kind": entry.kind.value,
                    "task": entry.task.name,
                    "core": entry.core,
                    "budget": entry.budget,
                    "deadline": entry.deadline,
                    "jitter": entry.jitter,
                    "local_priority": entry.local_priority,
                    "body_rank": entry.body_rank,
                    "subtask": (
                        None
                        if entry.subtask is None
                        else {
                            "index": entry.subtask.index,
                            "core": entry.subtask.core,
                            "budget": entry.subtask.budget,
                            "total_subtasks": entry.subtask.total_subtasks,
                        }
                    ),
                }
                for entry in core.sorted_entries()
            ]
            for core in assignment.cores
        ],
        "splits": {
            name: [(sub.core, sub.budget) for sub in split.subtasks]
            for name, split in sorted(assignment.split_tasks.items())
        },
    }


#: Algorithms with a real incremental/scratch analysis path (the global
#: tests have no per-core analysis; SPA2 covers the SPA container use).
_INCREMENTAL_ALGORITHMS = ("FP-TS", "PDMS", "C=D", "SPA2", "FFD", "WFD", "P-EDF")


def incremental_vs_scratch(trials: int = 20, seed: int = 0) -> List[str]:
    """Partitioners on incremental vs. from-scratch analysis contexts.

    Draws seeded random task sets across the utilization grid (alternating
    zero and paper-calibrated overhead models) and asserts that every
    algorithm's assignment — accept/reject verdict, every entry's budget,
    deadline, jitter, rank, local priority, and the split registry — is
    bit-identical between ``incremental=True`` and ``incremental=False``.
    """
    from repro.experiments.algorithms import build_assignment

    diffs: List[str] = []
    rng = random.Random(seed)
    for trial in range(trials):
        n_cores = rng.choice((2, 4))
        n_tasks = rng.randint(6, 12)
        utilization = rng.uniform(0.55, 0.95) * n_cores
        model = (
            OverheadModel.zero()
            if trial % 2 == 0
            else OverheadModel.paper_core_i7(n_cores)
        )
        generator = TaskSetGenerator(
            n_tasks=n_tasks,
            seed=rng.randint(0, 10**6),
            period_min=5 * MS,
            period_max=100 * MS,
        )
        taskset = generator.generate(utilization)
        for algorithm in _INCREMENTAL_ALGORITHMS:
            fast = assignment_to_canonical(
                build_assignment(
                    algorithm, taskset, n_cores, model, incremental=True
                )
            )
            reference = assignment_to_canonical(
                build_assignment(
                    algorithm, taskset, n_cores, model, incremental=False
                )
            )
            if fast != reference:
                detail = _diff_canonical(
                    fast, reference, "incremental", "scratch"
                )
                diffs.append(
                    f"trial {trial} ({algorithm}, m={n_cores}, "
                    f"U={utilization:.3f}): assignments differ: "
                    + "; ".join(detail[:3])
                )
    return diffs


#: Algorithms the batch layer expresses natively (must mirror
#: ``repro.experiments.algorithms.BATCH_ALGORITHMS``).
_BATCH_ALGORITHMS = ("FFD", "WFD", "BFD", "NFD", "P-EDF")


def batch_vs_scratch(trials: int = 20, seed: int = 0) -> List[str]:
    """Batched struct-of-arrays analysis vs. the from-scratch scalar path.

    Each trial draws a whole population of seeded task sets (alternating
    zero and paper-calibrated overhead models), packs it into aligned
    arrays, and asserts two bit-level identities:

    * the batch accept/reject vector of every batchable algorithm equals
      the per-set verdicts of the scalar partitioners on from-scratch
      contexts (``incremental=False`` — the most independent reference);
    * on every core of every accepted FFD assignment, the batched RTA
      fixed point returns the identical integer response times as the
      scalar :func:`~repro.analysis.rta.core_schedulable`.
    """
    import numpy as np

    from repro.analysis.batch import (
        TaskSetPopulation,
        batch_rta_responses,
    )
    from repro.analysis.rta import core_schedulable, order_entries
    from repro.experiments.algorithms import (
        accept_population,
        build_assignment,
    )

    diffs: List[str] = []
    rng = random.Random(seed)
    for trial in range(trials):
        n_cores = rng.choice((2, 4))
        n_tasks = rng.randint(6, 12)
        utilization = rng.uniform(0.55, 0.95) * n_cores
        model = (
            OverheadModel.zero()
            if trial % 2 == 0
            else OverheadModel.paper_core_i7(n_cores)
        )
        generator = TaskSetGenerator(
            n_tasks=n_tasks,
            seed=rng.randint(0, 10**6),
            period_min=5 * MS,
            period_max=100 * MS,
        )
        tasksets = generator.generate_many(utilization, 8)
        population = TaskSetPopulation.from_tasksets(tasksets)
        assignments = []
        for algorithm in _BATCH_ALGORITHMS:
            batch_verdicts = accept_population(
                algorithm, population, n_cores, model=model
            )
            scalar = [
                build_assignment(
                    algorithm, ts, n_cores, model, incremental=False
                )
                for ts in tasksets
            ]
            if algorithm == "FFD":
                assignments = scalar
            scalar_verdicts = [a is not None for a in scalar]
            if batch_verdicts != scalar_verdicts:
                diffs.append(
                    f"trial {trial} ({algorithm}, m={n_cores}, "
                    f"U={utilization:.3f}): batch verdicts "
                    f"{batch_verdicts} != scratch {scalar_verdicts}"
                )
        # Response-time identity on the accepted FFD assignments: batch
        # every core (padded to the widest) and compare integers.
        cores = [
            order_entries(core.entries)
            for assignment in assignments
            if assignment is not None
            for core in assignment.cores
            if core.entries
        ]
        if not cores:
            continue
        width = max(len(entries) for entries in cores)
        shape = (len(cores), width)
        wcet = np.zeros(shape, dtype=np.int64)
        period = np.ones(shape, dtype=np.int64)
        deadline = np.zeros(shape, dtype=np.int64)
        for row, entries in enumerate(cores):
            for col, entry in enumerate(entries):
                wcet[row, col] = entry.budget
                period[row, col] = entry.period
                deadline[row, col] = entry.deadline
        batched = batch_rta_responses(wcet, period, deadline)
        for row, entries in enumerate(cores):
            scalar_responses = [
                result.response if result.response is not None else -1
                for result in core_schedulable(entries).results
            ]
            batch_responses = [
                int(batched[row, col]) for col in range(len(entries))
            ]
            if batch_responses != scalar_responses:
                diffs.append(
                    f"trial {trial} core row {row}: batched responses "
                    f"{batch_responses} != scalar {scalar_responses}"
                )
    return diffs


def _fault_plan(kind: str, seed: int):
    """The fault-plan matrix the legacy/plugin identity runs over."""
    from repro.faults.plan import FaultPlan, TaskFaults

    if kind == "none":
        return None
    if kind == "moderate":
        return FaultPlan(
            default=TaskFaults(
                overrun_factor=1.5,
                overrun_probability=0.3,
                release_jitter_ns=200 * US,
            ),
            seed=seed,
        )
    return FaultPlan(
        default=TaskFaults(
            overrun_factor=2.0,
            overrun_probability=0.4,
            release_jitter_ns=500 * US,
        ),
        overhead_spike_factor=3.0,
        overhead_spike_probability=0.2,
        migration_drop_probability=0.1,
        migration_delay_probability=0.2,
        migration_delay_ns=50 * US,
        seed=seed,
    )


def _accepted_assignment(algorithm: str, seed: int, utilization: float = 1.2):
    """First accepted (taskset, assignment) the generator yields."""
    from repro.experiments.algorithms import build_assignment

    generator = TaskSetGenerator(
        n_tasks=8, seed=seed, period_min=5 * MS, period_max=50 * MS
    )
    for _attempt in range(20):
        candidate = generator.generate(utilization)
        assignment = build_assignment(
            algorithm, candidate, 2, OverheadModel.zero()
        )
        if assignment is not None:
            return candidate, assignment
    return None, None


def legacy_vs_plugin(trials: int = 20, seed: int = 0) -> List[str]:
    """Frozen pre-plugin simulator vs. the scheduling-class refactor.

    The FP and EDF plugin classes must reproduce the monolithic
    simulator's event streams *bit-for-bit* — same ``seq``-ordered queue
    operations, same traces, same fault decisions — across the fault
    matrix (no faults / overrun+jitter / everything on) and all three
    overrun policies.  This is the refactor's non-regression anchor: any
    reordering of queue ops, RNG draws, or same-instant event handling
    shows up as a first-diff here.
    """
    from repro.faults.plan import OVERRUN_POLICIES
    from repro.kernel.legacy import LegacyKernelSim
    from repro.kernel.sim import KernelSim

    combos = [
        (policy, plan_kind, overrun_policy)
        for policy in ("fp", "edf")
        for plan_kind in ("none", "moderate", "full")
        for overrun_policy in OVERRUN_POLICIES
    ]
    diffs: List[str] = []
    for trial in range(trials):
        policy, plan_kind, overrun_policy = combos[trial % len(combos)]
        run_seed = seed + trial
        algorithm = "FP-TS" if policy == "fp" else "C=D"
        taskset, assignment = _accepted_assignment(algorithm, run_seed)
        if assignment is None:
            diffs.append(
                f"trial {trial}: no accepted {algorithm} task set "
                f"from seed {run_seed}"
            )
            continue
        duration = 4 * max(t.period for t in taskset)
        kwargs = dict(
            record_trace=True,
            policy=policy,
            sporadic_jitter=MS,
            execution_variation=0.3,
            seed=run_seed,
            faults=_fault_plan(plan_kind, run_seed),
            overrun_policy=overrun_policy,
        )
        legacy = result_to_canonical(
            LegacyKernelSim(
                assignment, OverheadModel.paper_core_i7(2), duration, **kwargs
            ).run()
        )
        kwargs["faults"] = _fault_plan(plan_kind, run_seed)  # fresh RNG
        plugin = result_to_canonical(
            KernelSim(
                assignment, OverheadModel.paper_core_i7(2), duration, **kwargs
            ).run()
        )
        detail = _diff_canonical(legacy, plugin, "legacy", "plugin")
        if detail:
            diffs.append(
                f"trial {trial} ({policy}, faults={plan_kind}, "
                f"overrun={overrun_policy}): " + "; ".join(detail[:3])
            )
    return diffs


def _merged_intervals(intervals):
    """Sorted, coalesced [start, end) intervals."""
    merged = []
    for start, end in sorted(intervals):
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


def _idle_windows(busy, duration):
    """Complement of the coalesced busy intervals within [0, duration)."""
    idle = []
    cursor = 0
    for start, end in _merged_intervals(busy):
        if start > cursor:
            idle.append((cursor, start))
        cursor = max(cursor, end)
    if cursor < duration:
        idle.append((cursor, duration))
    return idle


def cross_class_sanity(trials: int = 10, seed: int = 0) -> List[str]:
    """Trace-level laws relating the scheduling classes.

    * **Global EDF work conservation** — in a zero-overhead
      ``sched_class="global-edf"`` run, no core may be idle for a
      positive-measure window while any job sits in the shared ready
      queue (ready windows are reconstructed from ``ready``/``dispatch``
      events, idle windows from the complement of the segment trace).
    * **Restricted ⊆ unrestricted migrations** — with deterministic
      execution (full WCET, no jitter), a restricted-migration run of a
      split assignment performs at most as many migrations as the
      unrestricted FP split schedule, for every task and in total: the
      unrestricted schedule migrates every job through every stage while
      restricted migration pays at most one migration per job boundary.
    """
    from repro.kernel.global_sim import build_global_assignment
    from repro.kernel.sim import KernelSim

    diffs: List[str] = []
    rng = random.Random(seed)

    for trial in range(trials):
        n_tasks = rng.randint(4, 8)
        utilization = rng.uniform(0.8, 1.6)
        generator = TaskSetGenerator(
            n_tasks=n_tasks,
            seed=rng.randint(0, 10**6),
            period_min=5 * MS,
            period_max=50 * MS,
        )
        taskset = generator.generate(utilization)
        result = KernelSim(
            build_global_assignment(taskset, 2),
            OverheadModel.zero(),
            duration=2 * max(t.period for t in taskset),
            record_trace=True,
            sched_class="global-edf",
        ).run()
        # Ready (waiting) windows: job-level ready -> task-level dispatch,
        # FIFO per task, all cores folded together (one shared queue).
        waiting = []
        open_by_task: Dict[str, list] = {}
        for time, kind, label, _core in result.events:
            if kind == "ready":
                task = label.split("/", 1)[0]
                interval = [time, result.duration, label]
                open_by_task.setdefault(task, []).append(interval)
                waiting.append(interval)
            elif kind == "dispatch":
                pending = open_by_task.get(label)
                if pending:
                    pending.pop(0)[1] = time
        idle_by_core = {
            core: _idle_windows(
                [
                    (start, end)
                    for c, start, end, _label, _kind in result.trace
                    if c == core
                ],
                result.duration,
            )
            for core in range(2)
        }
        for start, end, job in waiting:
            if end <= start:
                continue
            for core, idle in idle_by_core.items():
                overlap = [
                    (max(start, s), min(end, e))
                    for s, e in idle
                    if min(end, e) > max(start, s)
                ]
                if overlap:
                    diffs.append(
                        f"trial {trial}: global-edf left core {core} idle "
                        f"{overlap[0]} while {job} waited in the ready "
                        f"queue [{start},{end})"
                    )
                    break

    found_split = 0
    for trial in range(10 * trials):
        if found_split >= max(1, trials // 2):
            break
        taskset, assignment = _accepted_assignment(
            "FP-TS", seed + 1000 + trial, utilization=1.9
        )
        if assignment is None or not assignment.split_tasks:
            continue
        found_split += 1
        duration = 4 * max(t.period for t in taskset)
        runs = {}
        for sched_class in ("fp", "restricted"):
            runs[sched_class] = KernelSim(
                assignment,
                OverheadModel.zero(),
                duration,
                sched_class=sched_class,
            ).run()
        unrestricted = runs["fp"].task_stats
        restricted = runs["restricted"].task_stats
        for task in assignment.split_tasks:
            if restricted[task].migrations > unrestricted[task].migrations:
                diffs.append(
                    f"split trial {trial}: task {task} migrated "
                    f"{restricted[task].migrations} times under restricted "
                    f"migration but only {unrestricted[task].migrations} "
                    f"unrestricted"
                )
        if runs["restricted"].migrations > runs["fp"].migrations:
            diffs.append(
                f"split trial {trial}: total restricted migrations "
                f"{runs['restricted'].migrations} exceed unrestricted "
                f"{runs['fp'].migrations}"
            )
    if found_split == 0:
        diffs.append("no split FP-TS assignment found for migration subset")
    return diffs


def replay_vs_synthetic(trials: int = 20, seed: int = 0) -> List[str]:
    """Trace replay and profile synthesis must agree on admission.

    For each trial, build a **zero-variance** trace (constant
    inter-arrival gap, constant work — randomized per trial), fit a
    profile, and synthesize from it at scale 1.0 with no storm.  The
    quantile sketch stores a constant exactly and inverse-transform
    sampling returns it exactly, so the synthesized stream must equal
    the replayed trace job-for-job — and therefore produce the
    *identical admission verdict* (hard misses, completions, response
    totals) when routed through the same deferrable server alongside
    the same generated hard task set.
    """
    from repro.model.generator import TaskSetGenerator as _Gen
    from repro.servers.server import DeferrableServer
    from repro.servers.sim import simulate_with_server
    from repro.workload.profile import fit_profile
    from repro.workload.synth import ScenarioSynthesizer
    from repro.workload.trace import ArrivalTrace, TraceRecord

    diffs: List[str] = []
    for trial in range(trials):
        rng = random.Random(f"replay-synth:{seed}:{trial}")
        gap = rng.randint(50, 1000) * US
        work = rng.randint(10, 200) * US
        n_jobs = rng.randint(20, 200)
        stream = f"t{trial}"
        trace = ArrivalTrace(
            records=tuple(
                TraceRecord(stream, gap * (i + 1), work)
                for i in range(n_jobs)
            )
        )
        replayed = trace.jobs(stream)
        horizon = trace.span_ns(stream) + 1
        profile = fit_profile(trace, window_ns=max(gap, 1 * MS))
        synthesized = ScenarioSynthesizer(
            profile, seed=seed + trial
        ).synthesize_stream(stream, horizon)
        if synthesized != replayed:
            diffs.append(
                f"trial {trial}: synthesized stream differs from replay "
                f"({len(synthesized)} vs {len(replayed)} jobs; gap={gap} "
                f"work={work})"
            )
            continue
        tasks = sorted(
            _Gen(n_tasks=3, seed=seed + trial).generate(0.5),
            key=lambda task: (task.period, task.name),
        )
        server = DeferrableServer(capacity=2 * MS, period=10 * MS)
        verdicts = {}
        for label, jobs_ in (("replay", replayed), ("synthetic", synthesized)):
            misses, stats = simulate_with_server(
                tasks, jobs_, horizon, server, server_priority=0
            )
            verdicts[label] = (
                misses == 0,
                misses,
                stats.completed,
                stats.unfinished,
                stats.total_response,
                stats.max_response,
            )
        if verdicts["replay"] != verdicts["synthetic"]:
            diffs.append(
                f"trial {trial}: admission verdict differs — replay "
                f"{verdicts['replay']} vs synthetic {verdicts['synthetic']}"
            )
    return diffs


def freq1_vs_unscaled(trials: int = 6, seed: int = 0) -> List[str]:
    """Frequency 1.0 must be the exact pre-DVFS simulator.

    Runs the identity scenario (FP-TS / C=D assignments, sporadic jitter,
    execution variation, the fault matrix) twice per trial — once with
    ``frequencies=None`` (the pre-DVFS constructor path) and once with an
    explicit all-ones frequency vector plus an explicit default
    :class:`~repro.energy.model.PowerModel` — and requires bit-identical
    canonical results *and* identical energy ledgers.  Every ledger is
    additionally replayed from zero through
    :func:`repro.energy.model.check_energy_ledger`.
    """
    from repro.energy.model import PowerModel, check_energy_ledger
    from repro.kernel.sim import KernelSim

    freq_specs = (1, [1, 1], "1.0")  # scalar, vector, decimal-string
    diffs: List[str] = []
    for trial in range(trials):
        run_seed = seed + trial
        plan_kind = ("none", "moderate", "full")[trial % 3]
        policy = "fp" if trial % 2 == 0 else "edf"
        algorithm = "FP-TS" if policy == "fp" else "C=D"
        taskset, assignment = _accepted_assignment(algorithm, run_seed)
        if assignment is None:
            diffs.append(
                f"trial {trial}: no accepted {algorithm} task set "
                f"from seed {run_seed}"
            )
            continue
        duration = 4 * max(task.period for task in taskset)

        def simulate(frequencies, power):
            return KernelSim(
                assignment,
                OverheadModel.paper_core_i7(4),
                duration,
                record_trace=True,
                policy=policy,
                sporadic_jitter=MS,
                execution_variation=0.3,
                seed=run_seed,
                faults=_fault_plan(plan_kind, run_seed),
                frequencies=frequencies,
                power=power,
            ).run()

        unscaled = simulate(None, None)
        freq1 = simulate(freq_specs[trial % len(freq_specs)], PowerModel())
        detail = _diff_canonical(
            result_to_canonical(unscaled),
            result_to_canonical(freq1),
            "unscaled",
            "freq-1",
        )
        if detail:
            diffs.append(
                f"trial {trial} ({policy}, faults={plan_kind}): "
                + "; ".join(detail[:3])
            )
        if unscaled.energy != freq1.energy:
            diffs.append(
                f"trial {trial}: energy ledgers differ at frequency 1"
            )
        for label, result in (("unscaled", unscaled), ("freq-1", freq1)):
            for problem in check_energy_ledger(
                result.energy,
                result.busy_ns,
                result.overhead_ns,
                result.duration,
            ):
                diffs.append(f"trial {trial} ({label}): {problem}")
    return diffs


#: Name -> zero-argument runner for each differential pair.
DIFFERENTIAL_PAIRS = (
    "sim-vs-oracle",
    "serial-vs-parallel",
    "empty-plan-vs-no-plan",
    "tick-vs-event",
    "incremental-vs-scratch",
    "batch-vs-scratch",
    "legacy-vs-plugin",
    "cross-class-sanity",
    "replay-vs-synthetic",
    "freq1-vs-unscaled",
)


def run_differential_suite(
    seed: int = 0, trials: int = 20, jobs: int = 2
) -> Dict[str, List[str]]:
    """Run all ten pairs; maps pair name to its discrepancy list."""
    return {
        "sim-vs-oracle": sim_vs_oracle(trials=trials, seed=seed),
        "serial-vs-parallel": serial_vs_parallel(seed=seed, jobs=jobs),
        "empty-plan-vs-no-plan": empty_plan_vs_no_plan(seed=seed),
        "tick-vs-event": tick_vs_event(seed=seed),
        "incremental-vs-scratch": incremental_vs_scratch(
            trials=trials, seed=seed
        ),
        "batch-vs-scratch": batch_vs_scratch(trials=trials, seed=seed),
        "legacy-vs-plugin": legacy_vs_plugin(trials=trials, seed=seed),
        "cross-class-sanity": cross_class_sanity(
            trials=max(1, trials // 2), seed=seed
        ),
        "replay-vs-synthetic": replay_vs_synthetic(
            trials=trials, seed=seed
        ),
        "freq1-vs-unscaled": freq1_vs_unscaled(
            trials=max(1, trials // 3), seed=seed
        ),
    }
