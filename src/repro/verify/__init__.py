"""Differential verification: invariant oracles, metamorphic harness,
cross-implementation checks, and failing-case shrinking.

Entry points:

* :func:`~repro.verify.scenario.check_scenario` — run one replayable
  :class:`~repro.verify.scenario.Scenario` through every registered
  invariant checker;
* :func:`~repro.verify.harness.run_harness` — seeded random trials plus
  metamorphic mutations;
* :func:`~repro.verify.differential.run_differential_suite` — the ten
  independent-implementation agreement checks;
* :func:`~repro.verify.shrink.shrink_scenario` /
  :func:`~repro.verify.shrink.write_repro` — minimize a failing scenario
  and persist it for ``repro verify --replay``.
"""

from repro.verify.differential import (
    DIFFERENTIAL_PAIRS,
    assignment_to_canonical,
    batch_vs_scratch,
    cross_class_sanity,
    empty_plan_vs_no_plan,
    freq1_vs_unscaled,
    incremental_vs_scratch,
    legacy_vs_plugin,
    replay_vs_synthetic,
    result_to_canonical,
    run_differential_suite,
    serial_vs_parallel,
    sim_vs_oracle,
    tick_vs_event,
)
from repro.verify.harness import (
    HarnessReport,
    TrialFailure,
    full_check,
    metamorphic_checks,
    random_scenario,
    run_harness,
    run_trial,
)
from repro.verify.scenario import (
    Scenario,
    ScenarioReport,
    ScenarioTask,
    check_scenario,
    run_scenario,
)
from repro.verify.shrink import (
    DEFAULT_FAILURE_DIR,
    ShrinkResult,
    load_repro,
    shrink_scenario,
    write_repro,
)

__all__ = [
    "DIFFERENTIAL_PAIRS",
    "DEFAULT_FAILURE_DIR",
    "HarnessReport",
    "Scenario",
    "ScenarioReport",
    "ScenarioTask",
    "ShrinkResult",
    "TrialFailure",
    "assignment_to_canonical",
    "batch_vs_scratch",
    "check_scenario",
    "cross_class_sanity",
    "empty_plan_vs_no_plan",
    "freq1_vs_unscaled",
    "full_check",
    "incremental_vs_scratch",
    "legacy_vs_plugin",
    "load_repro",
    "metamorphic_checks",
    "random_scenario",
    "replay_vs_synthetic",
    "result_to_canonical",
    "run_differential_suite",
    "run_harness",
    "run_scenario",
    "run_trial",
    "serial_vs_parallel",
    "shrink_scenario",
    "sim_vs_oracle",
    "tick_vs_event",
    "write_repro",
]
