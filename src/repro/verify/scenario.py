"""Self-contained, replayable verification scenarios.

A :class:`Scenario` pins *everything* one end-to-end pipeline run depends
on — the materialized task parameters (not a generator seed, so shrinking
can edit individual tasks), the partitioning algorithm, the simulator
configuration, and an optional fault plan.  It round-trips through JSON,
which is what makes shrunk failing cases replayable artifacts
(``repro verify --replay failure.json``).

:func:`check_scenario` is the single verdict function shared by the
random harness, the shrinker, and the CLI: build the assignment, simulate
with tracing, and run every registered invariant checker plus the
scenario-level schedulability expectation.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.faults.plan import OVERRUN_POLICIES, FaultPlan
from repro.model.task import Task
from repro.model.taskset import TaskSet
from repro.overhead.model import OverheadModel
from repro.trace.validate import CheckContext, run_checkers


@dataclass(frozen=True)
class ScenarioTask:
    """One task's materialized parameters (nanoseconds)."""

    name: str
    wcet: int
    period: int
    deadline: int = 0  # 0 = implicit (period)
    wss: int = 64 * 1024

    def to_task(self) -> Task:
        return Task(
            name=self.name,
            wcet=self.wcet,
            period=self.period,
            deadline=self.deadline or self.period,
            wss=self.wss,
        )


@dataclass(frozen=True)
class Scenario:
    """A complete, serializable verification pipeline configuration."""

    tasks: Tuple[ScenarioTask, ...]
    n_cores: int = 2
    algorithm: str = "FP-TS"
    #: Simulator dispatch policy; EDF-side algorithms need ``"edf"``.
    policy: str = "fp"
    #: Overhead model spec: ``"zero"``, ``"paper"`` or ``"paper*K"``.
    overheads: str = "zero"
    #: Simulation horizon as a multiple of the largest period.
    duration_factor: int = 8
    tick_ns: int = 0
    sporadic_jitter: int = 0
    execution_variation: float = 0.0
    sim_seed: int = 0
    overrun_policy: str = "run-on"
    #: ``FaultPlan.to_dict()`` payload, or None for a fault-free run.
    faults: Optional[dict] = None
    #: Scheduling-class registry name (:data:`repro.kernel.sched_class.
    #: SCHED_CLASSES`); ``"auto"`` derives the class from ``policy``,
    #: matching the simulator's default.
    sched_class: str = "auto"

    def __post_init__(self) -> None:
        if not self.tasks:
            raise ValueError("scenario needs at least one task")
        if self.overrun_policy not in OVERRUN_POLICIES:
            raise ValueError(
                f"unknown overrun_policy {self.overrun_policy!r}"
            )
        if self.sched_class != "auto":
            from repro.kernel.sched_class import SCHED_CLASSES

            if self.sched_class not in SCHED_CLASSES:
                raise ValueError(
                    f"unknown sched_class {self.sched_class!r}; valid: "
                    f"auto, {', '.join(sorted(SCHED_CLASSES))}"
                )

    # ------------------------------------------------------------------
    # Derived objects
    # ------------------------------------------------------------------

    def taskset(self) -> TaskSet:
        ts = TaskSet([t.to_task() for t in self.tasks])
        return ts.assign_rate_monotonic()

    def overhead_model(self) -> OverheadModel:
        spec = self.overheads
        if spec == "zero":
            return OverheadModel.zero()
        if spec == "paper" or spec.startswith("paper*"):
            tasks_per_core = max(1, len(self.tasks) // self.n_cores)
            model = OverheadModel.paper_core_i7(tasks_per_core)
            if spec.startswith("paper*"):
                model = model.scaled(float(spec[len("paper*"):]))
            return model
        raise ValueError(f"unknown overhead spec {spec!r}")

    def horizon(self) -> int:
        return self.duration_factor * max(t.period for t in self.tasks)

    def fault_plan(self) -> Optional[FaultPlan]:
        if self.faults is None:
            return None
        return FaultPlan.from_dict(self.faults)

    @property
    def is_deterministic_demand(self) -> bool:
        """True when every job's nominal demand is its full budget."""
        return self.execution_variation == 0.0

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        data = asdict(self)
        data["tasks"] = [asdict(t) for t in self.tasks]
        return data

    @staticmethod
    def from_dict(data: dict) -> "Scenario":
        if not isinstance(data, dict):
            raise ValueError(
                f"scenario must be a JSON object, got {type(data).__name__}"
            )
        known = set(Scenario.__dataclass_fields__)
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown scenario field(s) {sorted(unknown)}; "
                f"valid: {sorted(known)}"
            )
        kwargs = dict(data)
        kwargs["tasks"] = tuple(
            ScenarioTask(**t) for t in kwargs.get("tasks", [])
        )
        return Scenario(**kwargs)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @staticmethod
    def from_json_file(path: Union[str, Path]) -> "Scenario":
        data = json.loads(Path(path).read_text(encoding="utf-8"))
        return Scenario.from_dict(data)

    def replaced(self, **changes) -> "Scenario":
        return replace(self, **changes)


@dataclass
class ScenarioReport:
    """Outcome of running one scenario through the full pipeline."""

    scenario: Scenario
    #: Whether the partitioning algorithm accepted the task set; rejected
    #: scenarios produce no schedule and therefore no violations.
    accepted: bool = False
    miss_count: int = 0
    violations: List[str] = field(default_factory=list)

    @property
    def failed(self) -> bool:
        return bool(self.violations)


def _expected_work(assignment) -> Dict[str, int]:
    """Per-task nominal demand (sum of stage budgets) for the ledger."""
    from repro.kernel.runtime import build_runtime_tasks

    return {
        rt.name: rt.total_budget for rt in build_runtime_tasks(assignment)
    }


def run_scenario(scenario: Scenario) -> ScenarioReport:
    """Build, simulate, and check one scenario against every oracle."""
    from repro.experiments.algorithms import build_assignment
    from repro.kernel.sim import KernelSim

    report = ScenarioReport(scenario=scenario)
    taskset = scenario.taskset()
    model = scenario.overhead_model()
    assignment = build_assignment(
        scenario.algorithm, taskset, scenario.n_cores, model
    )
    if assignment is None:
        return report
    report.accepted = True
    try:
        assignment.validate()
    except ValueError as exc:
        report.violations.append(f"assignment: {exc}")
        return report

    plan = scenario.fault_plan()
    sim = KernelSim(
        assignment,
        model,
        duration=scenario.horizon(),
        record_trace=True,
        policy=scenario.policy,
        sporadic_jitter=scenario.sporadic_jitter,
        execution_variation=scenario.execution_variation,
        seed=scenario.sim_seed,
        tick_ns=scenario.tick_ns,
        faults=plan,
        overrun_policy=scenario.overrun_policy,
        sched_class=(
            None if scenario.sched_class == "auto" else scenario.sched_class
        ),
    )
    result = sim.run()
    report.miss_count = result.miss_count

    # EDF ready-queue keys are reconstructed from release-event times,
    # which drift from the nominal release under tick deferral or
    # injected release jitter; the checker skips itself in that case.
    plan_has_jitter = plan is not None and not plan.is_empty and (
        plan.default.release_jitter_ns > 0
        or any(tf.release_jitter_ns > 0 for tf in plan.tasks.values())
    )
    ctx = CheckContext.from_result(
        result,
        assignment,
        policy=scenario.policy,
        overheads=model,
        expected_work=(
            _expected_work(assignment)
            if scenario.is_deterministic_demand
            else None
        ),
        edf_keys_reliable=(scenario.tick_ns == 0 and not plan_has_jitter),
        sched_class=scenario.sched_class,
    )
    for violation in run_checkers(ctx):
        report.violations.append(f"{violation.kind}: {violation.detail}")

    # Scenario-level expectation: an accepted assignment simulated under
    # analysis conditions — zero overheads, no tick deferral, no faults —
    # never misses.  (Overhead-laden runs may legitimately miss: the
    # acceptance analysis inflates budgets conservatively but the paper's
    # whole point is that measured overheads are an empirical question.)
    # Only the class the acceptance analysis modelled gets this promise:
    # overriding the scheduling class (restricted migration places whole
    # WCETs on single cores; global classes ignore the partitioning)
    # voids the per-core schedulability argument.
    clean_conditions = (
        scenario.overheads == "zero"
        and scenario.tick_ns == 0
        and (plan is None or plan.is_empty)
        and scenario.execution_variation == 0.0
        and scenario.sched_class in ("auto", scenario.policy)
    )
    if clean_conditions and result.miss_count:
        miss = result.misses[0]
        report.violations.append(
            "clean-miss: accepted assignment missed under analysis "
            f"conditions: {miss.task}/{miss.job_seq} {miss.kind} at "
            f"{miss.detected_at}"
        )
    # Horizon accounting can never be violated by construction of a
    # correct simulator; check it anyway — it is cheap and load-bearing.
    for core in range(scenario.n_cores):
        used = result.busy_ns[core] + result.overhead_ns[core]
        if used > result.duration:
            report.violations.append(
                f"accounting: core {core} busy+overhead {used} exceeds "
                f"horizon {result.duration}"
            )
    return report


def check_scenario(scenario: Scenario) -> List[str]:
    """Violation strings for one scenario (empty = clean)."""
    return run_scenario(scenario).violations
