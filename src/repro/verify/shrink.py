"""Greedy shrinking of failing verification scenarios.

Given a scenario on which a predicate (by default
:func:`~repro.verify.harness.full_check`) reports violations, the
shrinker repeatedly tries simplifications — drop a task, halve the
horizon, strip stochastic configuration, round task parameters to coarse
values — keeping a candidate only if it *still fails*.  The loop runs to
a fixpoint (or an evaluation budget), so the surviving scenario is
locally minimal: removing any single task or simplification re-breaks
the repro.

Minimal scenarios are written as JSON repros to ``verify-failures/`` and
replayed with ``repro verify --replay <file>``.
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, List, Optional, Tuple

from repro.model.time import MS, US
from repro.verify.scenario import Scenario, ScenarioTask

#: Default output directory for shrunk repros (ISSUE/CI contract).
DEFAULT_FAILURE_DIR = "verify-failures"

Predicate = Callable[[Scenario], bool]


def _cost(scenario: Scenario) -> Tuple[int, int, int, int]:
    """Lexicographic size of a scenario (smaller = simpler)."""
    complexity = (
        int(scenario.faults is not None)
        + int(scenario.tick_ns != 0)
        + int(scenario.sporadic_jitter != 0)
        + int(scenario.execution_variation != 0.0)
        + int(scenario.overrun_policy != "run-on")
        + int(scenario.overheads != "zero")
    )
    magnitude = sum(t.wcet + t.period for t in scenario.tasks)
    return (
        len(scenario.tasks),
        scenario.duration_factor,
        complexity,
        magnitude,
    )


def _round_down(value: int, granularity: int, minimum: int) -> int:
    return max(minimum, (value // granularity) * granularity)


def _task_candidates(task: ScenarioTask) -> List[ScenarioTask]:
    """Simpler variants of one task (still a valid constrained task)."""
    candidates: List[ScenarioTask] = []
    deadline = task.deadline or task.period
    for period in (
        _round_down(task.period, 10 * MS, 10 * MS),
        _round_down(task.period, MS, MS),
    ):
        if period != task.period and period >= task.wcet:
            candidates.append(
                ScenarioTask(
                    name=task.name,
                    wcet=task.wcet,
                    period=period,
                    deadline=min(deadline, period) if task.deadline else 0,
                    wss=task.wss,
                )
            )
    for wcet in (
        1,
        task.wcet // 2,
        _round_down(task.wcet, MS, 1),
        _round_down(task.wcet, 100 * US, 1),
    ):
        if 0 < wcet < task.wcet:
            candidates.append(
                ScenarioTask(
                    name=task.name,
                    wcet=wcet,
                    period=task.period,
                    deadline=task.deadline,
                    wss=task.wss,
                )
            )
    if task.wss != 64 * 1024:
        candidates.append(
            ScenarioTask(
                name=task.name,
                wcet=task.wcet,
                period=task.period,
                deadline=task.deadline,
                wss=64 * 1024,
            )
        )
    return candidates


def _simplifications(scenario: Scenario) -> List[Scenario]:
    """One round of candidate simplifications, simplest-first."""
    candidates: List[Scenario] = []
    tasks = scenario.tasks
    # Drop each task (keep at least one).
    if len(tasks) > 1:
        for index in range(len(tasks)):
            candidates.append(
                scenario.replaced(
                    tasks=tasks[:index] + tasks[index + 1:]
                )
            )
    # Halve the horizon.
    if scenario.duration_factor > 1:
        candidates.append(
            scenario.replaced(
                duration_factor=max(1, scenario.duration_factor // 2)
            )
        )
    # Strip stochastic / fault configuration, one knob at a time.
    if scenario.faults is not None:
        candidates.append(scenario.replaced(faults=None))
    if scenario.overrun_policy != "run-on":
        candidates.append(scenario.replaced(overrun_policy="run-on"))
    if scenario.tick_ns:
        candidates.append(scenario.replaced(tick_ns=0))
    if scenario.sporadic_jitter:
        candidates.append(scenario.replaced(sporadic_jitter=0))
    if scenario.execution_variation:
        candidates.append(scenario.replaced(execution_variation=0.0))
    if scenario.overheads != "zero":
        candidates.append(scenario.replaced(overheads="zero"))
    # Round individual task parameters.
    for index, task in enumerate(tasks):
        for replacement in _task_candidates(task):
            candidates.append(
                scenario.replaced(
                    tasks=tasks[:index] + (replacement,) + tasks[index + 1:]
                )
            )
    return candidates


@dataclass
class ShrinkResult:
    """Outcome of shrinking one failing scenario."""

    scenario: Scenario
    evaluations: int = 0
    rounds: int = 0
    #: Violations of the final (minimal) scenario.
    violations: List[str] = field(default_factory=list)


def shrink_scenario(
    scenario: Scenario,
    failing: Optional[Predicate] = None,
    max_evaluations: int = 400,
) -> ShrinkResult:
    """Greedily minimize ``scenario`` while ``failing`` stays true.

    ``failing`` defaults to "``full_check`` reports any violation".  The
    input scenario is assumed failing; if it is not, it is returned
    unchanged (zero evaluations confirm it, by contract with callers who
    already hold the violation list).
    """
    from repro.verify.harness import full_check

    if failing is None:
        failing = lambda s: bool(full_check(s))  # noqa: E731
    result = ShrinkResult(scenario=scenario)
    current = scenario
    improved = True
    while improved and result.evaluations < max_evaluations:
        improved = False
        result.rounds += 1
        for candidate in _simplifications(current):
            if _cost(candidate) >= _cost(current):
                continue
            if result.evaluations >= max_evaluations:
                break
            result.evaluations += 1
            try:
                still_failing = failing(candidate)
            except Exception:
                # A candidate the pipeline cannot even build is not a
                # simplification of *this* failure.
                continue
            if still_failing:
                current = candidate
                improved = True
                break  # restart the pass from the simpler scenario
    result.scenario = current
    result.violations = full_check(current)
    return result


# ----------------------------------------------------------------------
# Repro files
# ----------------------------------------------------------------------

def _slug(text: str) -> str:
    return re.sub(r"[^A-Za-z0-9]+", "-", text).strip("-").lower() or "x"


def repro_path(scenario: Scenario, out_dir) -> Path:
    digest = hashlib.sha256(
        scenario.to_json().encode("utf-8")
    ).hexdigest()[:12]
    name = f"{_slug(scenario.algorithm)}-{len(scenario.tasks)}tasks-{digest}"
    return Path(out_dir) / f"{name}.json"


def write_repro(
    scenario: Scenario,
    violations: List[str],
    out_dir=DEFAULT_FAILURE_DIR,
    original: Optional[Scenario] = None,
) -> Path:
    """Write a replayable JSON repro; returns its path."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    path = repro_path(scenario, out)
    payload = {
        "scenario": scenario.to_dict(),
        "violations": list(violations),
    }
    if original is not None:
        payload["original_scenario"] = original.to_dict()
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return path


def load_repro(path) -> Scenario:
    """Load the scenario from a repro file (or a bare scenario JSON)."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if "scenario" in data:
        data = data["scenario"]
    return Scenario.from_dict(data)
