"""Metamorphic / property harness: seeded random end-to-end scenarios.

Each trial draws one random :class:`~repro.verify.scenario.Scenario`
(random constructive algorithm, workload, overhead model, simulator
configuration, optional fault plan), runs it through every registered
invariant checker (:func:`~repro.verify.scenario.check_scenario`), and
additionally applies **metamorphic mutations** — transformations of the
task set that provably preserve (or one-sidedly bound) the acceptance
verdict:

* **scale ×k** — multiplying every WCET/period/deadline by an integer
  ``k`` (and scaling the overhead model alongside) changes nothing about
  schedulability; applied under the zero-overhead model for algorithms
  whose acceptance involves no budget-splitting arithmetic (integer
  splits do not commute with scaling);
* **permute task IDs** — renaming tasks cannot change the verdict, as
  long as periods and utilizations are pairwise distinct (names only
  ever break ties);
* **add a zero-utilization task** — appending a minimal task (WCET 1,
  maximal period, hence lowest priority and smallest utilization) to a
  *rejected* set keeps it rejected for greedy partitioners: the new task
  sorts last in every assignment order, so the decisions leading to the
  original failure are untouched.  (The accept direction is *not* sound:
  knife-edge slack can flip.)

Every trial is reproducible from ``(seed, index)`` alone, which is what
lets the :mod:`~repro.verify.shrink` shrinker re-evaluate candidate
simplifications deterministically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from fractions import Fraction
from typing import List, Optional

from repro.faults.plan import OVERRUN_POLICIES
from repro.model.generator import TaskSetGenerator
from repro.model.task import Task
from repro.model.taskset import TaskSet
from repro.model.time import MS
from repro.verify.scenario import Scenario, ScenarioTask, check_scenario

#: Constructive algorithms (produce an assignment the simulator can run).
ALGORITHMS = ("FP-TS", "C=D", "FFD", "WFD", "BFD", "P-EDF", "SPA2")
#: Algorithms whose assignments the simulator runs under EDF dispatch.
EDF_SIDE = ("C=D", "P-EDF")
#: Acceptance involves no integer budget-splitting, so exact ×k scaling
#: preserves the verdict bit-for-bit.
SCALE_SAFE = ("FFD", "WFD", "BFD", "P-EDF")
#: Greedy partitioners that consider tasks in a workload-derived order;
#: appending a task that sorts last cannot rescue a rejected set.
GREEDY = ("FFD", "WFD", "BFD", "FP-TS")

#: Per-trial seed stride (prime, mirrors the engine's per-point strides).
TRIAL_SEED_STRIDE = 6151


def random_scenario(rng: random.Random) -> Scenario:
    """Draw one random end-to-end scenario."""
    n_cores = rng.choice([2, 4])
    n_tasks = rng.randint(4, 10)
    normalized = rng.uniform(0.3, 0.9)
    algorithm = rng.choice(ALGORITHMS)
    generator = TaskSetGenerator(
        n_tasks=n_tasks,
        seed=rng.randint(0, 10**6),
        period_min=5 * MS,
        period_max=50 * MS,
        method=rng.choice(["uunifast", "randfixedsum"]),
    )
    taskset = generator.generate(normalized * n_cores)
    tasks = tuple(
        ScenarioTask(
            name=task.name,
            wcet=task.wcet,
            period=task.period,
            deadline=task.deadline,
            wss=task.wss,
        )
        for task in taskset
    )
    faults: Optional[dict] = None
    overrun_policy = "run-on"
    if rng.random() < 0.3:
        faults = {
            "default": {
                "overrun_factor": rng.choice([1.5, 2.0]),
                "overrun_probability": 0.2,
            },
            "migration_drop_probability": rng.choice([0.0, 0.0, 0.1]),
            "seed": rng.randint(0, 10**6),
        }
        overrun_policy = rng.choice(list(OVERRUN_POLICIES))
    # Occasionally override the scheduling class with restricted
    # migration (FP-keyed, so only on FP-side algorithms): its job-level
    # stage re-planning must still satisfy every structural oracle.
    sched_class = "auto"
    if algorithm not in EDF_SIDE and rng.random() < 0.2:
        sched_class = "restricted"
    return Scenario(
        tasks=tasks,
        n_cores=n_cores,
        algorithm=algorithm,
        policy="edf" if algorithm in EDF_SIDE else "fp",
        overheads=rng.choice(["zero", "zero", "paper"]),
        duration_factor=8,
        tick_ns=rng.choice([0, 0, 0, MS]),
        sporadic_jitter=rng.choice([0, 0, MS]),
        execution_variation=rng.choice([0.0, 0.0, 0.4]),
        sim_seed=rng.randint(0, 10**6),
        overrun_policy=overrun_policy,
        faults=faults,
        sched_class=sched_class,
    )


def _scaled_taskset(taskset: TaskSet, k: int) -> TaskSet:
    scaled = [
        Task(
            name=task.name,
            wcet=task.wcet * k,
            period=task.period * k,
            deadline=task.deadline * k,
            wss=task.wss,
        )
        for task in taskset
    ]
    return TaskSet(scaled).assign_rate_monotonic()


def _renamed_taskset(taskset: TaskSet) -> TaskSet:
    tasks = list(taskset)
    renamed = [
        Task(
            name=f"m{len(tasks) - 1 - index:03d}",
            wcet=task.wcet,
            period=task.period,
            deadline=task.deadline,
            wss=task.wss,
        )
        for index, task in enumerate(tasks)
    ]
    return TaskSet(renamed).assign_rate_monotonic()


def _parameters_distinct(taskset: TaskSet) -> bool:
    """Names can only ever break ties: require there be none to break."""
    periods = [task.period for task in taskset]
    utils = [Fraction(task.wcet, task.period) for task in taskset]
    return len(set(periods)) == len(periods) and len(set(utils)) == len(
        utils
    )


def metamorphic_checks(scenario: Scenario) -> List[str]:
    """Violation strings from the semantics-preserving mutations."""
    from repro.experiments.algorithms import accept

    violations: List[str] = []
    taskset = scenario.taskset()
    model = scenario.overhead_model()
    base = accept(scenario.algorithm, taskset, scenario.n_cores, model)

    if scenario.overheads == "zero" and scenario.algorithm in SCALE_SAFE:
        k = 3
        mutated = accept(
            scenario.algorithm,
            _scaled_taskset(taskset, k),
            scenario.n_cores,
            model.scaled(k),
        )
        if mutated != base:
            violations.append(
                f"metamorphic-scale: {scenario.algorithm} verdict flipped "
                f"{base} -> {mutated} under x{k} time scaling"
            )

    if _parameters_distinct(taskset):
        mutated = accept(
            scenario.algorithm,
            _renamed_taskset(taskset),
            scenario.n_cores,
            model,
        )
        if mutated != base:
            violations.append(
                f"metamorphic-permute: {scenario.algorithm} verdict "
                f"flipped {base} -> {mutated} under task renaming"
            )

    if not base and scenario.algorithm in GREEDY:
        tiny = Task(
            name="zzz-tiny",
            wcet=1,
            period=max(task.period for task in taskset),
            wss=min(task.wss for task in taskset),
        )
        mutated = accept(
            scenario.algorithm,
            TaskSet(list(taskset) + [tiny]).assign_rate_monotonic(),
            scenario.n_cores,
            model,
        )
        if mutated:
            violations.append(
                f"metamorphic-add-tiny: {scenario.algorithm} accepted a "
                "rejected set after adding a zero-utilization task"
            )
    return violations


def full_check(scenario: Scenario) -> List[str]:
    """Invariant oracles plus metamorphic relations (empty = clean).

    Deterministic in the scenario alone — the predicate both the harness
    and the shrinker evaluate.
    """
    return check_scenario(scenario) + metamorphic_checks(scenario)


@dataclass
class TrialFailure:
    """One failing harness trial, pre-shrink."""

    index: int
    scenario: Scenario
    violations: List[str]

    def as_dict(self) -> dict:
        return {
            "index": self.index,
            "scenario": self.scenario.to_dict(),
            "violations": list(self.violations),
        }


@dataclass
class HarnessReport:
    """Aggregate outcome of a harness run."""

    trials: int = 0
    seed: int = 0
    failures: List[TrialFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


def run_trial(index: int, seed: int) -> Optional[TrialFailure]:
    """Run one trial; a :class:`TrialFailure` if any oracle fired."""
    rng = random.Random(seed + TRIAL_SEED_STRIDE * index)
    scenario = random_scenario(rng)
    violations = full_check(scenario)
    if violations:
        return TrialFailure(
            index=index, scenario=scenario, violations=violations
        )
    return None


def run_harness(
    trials: int, seed: int, log=None
) -> HarnessReport:
    """Run ``trials`` seeded trials in-process."""
    report = HarnessReport(trials=trials, seed=seed)
    for index in range(trials):
        failure = run_trial(index, seed)
        if failure is not None:
            report.failures.append(failure)
            if log is not None:
                log(
                    f"trial {index}: {len(failure.violations)} "
                    f"violation(s): {failure.violations[0]}"
                )
    return report
