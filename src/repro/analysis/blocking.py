"""Blocking-aware response-time analysis (IPCP / NPCS, extension).

Classic uniprocessor theory (Sha, Rajkumar & Lehoczky 1990; Baker 1991):
under the immediate priority ceiling protocol a job is blocked **at most
once**, by **one** critical section of a lower-priority task whose
resource ceiling is at or above the job's priority:

    B_i = max { duration(cs) : cs belongs to a lower-priority task,
                               ceiling(cs.resource) <= priority_i }

(priorities numeric, smaller = higher).  NPCS is the special case where
every ceiling is the highest priority, i.e. every lower-priority section
blocks.  The response-time recurrence becomes

    R = C_i + B_i + sum over hp(i) of ceil((R + J_j) / T_j) * C_j

Resources are per-core (partitioned resource access); split tasks must
not use resources (enforced by :func:`core_schedulable_with_resources`).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.analysis.rta import (
    CoreAnalysis,
    EntryResult,
    order_entries,
    response_time,
)
from repro.model.assignment import Entry, EntryKind
from repro.model.resources import ResourceModel


def blocking_term(
    entry_name: str,
    priority_index: int,
    ordered_names: Sequence[str],
    model: ResourceModel,
    ceilings: Dict[str, int],
) -> int:
    """IPCP blocking bound for the entry at ``priority_index``.

    ``ordered_names`` lists the core's task names, highest priority first;
    ``ceilings`` maps resource -> ceiling index in that same order.
    """
    worst = 0
    for lower_index in range(priority_index + 1, len(ordered_names)):
        lower_name = ordered_names[lower_index]
        for section in model.sections_of(lower_name):
            ceiling = ceilings.get(section.resource)
            if ceiling is not None and ceiling <= priority_index:
                worst = max(worst, section.duration)
    return worst


def core_schedulable_with_resources(
    entries: Iterable[Entry],
    model: ResourceModel,
) -> CoreAnalysis:
    """Exact RTA with IPCP blocking terms on one core.

    Raises ValueError if a split-task entry uses resources (unsupported).
    """
    ordered = order_entries(entries)
    names = [entry.task.name for entry in ordered]
    for entry in ordered:
        if entry.kind != EntryKind.NORMAL and model.sections_of(
            entry.task.name
        ):
            raise ValueError(
                f"split task {entry.task.name} declares critical sections; "
                "resource sharing by split tasks is unsupported"
            )
    priorities = {name: index for index, name in enumerate(names)}
    ceilings = model.ceilings(priorities)
    results: List[EntryResult] = []
    for index, entry in enumerate(ordered):
        blocking = blocking_term(
            entry.task.name, index, names, model, ceilings
        )
        higher = [
            (e.budget, e.period, e.jitter) for e in ordered[:index]
        ]
        response = response_time(
            entry.budget + blocking, higher, entry.deadline
        )
        results.append(EntryResult(entry=entry, response=response))
    return CoreAnalysis(results=results)


def assignment_schedulable_with_resources(
    assignment, model: ResourceModel
) -> bool:
    """Blocking-aware RTA across all cores of an assignment."""
    for core in assignment.cores:
        analysis = core_schedulable_with_resources(core.entries, model)
        if not analysis.schedulable:
            return False
    return True


def npcs_model(model: ResourceModel) -> ResourceModel:
    """Rewrite every section to guard one global resource — ceilings all
    become the top priority, turning IPCP into non-preemptive sections."""
    npcs = ResourceModel()
    for task_name, sections in model.sections.items():
        for section in sections:
            npcs.add(
                task_name,
                type(section)(
                    resource="__npcs__",
                    start=section.start,
                    duration=section.duration,
                ),
            )
    return npcs
