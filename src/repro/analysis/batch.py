"""Struct-of-arrays batch analysis: whole populations in lock-step.

The acceptance sweeps ask the same question — *does this heuristic accept
this task set on m cores?* — for every set of a sweep point's population.
The scalar engines (:mod:`repro.analysis.incremental`) answer one set at
a time; this module packs a whole population into aligned numpy arrays
(one **lane** per task set) and answers all of them together:

* **batched RTA fixed point** — the Joseph & Pandya update
  ``R' = C + sum ceil(R / T_hp) * C_hp`` runs as one int64 tensor
  expression over every (lane, core, priority position) at once, with a
  per-lane convergence mask: positions whose iterate converged (or
  overshot their deadline) freeze while stragglers keep iterating.  All
  arithmetic is exact int64 — the batched iterates are the *same*
  integers the scalar loop produces, so verdicts and response times are
  bit-identical, not merely close;
* **batched EDF admission** — implicit-deadline lanes reduce to the
  utilization test (accumulated in scalar commit order, so the float
  sums are IEEE-identical to the scalar left-to-right sums);
  constrained-deadline lanes run exact processor-demand analysis over a
  shared, deduplicated checkpoint grid (a superset of each lane's own
  deadline lattice cannot change the exact test's verdict: dbf is a
  right-continuous step function, so any violation is already visible
  at the lane's own lattice point at or below it);
* **fast-path filters** — sound utilization / hyperbolic-bound screens
  (with explicit float-error margins) retire most lanes and probes
  before any fixed-point iteration runs.  Each filter only ever fires
  where the exact test is *guaranteed* to agree, so the accept/reject
  vector still matches the scalar engines bit for bit.

The packer (:func:`batch_partition_accept`) replays the decreasing-
utilization bin-packing heuristics (first/next/best/worst-fit) over all
lanes simultaneously; committed state per (lane, core) — membership
masks, commit-order float utilization, cached responses for warm starts
— lives in struct-of-arrays form.  Splitting decisions stay scalar: the
batch layer answers the admit/reject and response-time queries that the
plain partitioners ask, and anything it cannot express falls back to
the scalar contexts lane by lane (see
``repro.experiments.algorithms.accept_population``).

Work is counted in a :class:`BatchStats` (module-global
:data:`BATCH_STATS` by default), published as the ``ana_batch_*``
metric family by :func:`repro.metrics.report.record_batch_stats`.
"""

from __future__ import annotations

from dataclasses import dataclass
from dataclasses import field as dataclasses_field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.cache.model import CacheHierarchy, CachePenaltyModel
from repro.model.task import Task
from repro.model.taskset import TaskSet
from repro.overhead.accounting import per_job_overhead
from repro.overhead.model import OverheadModel

#: Epsilon of the scalar RTA utilization fast path
#: (:meth:`repro.analysis.incremental.CoreAnalysisContext.probe`).
RTA_UTIL_EPS = 1e-9

#: Epsilon of the scalar EDF utilization test
#: (:func:`repro.analysis.edf.edf_schedulable`).
EDF_UTIL_EPS = 1e-12

#: Safety margin for float fast paths that the scalar engines do not
#: have: the hyperbolic product and the whole-set utilization screens
#: only fire when they clear the exact threshold by this much, so
#: float accumulation error (~1e-13 for a dozen terms) can never make
#: a fast path disagree with the exact integer test.
FASTPATH_MARGIN = 1e-9

#: Maximum (rows x checkpoints) the shared EDF demand grid may reach
#: before constrained-deadline rows fall back to the scalar test.
MAX_DEMAND_CELLS = 4_000_000

PLACEMENTS = ("first-fit", "next-fit", "best-fit", "worst-fit")


class PopulationError(ValueError):
    """The task sets cannot be packed into one aligned population."""


class BatchStats:
    """Work counters for the batch kernels (deterministic, ``ana_batch_*``).

    ``lanes`` counts task sets submitted to a batch verdict call;
    ``lanes_fastpath`` the subset decided without a single vectorized
    RTA iteration (whole-set screens plus all-fast-path packing);
    ``vector_iterations`` batched fixed-point update steps (each step
    advances every still-active lane at once — the scalar equivalent is
    one iteration *per probe*); ``probes_rta`` / ``probes_edf``
    per-(lane, core) admission questions answered by the respective
    kernel; ``scalar_fallbacks`` lanes handed back to the scalar
    contexts because the batch layer could not express them.
    """

    __slots__ = (
        "lanes",
        "lanes_fastpath",
        "probes_rta",
        "probes_edf",
        "vector_iterations",
        "scalar_fallbacks",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.lanes = 0
        self.lanes_fastpath = 0
        self.probes_rta = 0
        self.probes_edf = 0
        self.vector_iterations = 0
        self.scalar_fallbacks = 0

    def snapshot(self) -> dict:
        return {
            "lanes": self.lanes,
            "lanes_fastpath": self.lanes_fastpath,
            "probes_rta": self.probes_rta,
            "probes_edf": self.probes_edf,
            "vector_iterations": self.vector_iterations,
            "scalar_fallbacks": self.scalar_fallbacks,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BatchStats({self.snapshot()})"


#: Module-global counters, mirroring :data:`repro.analysis.incremental.STATS`.
BATCH_STATS = BatchStats()


@dataclass(frozen=True)
class TaskSetPopulation:
    """A population of same-shape task sets as aligned (lane, task) arrays.

    Tasks are packed in **global priority order** (rank 0 = highest), so
    a lane's column index is simultaneously its RM priority rank; names
    ride along for the decreasing-utilization placement order's
    tie-break, which the scalar partitioners resolve by task name.
    """

    wcet: np.ndarray  # (lanes, tasks) int64, raw (uninflated) WCETs
    period: np.ndarray  # (lanes, tasks) int64
    deadline: np.ndarray  # (lanes, tasks) int64
    wss: np.ndarray  # (lanes, tasks) int64
    names: Tuple[Tuple[str, ...], ...]
    #: Derived-array cache (inflated costs, utilizations, placement
    #: orders keyed by overhead model) — population data is immutable,
    #: so repeated verdict calls (one per algorithm) share the work.
    _memo: dict = dataclasses_field(
        default_factory=dict, repr=False, compare=False
    )

    @property
    def n_sets(self) -> int:
        return self.wcet.shape[0]

    @property
    def n_tasks(self) -> int:
        return self.wcet.shape[1]

    @classmethod
    def from_arrays(
        cls, wcet, period, deadline, wss, names
    ) -> "TaskSetPopulation":
        return cls(
            wcet=np.ascontiguousarray(wcet, dtype=np.int64),
            period=np.ascontiguousarray(period, dtype=np.int64),
            deadline=np.ascontiguousarray(deadline, dtype=np.int64),
            wss=np.ascontiguousarray(wss, dtype=np.int64),
            names=tuple(tuple(lane) for lane in names),
        )

    @classmethod
    def from_tasksets(
        cls, tasksets: Sequence[TaskSet]
    ) -> "TaskSetPopulation":
        """Pack ``tasksets`` (uniform size, priorities assigned) into a
        population; raises :class:`PopulationError` otherwise."""
        sets = list(tasksets)
        sizes = {len(ts) for ts in sets}
        if len(sizes) > 1:
            raise PopulationError(
                f"task sets have differing sizes {sorted(sizes)}; "
                "a population needs one aligned shape"
            )
        n = sizes.pop() if sizes else 0
        if sets and n == 0:
            raise PopulationError("cannot pack empty task sets")
        lanes = []
        for ts in sets:
            try:
                lanes.append(ts.sorted_by_priority())
            except ValueError as exc:
                raise PopulationError(str(exc)) from None
        shape = (len(sets), n)
        wcet = np.empty(shape, dtype=np.int64)
        period = np.empty(shape, dtype=np.int64)
        deadline = np.empty(shape, dtype=np.int64)
        wss = np.empty(shape, dtype=np.int64)
        names = []
        for row, lane in enumerate(lanes):
            for col, task in enumerate(lane):
                wcet[row, col] = task.wcet
                period[row, col] = task.period
                deadline[row, col] = task.deadline
                wss[row, col] = task.wss
            names.append(tuple(task.name for task in lane))
        return cls(
            wcet=wcet,
            period=period,
            deadline=deadline,
            wss=wss,
            names=tuple(names),
        )

    def tasksets(self) -> List[TaskSet]:
        """Materialize scalar :class:`TaskSet` objects (priority order,
        priorities 0..n-1) — the lane-wise fallback path."""
        out = []
        for row in range(self.n_sets):
            tasks = [
                Task(
                    name=self.names[row][col],
                    wcet=int(self.wcet[row, col]),
                    period=int(self.period[row, col]),
                    deadline=int(self.deadline[row, col]),
                    wss=int(self.wss[row, col]),
                ).with_priority(col)
                for col in range(self.n_tasks)
            ]
            out.append(TaskSet(tasks))
        return out

    def inflated_wcet(self, model: OverheadModel) -> np.ndarray:
        """Per-lane overhead inflation, exactly as
        :func:`repro.overhead.accounting.inflate_taskset` applies it:
        one per-job charge from the lane's largest working set, added to
        every WCET and clamped to the deadline."""
        if self.n_sets == 0 or self.n_tasks == 0:
            return self.wcet.copy()
        lane_wss = self.wss.max(axis=1)
        cache = model.cache
        hierarchy = getattr(cache, "hierarchy", None)
        if type(cache) is CachePenaltyModel and type(
            hierarchy
        ) is CacheHierarchy:
            # Vectorized mirror of ``CachePenaltyModel.preemption_delay``
            # (same ceil-divide line count and half-even rounding —
            # ``np.rint`` matches python's ``round``).  Subclassed cache
            # models keep the dynamic-dispatch loop below.
            base = per_job_overhead(model, 0)
            lines = -(-lane_wss // hierarchy.line_bytes)
            full = np.where(
                (lane_wss <= hierarchy.shared_bytes)
                & (hierarchy.shared_bytes > 0),
                lines * hierarchy.l3_line_ns,
                lines * hierarchy.memory_line_ns,
            )
            delay = np.where(
                lane_wss <= hierarchy.private_bytes,
                np.rint(
                    full * (1.0 - cache.local_survival)
                ).astype(np.int64),
                full,
            )
            charges = base + np.where(lane_wss > 0, delay, 0)
        else:
            charges = np.fromiter(
                (per_job_overhead(model, int(wss)) for wss in lane_wss),
                dtype=np.int64,
                count=self.n_sets,
            )
        return np.minimum(self.wcet + charges[:, None], self.deadline)


def _name_ranks(names) -> np.ndarray:
    """Per-lane ascending-name rank of each column (0 = lexicographically
    smallest).  Numpy ``<U`` comparison is code-point lexicographic with
    null padding, identical to python ``str`` ordering for the tie-break."""
    arr = np.array(names)
    if arr.ndim == 1:  # zero-task lanes collapse the second axis
        arr = arr.reshape(len(names), -1)
    lanes, n = arr.shape
    asc = np.argsort(arr, axis=1, kind="stable")
    rank = np.empty((lanes, n), dtype=np.int64)
    np.put_along_axis(
        rank, asc, np.broadcast_to(np.arange(n), (lanes, n)), axis=1
    )
    return rank


def _placement_order(u: np.ndarray, name_rank: np.ndarray) -> np.ndarray:
    """Decreasing-utilization placement order per lane — the exact
    semantics of ``TaskSet.sorted_by_utilization(descending=True)``:
    python ``sorted`` on ``(utilization, name)`` with ``reverse=True``.
    Implemented as a stable two-pass row-wise sort (descending name,
    then descending utilization): float negation is exact, so the float
    comparisons and the name tie-breaks match the scalar path."""
    sec = np.argsort(-name_rank, axis=1, kind="stable")
    u_sec = np.take_along_axis(u, sec, axis=1)
    prim = np.argsort(-u_sec, axis=1, kind="stable")
    return np.take_along_axis(sec, prim, axis=1)


# Strict-lower-triangle masks, cached by size: LT[p, q] == (q < p).
_LT_CACHE: dict = {}


def _lower_triangle(n: int) -> np.ndarray:
    mask = _LT_CACHE.get(n)
    if mask is None:
        mask = np.tril(np.ones((n, n), dtype=bool), k=-1)
        _LT_CACHE[n] = mask
    return mask


def _fixed_point(
    budget: np.ndarray,
    coef: np.ndarray,
    period: np.ndarray,
    add: np.ndarray,
    cap: np.ndarray,
    start: np.ndarray,
    source_cost: np.ndarray,
    stats: BatchStats,
    decide: bool = False,
) -> np.ndarray:
    """Batched capped least-fixed-point iteration.

    Shapes: ``budget``/``cap``/``start`` are (rows, P) — one *position*
    per wanted fixed point; ``period``/``add``/``source_cost`` are
    (rows, K) — one *source* per interference contributor; ``coef`` is
    (rows, P, K) with ``coef[r, p, q]`` the budget source ``q`` charges
    position ``p`` (0 = no interference).  A position with
    ``cap == 0`` (and ``budget == 0``) is padding and stays pinned at 0.
    ``start`` must hold valid lower bounds of each least fixed point;
    ``source_cost`` must dominate ``coef`` along P (it sizes the float
    fast path's exactness bound).

    The loop is the capped update ``R' = min(f(R), cap)`` with
    ``f(R)_p = budget_p + sum_q floor((R_p + add_q) / T_q) * coef_pq``
    (``add = jitter + period - 1`` turns the floor into the RTA ceil):

    * from any integer start below the least fixed point, iterating the
      monotone ``f`` converges to exactly that least fixed point (the
      iterates stay bounded by it and, being integers, terminate on a
      fixed point, which minimality forces to be the least one) — so
      converged responses are bit-identical to the scalar loop's;
    * if the least fixed point exceeds ``cap - 1`` (a deadline miss),
      the cap is itself a fixed point of the capped update (Knaster-
      Tarski: the capped map is monotone on the finite lattice
      ``[0, cap]`` and has no fixed point below the cap, because that
      would be a fixed point of ``f`` below the least one), so missing
      positions freeze at the cap instead of growing without bound.

    When every intermediate provably stays below 2**52 the loop runs in
    float64 — conversion of int64 values below 2**53 is exact, sums and
    products of such integers stay exact, and the floored quotient is
    correctly rounded because the true ratio is at least ``1/T`` away
    from the nearest wrong integer while the division error is at most
    ``(num/T) * 2**-53 < 1/T`` for ``num < 2**53``.  SIMD float
    arithmetic makes the hot divide several times cheaper than int64.

    Rows whose every position went stable are *final* (each position
    sits on its fixed point or its cap) and are banked out of the
    iteration, so stragglers iterate over ever smaller arrays.

    Inputs may be int64 or float64; float64 inputs must hold exact
    integers below 2**52 (the packing engine keeps its state in float64
    to skip per-call conversions).  Returns the (rows, P) fixed points
    in the dtype the loop ran in — always exact integer values; a
    position missed iff its value equals ``cap`` (i.e. exceeds the
    limit the caller encoded).

    With ``decide=True`` the caller only needs the *verdict* per row
    (does any valid position exceed ``cap - 1``?), not exact fixed
    points, and two sound shortcuts apply:

    * prefix-point prepass — ``f(D) <= D`` (one application at the
      deadline) proves the least fixed point is ``<= D`` (Knaster-
      Tarski: any prefix point bounds the least fixed point), so rows
      whose every valid position passes are final immediately; they
      return their start values, which remain true lower bounds of the
      fixed points and sit below the caps;
    * fail-fast — iterates from below never exceed the least fixed
      point, so the moment a position hits its cap the row's miss is
      confirmed and the row stops iterating; its other positions
      return whatever (lower-bound) iterate they had reached.

    Decide-mode return values therefore answer ``value == cap`` (a
    certain miss at that position) and row-level admission exactly as
    the full iteration would, while the non-capped values are only
    guaranteed to be lower bounds of the true responses.
    """
    is_float = budget.dtype == np.float64
    rows, P = budget.shape
    if rows == 0 or P == 0:
        return np.zeros((rows, P), dtype=budget.dtype)
    r0 = np.minimum(np.maximum(start, budget), cap)
    if coef.shape[2] == 0:
        return r0
    num_max = float(cap.max()) + float(add.max())
    # Bound every accumulator value: budget plus each source's largest
    # possible quotient times its cost (padding sources have cost 0, so
    # their padded periods do not blow the bound up).
    # np.floor(a / b) rather than a // b: float floor-division is a
    # slow two-pass kernel in numpy, and both are exact here.
    row_bound = float(budget.max()) + float(
        ((np.floor(num_max / period) + 1) * source_cost).sum(axis=1).max()
    )
    use_float = num_max < float(1 << 52) and row_bound < float(1 << 52)
    if use_float == is_float:
        r = r0
        budget_w = budget
        coef_w = coef
        cap_w = cap
        period_w = period
        add_w = add
    else:
        # Convert to the loop dtype once (float inputs are exact
        # integers by contract, so int64 round-trips are lossless).
        want = np.float64 if use_float else np.int64
        r = r0.astype(want)
        budget_w = budget.astype(want)
        coef_w = coef.astype(want)
        cap_w = cap.astype(want)
        period_w = period.astype(want)
        add_w = add.astype(want)
    t_q = period_w[:, None, :]
    add_q = add_w[:, None, :]
    if use_float:
        # Utilization-based warm start (a la Sjödin–Hansson): at the
        # fixed point ``R = budget + sum ceil((R+J)/T_q) coef_q``, each
        # ceil term is at least ``R * coef_q / T_q``, so with S the
        # interference utilization, ``R >= budget / (1 - S)``.  Rounding
        # error in the float evaluation is at most ~1e-12 relative (S is
        # capped at 0.999, keeping the denominator away from zero), so
        # shrinking by 1e-9 before flooring keeps it a true lower bound.
        s_util = np.einsum("rpq,rq->rp", coef_w, 1.0 / period_w)
        boost = np.where(
            s_util <= 0.999,
            np.floor(
                budget_w / np.maximum(1.0 - s_util, 1e-3) * (1.0 - 1e-9)
            ),
            0.0,
        )
        np.maximum(r, boost, out=r)
        np.minimum(r, cap_w, out=r)
    out = np.empty((rows, P), dtype=r.dtype)
    idx = None  # None = no row banked yet; else full-array indices of `r`
    # Ping-pong work buffers: `num` holds the (rows, P, K) quotients in
    # place, `acc`/`r` swap roles each iteration — the loop allocates
    # nothing per pass.
    r = np.ascontiguousarray(r)
    num = np.empty(coef_w.shape, dtype=r.dtype)
    acc = np.empty_like(r)

    def _apply(src, dst):
        # One capped update dst = min(f(src), cap), reusing `num`.
        np.add(src[:, :, None], add_q, out=num)
        # float //  is much slower than floor(a/b) in numpy; int64 //
        # is a single fused pass.  Both are exact here.
        if use_float:
            np.divide(num, t_q, out=num)
            np.floor(num, out=num)
        else:
            np.floor_divide(num, t_q, out=num)
        np.einsum("rpq,rpq->rp", num, coef_w, out=dst)
        np.add(dst, budget_w, out=dst)
        np.minimum(dst, cap_w, out=dst)

    if decide:
        # Prefix-point prepass: one capped application at each
        # position's deadline D = cap - 1.  Since cap = D + 1 > D, the
        # cap cannot pull a value above D down to D or below, so
        # ``acc <= D`` holds iff ``f(D) <= D``.  Passing positions are
        # schedulable without iteration; padding positions (cap 0)
        # pass vacuously.
        stats.vector_iterations += 1
        limit = cap_w - 1
        _apply(limit, acc)
        done = ((acc <= limit) | (cap_w == 0)).all(axis=1)
        # A start value pinned at its cap is a certain miss (start
        # never exceeds the least fixed point): decided, no iteration.
        done |= ((r == cap_w) & (cap_w > 0)).any(axis=1)
        if done.any():
            idx = np.arange(rows)
            out[idx[done]] = r[done]
            keep = np.flatnonzero(~done)
            if keep.size == 0:
                return out
            idx = idx[keep]
            r = np.ascontiguousarray(r[keep])
            budget_w = budget_w[keep]
            cap_w = cap_w[keep]
            coef_w = coef_w[keep]
            add_q = add_q[keep]
            t_q = t_q[keep]
            num = np.empty(coef_w.shape, dtype=r.dtype)
            acc = np.empty_like(r)

    real_cap = cap_w > 0 if decide else None
    while True:
        # Two applications per convergence check: the capped iterates
        # are monotone non-decreasing, so ``f(f(r)) == f(r)`` iff both
        # are the fixed point, and applying ``f`` at a fixed point is a
        # no-op — checking half as often trades at most one redundant
        # (idempotent) pass per row for half the reduction dispatches.
        stats.vector_iterations += 2
        _apply(r, acc)
        _apply(acc, r)
        changing = (acc != r).any(axis=1)
        if decide:
            # Fail-fast: iterates from below never exceed the least
            # fixed point, so a position pinned at its cap is a certain
            # miss — the row's verdict is decided and it stops here
            # (its other positions keep their lower-bound iterates).
            changing &= ~((r == cap_w) & real_cap).any(axis=1)
        n_changing = int(np.count_nonzero(changing))
        if n_changing == 0:
            break
        if n_changing * 4 <= r.shape[0] * 3:
            if idx is None:
                idx = np.arange(rows)
            # stable rows are final; changing ones rewritten later
            out[idx] = r
            keep = np.flatnonzero(changing)
            idx = idx[keep]
            r = r[keep]
            budget_w = budget_w[keep]
            cap_w = cap_w[keep]
            coef_w = coef_w[keep]
            add_q = add_q[keep]
            t_q = t_q[keep]
            num = np.empty(coef_w.shape, dtype=r.dtype)
            acc = np.empty_like(r)
            if decide:
                real_cap = cap_w > 0
    if idx is None:
        return r
    out[idx] = r
    return out


def batch_rta_responses(
    wcet,
    period,
    deadline,
    jitter=None,
    stats: Optional[BatchStats] = None,
) -> np.ndarray:
    """Exact response times for whole cores, all lanes at once.

    Inputs are (lanes, positions) arrays in local priority order
    (position 0 = highest); a zero WCET marks an unused (padding)
    position.  Returns int64 responses with ``-1`` where the entry
    misses its deadline and ``0`` on padding positions — every non-
    sentinel value is the identical integer
    :func:`repro.analysis.rta.response_time` computes for that entry.
    """
    stats = stats if stats is not None else BATCH_STATS
    budget = np.ascontiguousarray(wcet, dtype=np.int64)
    if budget.size == 0:
        return np.zeros_like(budget)
    period_arr = np.ascontiguousarray(period, dtype=np.int64)
    limit = np.ascontiguousarray(deadline, dtype=np.int64)
    if jitter is None:
        jitter_arr = None
    else:
        jitter_arr = np.ascontiguousarray(jitter, dtype=np.int64)
    rel = budget > 0
    stats.probes_rta += int(rel.any(axis=1).sum())
    # Padding periods may be 0; substitute 1 (their budget contribution
    # is 0, so the quotient is never read).
    safe_period = np.where(period_arr > 0, period_arr, 1)
    n = budget.shape[1]
    cmask = np.where(rel, budget, 0)
    # Position p is interfered by every live source of strictly higher
    # priority (lower column index).
    coef = cmask[:, None, :] * _lower_triangle(n)[None, :, :]
    coef *= rel[:, :, None]
    add = (
        safe_period - 1
        if jitter_arr is None
        else jitter_arr + safe_period - 1
    )
    r = _fixed_point(
        budget=cmask,
        coef=coef,
        period=safe_period,
        add=add,
        cap=np.where(rel, limit + 1, 0),
        start=cmask,
        source_cost=cmask,
        stats=stats,
    )
    # The loop may run (exactly) in float64; normalize to the int64 API.
    r = r.astype(np.int64, copy=False)
    missed = rel & (r > limit)
    out = np.where(rel, r, 0)
    out[missed] = -1
    return out


def _busy_period_rows(
    cmask: np.ndarray, period: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Synchronous busy-period length per row (masked triples); returns
    ``(length, converged)`` — non-converged rows (effective utilization
    above 1, or runaway growth) must fall back to the scalar test."""
    length = cmask.sum(axis=1)
    active = length > 0
    for _ in range(256):
        if not active.any():
            break
        demand = ((-(-length[:, None] // period)) * cmask).sum(axis=1)
        conv = active & (demand == length)
        length = np.where(active, demand, length)
        active &= ~conv
        active &= length < (1 << 62)
    return length, ~active


def _edf_demand_rows(
    cmask: np.ndarray,
    period: np.ndarray,
    deadline: np.ndarray,
    stats: BatchStats,
) -> np.ndarray:
    """Exact processor-demand verdict for each row's masked triples.

    All rows share one deduplicated checkpoint grid (the union of every
    row's deadline lattice up to its busy-period bound).  The grid being
    a superset of a row's own lattice cannot change the exact verdict:
    a schedulable row satisfies ``dbf(t) <= t`` everywhere, and an
    unschedulable row's violation is already visible at its own lattice
    point at or below the violating instant.  Rows the grid cannot
    cover affordably are answered by the scalar test instead.
    """
    from repro.analysis.edf import edf_schedulable

    rows, n = cmask.shape
    ok = np.ones(rows, dtype=bool)
    limit, converged = _busy_period_rows(cmask, period)

    def scalar_row(row: int) -> bool:
        stats.scalar_fallbacks += 1
        triples = [
            (int(cmask[row, col]), int(period[row, col]),
             int(deadline[row, col]))
            for col in range(n)
            if cmask[row, col] > 0
        ]
        return edf_schedulable(triples)

    points: List[np.ndarray] = []
    grid_rows = []
    per_row_cap = MAX_DEMAND_CELLS // max(1, rows)
    for row in range(rows):
        if not converged[row]:
            ok[row] = scalar_row(row)
            continue
        bound = int(limit[row])
        row_points = 0
        for col in range(n):
            if cmask[row, col] > 0 and deadline[row, col] <= bound:
                row_points += (
                    (bound - int(deadline[row, col]))
                    // int(period[row, col])
                    + 1
                )
        if row_points > per_row_cap:
            ok[row] = scalar_row(row)
            continue
        for col in range(n):
            if cmask[row, col] > 0 and deadline[row, col] <= bound:
                points.append(
                    np.arange(
                        int(deadline[row, col]),
                        bound + 1,
                        int(period[row, col]),
                        dtype=np.int64,
                    )
                )
        grid_rows.append(row)
    if not grid_rows:
        return ok
    grid = np.unique(np.concatenate(points)) if points else np.empty(
        0, dtype=np.int64
    )
    if grid.size == 0:
        return ok
    if grid.size * len(grid_rows) > MAX_DEMAND_CELLS:
        for row in grid_rows:
            ok[row] = scalar_row(row)
        return ok
    sel = np.asarray(grid_rows, dtype=np.int64)
    dbf = np.zeros((sel.size, grid.size), dtype=np.int64)
    for col in range(n):
        c = cmask[sel, col][:, None]
        d = deadline[sel, col][:, None]
        t = period[sel, col][:, None]
        dbf += np.where(
            (c > 0) & (grid[None, :] >= d),
            ((grid[None, :] - d) // np.where(t > 0, t, 1) + 1) * c,
            0,
        )
    in_range = grid[None, :] <= limit[sel][:, None]
    violated = ((dbf > grid[None, :]) & in_range).any(axis=1)
    ok[sel] = ~violated
    return ok




_PLACEMENT_CODE = {name: code for code, name in enumerate(PLACEMENTS)}
_FIRST_FIT, _NEXT_FIT, _BEST_FIT, _WORST_FIT = (
    _PLACEMENT_CODE["first-fit"],
    _PLACEMENT_CODE["next-fit"],
    _PLACEMENT_CODE["best-fit"],
    _PLACEMENT_CODE["worst-fit"],
)


def batch_partition_accept_multi(
    population: TaskSetPopulation,
    n_cores: int,
    model: OverheadModel = OverheadModel.zero(),
    configs: Sequence[Tuple[str, str]] = (("first-fit", "rta"),),
    stats: Optional[BatchStats] = None,
) -> np.ndarray:
    """Accept/reject matrix — one row per ``(placement, admission)``
    config, one column per lane — of the decreasing-utilization bin-
    packing heuristics over every lane of ``population`` at once.

    All configs advance through the packing steps together: the
    (config, lane) pairs are flattened into one row axis, so every
    step issues a *single* batched RTA fixed-point call covering every
    algorithm's probes at once (the per-call fixed cost of the
    vectorized iteration is paid once per step, not once per step per
    algorithm).  Placement and admission semantics are applied per row
    group.  Verdicts are bit-identical to running the scalar
    ``partition_taskset`` pipeline — including WCET inflation, the
    decreasing-``(utilization, name)`` placement order, the commit-
    order float utilization accumulation, and every admission epsilon —
    on each lane individually.
    """
    configs = [tuple(cfg) for cfg in configs]
    for placement, admission in configs:
        if placement not in PLACEMENTS:
            raise ValueError(
                f"unknown placement {placement!r}; choose from {PLACEMENTS}"
            )
        if admission not in ("rta", "edf"):
            raise ValueError(f"unknown admission {admission!r}")
    stats = stats if stats is not None else BATCH_STATS
    n_cfg = len(configs)
    lanes = population.n_sets
    verdict = np.zeros((n_cfg, lanes), dtype=bool)
    if lanes == 0 or n_cfg == 0:
        return verdict
    n = population.n_tasks
    period = population.period
    deadline = population.deadline
    memo = population._memo
    static = memo.get("static")
    if static is None:
        # The batch kernel analyzes each core in column (global-priority)
        # order; the scalar analyzer (`order_entries`) sorts by *period*
        # (period ties resolved by priority, i.e. column order).  The two
        # agree exactly when each lane's priority order is period-
        # monotone — a rate-monotonic assignment — which is also what the
        # hyperbolic fast path's soundness argument needs.  Anything
        # else goes scalar.
        rm_ok = n <= 1 or bool(np.all(np.diff(period, axis=1) >= 0))
        # The packing engine keeps timing state in float64 (exact for
        # integers below 2**53; the fixed-point loop proves its own
        # tighter bound).  Populations beyond that range go scalar.
        in_range = not period.size or (
            int(period.max()) < (1 << 52)
            and int(deadline.max()) < (1 << 52)
        )
        static = (
            rm_ok,
            in_range,
            np.all(deadline == period, axis=1),
            _name_ranks(population.names) if rm_ok else None,
            period.astype(np.float64) if rm_ok and in_range else None,
            deadline.astype(np.float64) if rm_ok and in_range else None,
        )
        memo["static"] = static
    rm_ok, in_range, implicit, name_rank, period_f, deadline_f = static
    if not rm_ok:
        raise PopulationError(
            "lane priority order is not rate-monotonic (periods not "
            "non-decreasing with priority rank); batch analysis order "
            "would diverge from the scalar per-core order"
        )
    if not in_range:
        raise PopulationError(
            "timing values at or above 2**52 ns exceed the exact range "
            "of the float64 packing state"
        )
    stats.lanes += n_cfg * lanes
    derived = memo.get("model")
    if derived is None or derived[0] is not model:
        cost = population.inflated_wcet(model)
        if cost.size and int(cost.max()) >= (1 << 52):
            raise PopulationError(
                "inflated budgets at or above 2**52 ns exceed the exact "
                "range of the float64 packing state"
            )
        u = cost / period
        derived = (
            model,
            cost.astype(np.float64),
            u,
            _placement_order(u, name_rank),
            u.sum(axis=1),
            np.prod(1.0 + u, axis=1),
        )
        memo["model"] = derived
    _, cost_f, u, order_full, total, hyprod = derived

    p_code_cfg = np.array(
        [_PLACEMENT_CODE[placement] for placement, _ in configs]
    )
    is_rta_cfg = np.array([admission == "rta" for _, admission in configs])
    eps_cfg = np.where(is_rta_cfg, RTA_UTIL_EPS, EDF_UTIL_EPS)

    # ---- whole-set screens (sound: verdict provably equals scalar) ----
    decided = np.zeros((n_cfg, lanes), dtype=bool)
    if n <= n_cores:
        # Some core always admits each task alone (WCET <= deadline and a
        # single task's utilization cannot trip the fast path), so every
        # heuristic accepts.
        verdict[:] = True
        decided[:] = True
    else:
        # Reject: any accepted lane has per-core commit-order sums each
        # <= 1 + eps, so its pairwise float total cannot exceed
        # m * (1 + eps) by more than accumulated rounding noise.
        decided |= (
            total[None, :]
            > n_cores * (1.0 + eps_cfg[:, None]) + FASTPATH_MARGIN
        )  # verdict stays False
        # Accept (rta): a float hyperbolic product <= 2 - margin means
        # the real product is <= 2, so the *whole set* is RM-schedulable
        # on one core — every probe's subset then passes both the
        # utilization fast path and exact RTA, and any placement finds a
        # home for every task.
        # Accept (edf): real total <= 1 keeps every partial float sum
        # under 1 + eps, so every EDF utilization probe admits.
        whole = implicit[None, :] & np.where(
            is_rta_cfg[:, None],
            hyprod[None, :] <= 2.0 - FASTPATH_MARGIN,
            total[None, :] <= 1.0 - FASTPATH_MARGIN,
        )
        verdict |= whole & ~decided
        decided |= whole
    cfg_idx, lane_idx = np.nonzero(~decided)
    stats.lanes_fastpath += int(decided.sum())
    if cfg_idx.size == 0:
        return verdict

    # ---- struct-of-arrays packing state for the undecided rows -------
    # Every state array is kept *compacted*: the hot per-step
    # expressions run over plain contiguous arrays with no `[alive]`
    # gathers.  Rows whose lane dies are parked as zombies (infinite
    # core utilization fails every screen, so they cost one row of
    # elementwise work and never probe) until enough accumulate to pay
    # for physically compressing all the state; ``orig`` maps compact
    # rows back to original (config, lane) rows.
    n_rows = cfg_idx.size
    orig = np.arange(n_rows)
    cost_t = cost_f[lane_idx]
    period_t = period_f[lane_idx]
    deadline_t = deadline_f[lane_idx]
    u_t = u[lane_idx]
    implicit_t = implicit[lane_idx]
    order = order_full[lane_idx]
    is_rta_t = is_rta_cfg[cfg_idx]
    eps_t = eps_cfg[cfg_idx]
    n_cfgs = p_code_cfg.size

    # Compact rows are config-major: np.nonzero emits row-major order
    # and every compression keeps ascending order, so each config's
    # rows stay one contiguous slice.  Config-specific work (next-fit
    # pointers, placement preference, selection, EDF demand) then runs
    # on zero-copy slice views instead of boolean-mask gathers.
    def _config_groups():
        cfg_t = cfg_idx[orig]
        bounds = np.searchsorted(cfg_t, np.arange(n_cfgs + 1))
        groups = []
        for c in range(n_cfgs):
            s, e = int(bounds[c]), int(bounds[c + 1])
            if s < e:
                groups.append(
                    (s, e, int(p_code_cfg[c]), bool(is_rta_cfg[c]))
                )
        return groups

    groups = _config_groups()
    # All packing state is float64 holding exact integer ns (guarded
    # above): it feeds the float fixed-point loop without conversions.
    member_cost = np.zeros((n_rows, n_cores, n), dtype=np.float64)
    core_util = np.zeros((n_rows, n_cores), dtype=np.float64)
    hyper = np.ones((n_rows, n_cores), dtype=np.float64)
    response_cache = np.zeros((n_rows, n_cores, n), dtype=np.float64)
    pointer = np.zeros(n_rows, dtype=np.int64)
    alive = np.ones(n_rows, dtype=bool)  # over compact rows
    alive_full = np.ones(n_rows, dtype=bool)  # over original rows
    used_vector = np.zeros(n_rows, dtype=bool)  # over original rows
    core_index = np.arange(n_cores)
    n_zombies = 0

    for step in range(n):
        rows = orig.size
        if rows == n_zombies:
            break
        pos = order[:, step]
        cand_u = u_t[np.arange(rows), pos]
        util_ok = core_util + cand_u[:, None] <= 1.0 + eps_t[:, None]
        for s, e, pc, _rta in groups:
            if pc == _NEXT_FIT:
                # next-fit never returns to cores left of its pointer
                util_ok[s:e] &= (
                    core_index[None, :] >= pointer[s:e, None]
                )
        rta_row = is_rta_t
        hyper_ok = (
            util_ok
            & rta_row[:, None]
            & implicit_t[:, None]
            & (hyper * (1.0 + cand_u[:, None]) <= 2.0 - FASTPATH_MARGIN)
        )
        # EDF rows admit on the utilization screen alone (implicit
        # deadlines); constrained rows are corrected by the exact
        # demand test below.
        admit = hyper_ok | (util_ok & ~rta_row[:, None])
        stats.probes_edf += (
            int(np.count_nonzero(~rta_row & alive)) * n_cores
        )

        probe_row = np.full((rows, n_cores), -1, dtype=np.int64)
        probe_r = None
        probe_rel = None
        need = util_ok & ~hyper_ok & rta_row[:, None]
        if need.any():
            # Preference-order cutoff: the step commits the *first*
            # admitting core in placement-preference order (index order
            # for FF/NF, utilization order for BF/WF — exactly how the
            # selection below tie-breaks), and a hyper-admitted core
            # admits without probing.  Probes at preference ranks beyond
            # a row's first hyper-admitted core can never change the
            # selection or the row's survival, so drop them.
            pref = np.tile(core_index, (rows, 1))
            for s, e, pc, _rta in groups:
                if pc == _BEST_FIT or pc == _WORST_FIT:
                    key = (
                        -core_util[s:e]
                        if pc == _BEST_FIT
                        else core_util[s:e]
                    )
                    orderb = np.argsort(key, kind="stable", axis=1)
                    prefb = np.empty_like(orderb)
                    prefb[
                        np.arange(orderb.shape[0])[:, None], orderb
                    ] = core_index
                    pref[s:e] = prefb
            cutoff = np.where(hyper_ok, pref, n_cores).min(axis=1)
            need &= pref < cutoff[:, None]
        if need.any():

            def run_probes(pr_row, pr_core):
                """Batched RTA probe of the (row, core) pairs; returns
                the admit vector and the per-pair response/relevance
                matrices in column space."""
                sel = pr_row
                count = sel.size
                stats.probes_rta += count
                used_vector[orig[sel]] = True
                p_ins = pos[pr_row]
                cmask = member_cost[sel, pr_core]  # fancy index: a copy
                rows_i = np.arange(count)
                cmask[rows_i, p_ins] = cost_t[sel, p_ins]
                member = cmask > 0
                counts = member.sum(axis=1)
                admit_probe = np.empty(count, dtype=bool)
                probe_r = np.zeros((count, n + 1), dtype=np.float64)
                probe_rel = np.zeros((count, n + 1), dtype=bool)

                # Compact each probe row twice.  Sources (the K axis): every
                # member column including the candidate, left-justified in
                # ascending column order — compact index order is exactly
                # per-core priority order.  Positions (the P axis): only the
                # candidate and its lower-priority members need fixed points
                # (higher-priority responses are unchanged by the insertion),
                # so with K = max members and P = max affected positions the
                # fixed-point tensor shrinks from (rows, n, n) to
                # (rows, P, K).  Left-justification is a cumsum-ranked
                # scatter (cheaper than an argsort).
                def probe_bucket(bsel: np.ndarray) -> None:
                    cm = cmask[bsel]
                    mem = member[bsel]
                    cnt = counts[bsel]
                    K = int(cnt.max())
                    bcount = bsel.size
                    rank = np.cumsum(mem, axis=1) - 1
                    rr, cc = np.nonzero(mem)
                    just = np.zeros((bcount, K), dtype=np.int64)
                    just[rr, rank[rr, cc]] = cc
                    valid = np.arange(K)[None, :] < cnt[:, None]
                    bcol = np.arange(bcount)[:, None]
                    lane = sel[bsel][:, None]
                    cost_k = np.where(valid, cm[bcol, just], 0.0)
                    period_k = np.where(valid, period_t[lane, just], 1.0)
                    prefix_k = np.cumsum(cost_k, axis=1)
                    # Relevant positions (the candidate and its lower-
                    # priority members) are a contiguous *suffix* of the
                    # compact source order — `just` ascends within each
                    # row's valid prefix — so suffix arithmetic replaces
                    # a second cumsum/nonzero compaction.  Padding
                    # positions alias the last valid source (their cap
                    # of 0 masks them everywhere downstream).
                    rel_k = valid & (just >= p_ins[bsel][:, None])
                    rcounts = rel_k.sum(axis=1)
                    P = int(rcounts.max())
                    first = cnt - rcounts  # compact index of position 0
                    rjust = np.minimum(
                        first[:, None] + np.arange(P), cnt[:, None] - 1
                    )
                    validp = np.arange(P)[None, :] < rcounts[:, None]
                    cols_p = just[bcol, rjust]  # original column per position
                    budget_p = np.where(validp, cm[bcol, cols_p], 0.0)
                    dead_p = deadline_t[lane, cols_p]
                    # A response is at least the budget plus one job of
                    # every higher-priority member (each ceil term is >= 1),
                    # so the inclusive member-cost prefix sum is a valid
                    # warm-start lower bound alongside the cached committed
                    # responses (a single three-axis gather).
                    cache_p = response_cache[
                        sel[bsel][:, None], pr_core[bsel][:, None], cols_p
                    ]
                    start_p = np.maximum(cache_p, prefix_k[bcol, rjust])
                    # Position at compact source index rjust[p] is
                    # interfered by exactly the sources before it in compact
                    # (priority) order.
                    coef = cost_k[:, None, :] * (
                        np.arange(K)[None, None, :] < rjust[:, :, None]
                    )
                    r_p = _fixed_point(
                        budget=budget_p,
                        coef=coef,
                        period=period_k,
                        add=period_k - 1.0,
                        cap=np.where(validp, dead_p + 1.0, 0.0),
                        start=start_p,
                        source_cost=cost_k,
                        stats=stats,
                        # Probes only need the admit verdict; committed
                        # cache entries stay lower bounds either way.
                        decide=True,
                    )
                    failed = (validp & (r_p > dead_p)).any(axis=1)
                    admit_probe[bsel] = ~failed
                    # Scatter compact responses back to column space for the
                    # commit-phase response-cache update (padding positions
                    # all alias a sentinel column that is sliced off).
                    cols_safe = np.where(validp, cols_p, n)
                    probe_r[bsel[:, None], cols_safe] = r_p
                    probe_rel[bsel[:, None], cols_safe] = validp

                # Bucket probe rows by member count so sparsely filled cores
                # do not pay the padded tensor width of the fullest core in
                # the step (the K axis is a per-bucket maximum).
                k_max = int(counts.max())
                if count > 1024 and k_max > 4:
                    split = (k_max + 1) // 2
                    small = counts <= split
                    for bucket in (np.flatnonzero(small),
                                   np.flatnonzero(~small)):
                        if bucket.size:
                            probe_bucket(bucket)
                else:
                    probe_bucket(rows_i)
                return (
                    admit_probe,
                    probe_r[:, :n],
                    probe_rel[:, :n],
                )

            # Two-wave probing, mirroring the scalar early-exit: wave 1
            # probes only each row's first needing core in preference
            # order — if it admits it is the selection (every lower-
            # preference core already failed the screens), so the row's
            # remaining probes are unnecessary.  Only wave-1 failures
            # probe their remaining needing cores.
            need_pref = np.where(need, pref, n_cores)
            first_core = np.argmin(need_pref, axis=1)
            rows1 = np.flatnonzero(need.any(axis=1))
            core1 = first_core[rows1]
            pieces = [(rows1, core1) + run_probes(rows1, core1)]
            failed1 = rows1[~pieces[0][2]]
            if failed1.size:
                need2 = need[failed1]
                need2[np.arange(failed1.size), first_core[failed1]] = False
                s_row, s_core = np.nonzero(need2)
                if s_row.size:
                    rows2 = failed1[s_row]
                    pieces.append(
                        (rows2, s_core) + run_probes(rows2, s_core)
                    )
            if len(pieces) == 1:
                a_row, a_core, admit_probe, probe_r, probe_rel = pieces[0]
            else:
                a_row = np.concatenate([p[0] for p in pieces])
                a_core = np.concatenate([p[1] for p in pieces])
                admit_probe = np.concatenate([p[2] for p in pieces])
                probe_r = np.vstack([p[3] for p in pieces])
                probe_rel = np.vstack([p[4] for p in pieces])
            admit[a_row, a_core] = admit_probe
            probe_row[a_row, a_core] = np.arange(a_row.size)

        for s, e, pc, rta in groups:
            if rta:
                continue
            con = ~implicit_t[s:e]
            if not con.any():
                continue
            er, ec = np.nonzero(util_ok[s:e] & con[:, None])
            if er.size == 0:
                continue
            sel = er + s
            used_vector[orig[sel]] = True
            cmask = member_cost[sel, ec]  # fancy index: a copy
            rows_i = np.arange(sel.size)
            cmask[rows_i, pos[sel]] = cost_t[sel, pos[sel]]
            # The demand test mixes its own int64 grids in; hand it
            # int64 views (the float state holds exact integers).
            admit[sel, ec] = _edf_demand_rows(
                cmask.astype(np.int64),
                period_t[sel].astype(np.int64),
                deadline_t[sel].astype(np.int64),
                stats,
            )

        # ---- placement selection, per placement group ----------------
        chosen = np.zeros(rows, dtype=np.int64)
        for s, e, pc, _rta in groups:
            if pc == _FIRST_FIT or pc == _NEXT_FIT:
                chosen[s:e] = np.argmax(admit[s:e], axis=1)
            elif pc == _BEST_FIT:
                # max over (utilization, -core): argmax takes the first
                # (lowest-index) maximum, matching the scalar tie-break.
                chosen[s:e] = np.argmax(
                    np.where(admit[s:e], core_util[s:e], -np.inf),
                    axis=1,
                )
            else:
                # min over (utilization, core)
                chosen[s:e] = np.argmin(
                    np.where(admit[s:e], core_util[s:e], np.inf),
                    axis=1,
                )

        any_admit = admit.any(axis=1)
        dead_now = alive & ~any_admit
        ok_rows = np.flatnonzero(any_admit)
        if ok_rows.size:
            core_ok = chosen[ok_rows]
            pos_ok = pos[ok_rows]
            u_ok = cand_u[ok_rows]
            member_cost[ok_rows, core_ok, pos_ok] = cost_t[
                ok_rows, pos_ok
            ]
            core_util[ok_rows, core_ok] += u_ok
            hyper[ok_rows, core_ok] *= 1.0 + u_ok  # unread for EDF rows
            if probe_r is not None:
                src = probe_row[ok_rows, core_ok]
                have = np.flatnonzero(src >= 0)
                if have.size:
                    src_h = src[have]
                    sel_h = ok_rows[have]
                    core_h = core_ok[have]
                    cached = response_cache[sel_h, core_h]
                    response_cache[sel_h, core_h] = np.where(
                        probe_rel[src_h], probe_r[src_h], cached
                    )
            pointer[ok_rows] = core_ok  # unread for non-next-fit rows
        if dead_now.any():
            alive &= any_admit
            alive_full[orig[dead_now]] = False
            # Zombie parking: an infinite utilization fails the
            # capacity screen on every core, so the row never admits,
            # probes, or commits again.
            core_util[dead_now] = np.inf
            n_zombies = rows - int(np.count_nonzero(alive))
            if n_zombies * 4 >= rows:
                keep = np.flatnonzero(alive)
                orig = orig[keep]
                cost_t = cost_t[keep]
                period_t = period_t[keep]
                deadline_t = deadline_t[keep]
                u_t = u_t[keep]
                implicit_t = implicit_t[keep]
                order = order[keep]
                is_rta_t = is_rta_t[keep]
                eps_t = eps_t[keep]
                member_cost = member_cost[keep]
                core_util = core_util[keep]
                hyper = hyper[keep]
                response_cache = response_cache[keep]
                pointer = pointer[keep]
                alive = np.ones(keep.size, dtype=bool)
                n_zombies = 0
                groups = _config_groups()

    verdict[cfg_idx[alive_full], lane_idx[alive_full]] = True
    stats.lanes_fastpath += int((~used_vector).sum())
    return verdict


def batch_partition_accept(
    population: TaskSetPopulation,
    n_cores: int,
    model: OverheadModel = OverheadModel.zero(),
    placement: str = "first-fit",
    admission: str = "rta",
    stats: Optional[BatchStats] = None,
) -> np.ndarray:
    """Accept/reject vector of the decreasing-utilization bin-packing
    heuristic over every lane of ``population`` at once.

    ``placement`` is one of :data:`PLACEMENTS`; ``admission`` is
    ``"rta"`` (exact per-core response-time analysis, the FFD/WFD/BFD/
    NFD semantics) or ``"edf"`` (exact processor-demand admission, the
    P-EDF semantics).  One-config convenience wrapper around
    :func:`batch_partition_accept_multi` (which answers several
    algorithms over the same population in one packing pass).
    """
    return batch_partition_accept_multi(
        population,
        n_cores,
        model=model,
        configs=[(placement, admission)],
        stats=stats,
    )[0]
