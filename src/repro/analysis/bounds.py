"""Classic utilization-based schedulability bounds for rate-monotonic
scheduling.

These are the polynomial-time tests used by the SPA1/SPA2 semi-partitioned
algorithms (Guan et al., RTAS 2010 — the paper's reference [4]) and by the
utilization-bound baselines:

* **Liu & Layland (1973)**: a set of ``n`` implicit-deadline tasks is RM
  schedulable on one processor if ``U <= n (2^{1/n} - 1)``; the bound tends
  to ``ln 2 ~= 0.693`` as ``n`` grows.
* **Hyperbolic bound (Bini & Buttazzo, 2003)**: schedulable if
  ``prod (u_i + 1) <= 2`` — strictly dominates Liu & Layland.
* **SPA light-task threshold**: SPA1 achieves the Liu & Layland bound for
  task sets where every task satisfies ``u <= Theta / (1 + Theta)`` with
  ``Theta = Theta(n)``; heavier tasks need SPA2's pre-assignment.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence


def liu_layland_bound(n: int) -> float:
    """``Theta(n) = n (2^{1/n} - 1)``, the RM utilization bound for n tasks.

    >>> round(liu_layland_bound(1), 6)
    1.0
    >>> round(liu_layland_bound(2), 6)
    0.828427
    """
    if n <= 0:
        raise ValueError("n must be positive")
    return n * (2.0 ** (1.0 / n) - 1.0)


def liu_layland_schedulable(utilizations: Sequence[float]) -> bool:
    """Sufficient RM test: total utilization within Theta(n)."""
    n = len(utilizations)
    if n == 0:
        return True
    return sum(utilizations) <= liu_layland_bound(n) + 1e-12


def hyperbolic_schedulable(utilizations: Iterable[float]) -> bool:
    """Sufficient RM test: ``prod (u_i + 1) <= 2`` (Bini & Buttazzo).

    >>> hyperbolic_schedulable([0.5, 0.3])
    True
    >>> hyperbolic_schedulable([0.9, 0.9])
    False
    """
    product = 1.0
    for u in utilizations:
        product *= u + 1.0
        if product > 2.0 + 1e-12:
            return False
    return True


def spa_light_threshold(n: int) -> float:
    """Maximum 'light task' utilization for SPA1: Theta(n)/(1 + Theta(n)).

    Tasks above this threshold are *heavy*; SPA1's utilization-bound proof
    requires all tasks light, SPA2 pre-assigns heavy tasks to avoid
    splitting them.
    """
    theta = liu_layland_bound(n)
    return theta / (1.0 + theta)


def worst_case_partitioned_utilization(m: int) -> float:
    """The folk bound the paper's introduction cites: in the worst case only
    about half the platform can be used by pure partitioning.

    With ``m`` processors and tasks of utilization ``0.5 + eps``, only one
    task fits per processor, so the achievable worst-case utilization is
    ``(m + 1) / 2`` task-loads, i.e. a ratio tending to 1/2.
    """
    if m <= 0:
        raise ValueError("m must be positive")
    return (m + 1) / (2.0 * m)
