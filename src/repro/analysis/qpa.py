"""QPA — Quick Processor-demand Analysis (Zhang & Burns, 2009).

A faster *exact* uniprocessor EDF test for constrained-deadline sporadic
tasks, equivalent to enumerating every deadline with the demand-bound
function but typically checking only a handful of points:

1. start at the largest absolute deadline below the busy-period bound
   ``L``;
2. iterate ``t <- dbf(t)`` when ``dbf(t) < t``, or ``t <- max deadline
   strictly below t`` when ``dbf(t) == t``;
3. stop: schedulable when ``t`` drops below the smallest deadline
   (equivalently ``dbf(t) <= d_min``), unschedulable the moment
   ``dbf(t) > t``.

The intuition: the sequence of candidate instants decreases strictly and
jumps over regions that cannot contain a violation.

Used both as a faster engine and as a cross-check: the property tests
assert QPA and the enumeration test of :mod:`repro.analysis.edf` return
identical verdicts on random inputs.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from repro.analysis.edf import (
    _as_triples,
    demand_bound,
    edf_test_limit,
)

DemandTask = Tuple[int, int, int]


def _max_deadline_below(triples: List[DemandTask], t: int) -> Optional[int]:
    """Largest absolute deadline strictly below ``t`` across all tasks."""
    best: Optional[int] = None
    for _c, period, deadline in triples:
        if deadline >= t:
            candidate = None
        else:
            # Largest deadline + k*period strictly below t.
            k = (t - 1 - deadline) // period
            candidate = deadline + k * period
        if candidate is not None and (best is None or candidate > best):
            best = candidate
    return best


def qpa_schedulable(tasks: Iterable) -> bool:
    """Exact EDF test via QPA.

    Accepts ``Task`` objects or ``(wcet, period, deadline)`` triples.

    >>> qpa_schedulable([(5, 10, 10), (5, 10, 10)])
    True
    >>> qpa_schedulable([(3, 10, 5), (3, 10, 5)])
    False
    """
    triples = _as_triples(tasks)
    if not triples:
        return True
    utilization = sum(c / t for c, t, _d in triples)
    if utilization > 1.0 + 1e-12:
        return False
    if all(d == t for _c, t, d in triples):
        return True
    limit = edf_test_limit(triples)
    d_min = min(d for _c, _t, d in triples)
    # Start from the largest deadline <= limit.
    t = _max_deadline_below(triples, limit + 1)
    if t is None:
        return True
    while t is not None and t > d_min:
        demand = demand_bound(triples, t)
        if demand > t:
            return False
        if demand < t:
            t = demand
            # t may now fall between deadlines; snap down to a deadline.
            t = _max_deadline_below(triples, t + 1)
        else:  # demand == t
            t = _max_deadline_below(triples, t)
    if t is None:
        return True
    return demand_bound(triples, t) <= t
