"""Exact schedulability oracle by exhaustive simulation.

For *synchronous periodic* task sets with constrained deadlines under
preemptive fixed-priority uniprocessor scheduling, the critical instant
theorem (Liu & Layland) makes the synchronous release the worst case, and
simulating one worst-case response window per task decides schedulability
exactly.  This oracle cross-checks the analytical RTA in the property
tests: *the two must agree on every input*.

The oracle is deliberately independent of the kernel simulator (a simple
time-demand sweep over the deadlines of the first job of each task), so a
bug would have to appear in two unrelated implementations to slip through.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

# (wcet, period, deadline) with index position = priority (0 highest).
FpTask = Tuple[int, int, int]


def first_job_response(
    tasks: Sequence[FpTask], index: int, horizon: int
) -> int:
    """Finish time of task ``index``'s first job under synchronous release.

    Sweeps completed higher-priority demand: the first job of task ``i``
    finishes at the earliest ``t`` with
    ``t = C_i + sum_{j < i} ceil(t / T_j) C_j`` — identical in *meaning* to
    RTA but computed by forward demand sweep rather than fixed-point
    iteration on the response time.

    Returns a value > horizon if it does not finish by ``horizon``.
    """
    wcet = tasks[index][0]
    t = wcet
    while t <= horizon:
        demand = wcet
        for j in range(index):
            c, period, _d = tasks[j]
            demand += -(-t // period) * c
        if demand == t:
            return t
        t = demand
    return horizon + 1


def fp_schedulable_oracle(tasks: Sequence[FpTask]) -> bool:
    """Exact synchronous-periodic FP schedulability (constrained deadlines).

    >>> fp_schedulable_oracle([(4, 8, 8), (4, 16, 16), (8, 32, 32)])
    True
    >>> fp_schedulable_oracle([(5, 8, 8), (7, 16, 16)])
    False
    """
    for index, (_c, _t, deadline) in enumerate(tasks):
        if first_job_response(tasks, index, deadline) > deadline:
            return False
    return True


def fp_response_times_oracle(tasks: Sequence[FpTask]) -> List[int]:
    """First-job finish times (== worst-case responses when schedulable)."""
    responses = []
    for index, (_c, _t, deadline) in enumerate(tasks):
        responses.append(first_job_response(tasks, index, deadline))
    return responses
