"""Incremental response-time analysis for the partitioners.

The partitioning algorithms (`repro.semipart`, `repro.partition`) are
probe-heavy: one acceptance sweep runs thousands of *"would this core
still be schedulable with this candidate added?"* questions, and the
from-scratch answer — re-sort the core, re-run the Joseph & Pandya fixed
point for every resident entry — repeats almost all of its work between
consecutive probes.  This module factors the per-core analysis state into
a :class:`CoreAnalysisContext` that makes each probe pay only for what
the candidate can actually change:

* **entries above the candidate keep their response times.**  RTA only
  ever looks *upward* (an entry's response depends on the entries at
  higher local priority), so inserting a candidate leaves every
  higher-priority fixed point untouched — the context reuses the
  memoized responses verbatim instead of recomputing them;
* **entries below the candidate warm-start from their cached response.**
  The fixed point ``R = C + sum ceil((R + J_j)/T_j) * C_j`` is monotone
  non-decreasing in ``R`` and in the interference set.  Its classic
  iteration converges to the *least* fixed point from any starting value
  that is a valid lower bound of it: for ``r0 <= R*`` monotonicity gives
  ``f(r0) <= f(R*) = R*`` and (because every fixed point is ``>= C`` and
  ``R*`` is the least one) ``f(r0) >= r0``, so the iterates climb to
  exactly ``R*``.  A response cached *before* the candidate arrived is a
  lower bound of the response *with* the candidate's interference added,
  hence a correct warm start — the iteration lands on the identical
  fixed point, usually in one or two steps instead of dozens;
* **budget binary searches live inside the context.**
  :meth:`~CoreAnalysisContext.probe_budget` evaluates each candidate
  budget at most once (the from-scratch helpers used to probe the lower
  bound twice) and warm-starts each probe from the responses of the last
  *feasible* (hence smaller) budget — valid because shrinking a body's
  budget by ``d`` shrinks its response by at least ``d`` and shrinks
  everyone else's interference, so the smaller budget's responses lower-
  bound the larger budget's.

:class:`ScratchRtaContext` implements the same API with the original
from-scratch semantics (full re-sort, cold fixed points, and per-entry
interferer-list rebuilds per probe) and is the reference the
differential suite compares against;
``repro.analysis.rta`` itself stays untouched as the independent
per-entry oracle.  :class:`EdfCoreContext` / :class:`EdfScratchContext`
are the demand-bound (C=D / partitioned-EDF) counterparts: the exact
processor-demand test does not decompose per entry, so the incremental
variant caches the admission triples and the candidate-side ``C <= D``
pre-check rather than fixed points.

Every context counts its work in an :class:`AnalysisStats` (default: the
module-global :data:`STATS`), whose counters publish to a
:class:`~repro.metrics.registry.MetricsRegistry` as the deterministic
``ana_*`` family via :func:`repro.metrics.report.record_analysis_stats`.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Callable, List, Optional, Sequence, Tuple

from repro.analysis.edf import edf_schedulable
from repro.analysis.rta import _entry_sort_key, order_entries
from repro.model.assignment import Entry


class AnalysisStats:
    """Work counters for the analysis engines (deterministic, ``ana_*``).

    ``fixpoint_iterations`` counts inner RTA fixed-point steps — the
    quantity the incremental engine exists to shrink; ``probes`` counts
    candidate feasibility questions, ``budget_searches`` completed
    binary searches, ``edf_tests`` full processor-demand evaluations.
    """

    __slots__ = ("fixpoint_iterations", "probes", "budget_searches", "edf_tests")

    def __init__(self) -> None:
        self.fixpoint_iterations = 0
        self.probes = 0
        self.budget_searches = 0
        self.edf_tests = 0

    def reset(self) -> None:
        self.fixpoint_iterations = 0
        self.probes = 0
        self.budget_searches = 0
        self.edf_tests = 0

    def snapshot(self) -> dict:
        return {
            "fixpoint_iterations": self.fixpoint_iterations,
            "probes": self.probes,
            "budget_searches": self.budget_searches,
            "edf_tests": self.edf_tests,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AnalysisStats({self.snapshot()})"


#: Module-global counters: every context records here unless given its
#: own instance, so harnesses can ``STATS.reset()`` / ``.snapshot()``
#: around a run without threading a registry through the partitioners.
STATS = AnalysisStats()


def fixed_point(
    budget: int,
    higher: Sequence[Tuple[int, int, int]],
    count: int,
    extra: Optional[Tuple[int, int, int]],
    limit: int,
    start: Optional[int],
    stats: AnalysisStats,
) -> Optional[int]:
    """Least fixed point of ``R = budget + interference(R)``, warm-started.

    ``higher[:count]`` plus the optional ``extra`` triple are the
    interfering ``(wcet, period, jitter)`` entries (``extra`` avoids
    materializing ``higher + [candidate]`` per probe).  ``start`` must be
    a valid lower bound of the least fixed point (see module docstring);
    ``None`` means the cold start ``R = budget``.  Returns the exact
    response, or ``None`` once the iterate exceeds ``limit`` — identical
    to :func:`repro.analysis.rta.response_time` for the same inputs.
    """
    if budget > limit:
        return None
    r = budget
    if start is not None and start > r:
        r = start
    if r > limit:
        return None
    interferers = higher[:count]
    if extra is not None:
        interferers = list(interferers)
        interferers.append(extra)
    iterations = 0
    while True:
        iterations += 1
        interference = 0
        for wcet, period, jitter in interferers:
            interference += -(-(r + jitter) // period) * wcet
        next_r = budget + interference
        if next_r == r:
            stats.fixpoint_iterations += iterations
            return r
        if next_r > limit:
            stats.fixpoint_iterations += iterations
            return None
        r = next_r


def _raw_budget(entry: Entry) -> int:
    return entry.budget


class _ProbeResult:
    """Outcome of one successful probe, kept for commit/warm-start reuse."""

    __slots__ = ("candidate", "key", "pos", "triple", "response", "below")

    def __init__(self, candidate, key, pos, triple, response, below) -> None:
        self.candidate = candidate
        self.key = key
        self.pos = pos
        self.triple = triple
        self.response = response
        self.below = below  # responses of entries at pos.. with candidate added


class _BudgetSearchMixin:
    """Shared maximal-budget binary search (downward-closed feasibility).

    Evaluates each candidate budget at most once — the from-scratch
    helpers this replaces probed the lower bound twice (once for
    feasibility, once for the response) — and hands the last *feasible*
    probe to :meth:`probe` as the warm start for the next one.
    """

    def probe_budget(
        self,
        lo: int,
        hi: int,
        build: Callable[[int], Optional[Entry]],
    ) -> Tuple[Optional[int], Optional[int]]:
        """Largest budget ``b`` in ``[lo, hi]`` whose ``build(b)`` entry
        the core admits, with that probe's response; ``(None, None)``
        when even ``lo`` fails (or ``build`` vetoes it)."""
        if hi < lo:
            return None, None
        entry = build(lo)
        response = self.probe(entry) if entry is not None else None
        if response is None:
            return None, None
        best, best_response = lo, response
        warm = self._capture_warm()
        low, high = lo + 1, hi
        while low <= high:
            mid = (low + high) // 2
            entry = build(mid)
            response = (
                self.probe(entry, warm=warm) if entry is not None else None
            )
            if response is not None:
                best, best_response = mid, response
                warm = self._capture_warm()
                low = mid + 1
            else:
                high = mid - 1
        self.stats.budget_searches += 1
        self._restore_warm(warm)
        return best, best_response

    def _capture_warm(self):
        return None

    def _restore_warm(self, warm) -> None:
        pass


class CoreAnalysisContext(_BudgetSearchMixin):
    """Incremental per-core RTA: priority-ordered entries with memoized
    response times.

    ``budget_fn`` maps an entry to its analysis-side budget (raw budget
    by default; the semi-partitioners pass their located-charge
    functions), ``tick_ns`` applies the tick-driven-kernel adjustment of
    :func:`repro.analysis.rta.entry_response_time`.

    Cached responses are maintained as *valid lower bounds* of the
    current response (exact right after a verified commit; installing a
    higher-priority entry can only raise the true value above the
    cache).  Probes use them as warm starts, never as verdicts — an
    entry's feasibility is only ever concluded from a freshly converged
    fixed point, so the lower-bound slack cannot change any decision.
    """

    incremental = True

    def __init__(
        self,
        budget_fn: Optional[Callable[[Entry], int]] = None,
        tick_ns: int = 0,
        stats: Optional[AnalysisStats] = None,
    ) -> None:
        self.budget_fn = budget_fn if budget_fn is not None else _raw_budget
        self.tick_ns = tick_ns
        self.stats = stats if stats is not None else STATS
        self.entries: List[Entry] = []  # local priority order, highest first
        self._keys: List[tuple] = []
        self._triples: List[Tuple[int, int, int]] = []
        self._responses: List[Optional[int]] = []
        self._utilization = 0.0
        self._last: Optional[_ProbeResult] = None

    # -- bookkeeping ----------------------------------------------------

    @property
    def utilization(self) -> float:
        return self._utilization

    def __len__(self) -> int:
        return len(self.entries)

    def _triple_of(self, entry: Entry) -> Tuple[int, int, int]:
        return (
            self.budget_fn(entry),
            entry.period,
            entry.jitter + self.tick_ns,
        )

    # -- probing --------------------------------------------------------

    def prepare(self, candidate: Entry) -> tuple:
        """Precompute the candidate's core-independent probe inputs
        (sort key, analysis triple, utilization) for reuse across a
        multi-core scan of sibling contexts (same ``budget_fn``
        semantics and ``tick_ns``); pass the result to :meth:`probe`
        as ``pre``."""
        return (
            _entry_sort_key(candidate),
            self._triple_of(candidate),
            candidate.utilization,
        )

    def probe(
        self,
        candidate: Entry,
        warm: Optional[_ProbeResult] = None,
        pre: Optional[tuple] = None,
    ) -> Optional[int]:
        """Response time of ``candidate`` if the core (with it added)
        stays schedulable, else ``None``.  Analyzes only the candidate
        and the entries strictly below it; ``warm`` may carry a previous
        successful probe on *this* context of a smaller-budget candidate
        for the same slot — identical sort key, residents unchanged, as
        :meth:`probe_budget` guarantees — so its key and position carry
        over verbatim.  ``pre`` is a :meth:`prepare` result.

        The fixed-point loops are inlined (reference semantics:
        :func:`fixed_point`) — this is the hottest code path of the
        partitioning layer and the call/slice overhead was measurable."""
        stats = self.stats
        stats.probes += 1
        self._last = None
        if pre is None:
            util = candidate.utilization
        else:
            key, triple, util = pre
        # Utilization fast path.  If raw utilization would exceed 1 the
        # verdict is already decided: RTA cannot pass every entry of a
        # set with U > 1 (if candidate and all entries below it passed,
        # the whole core would pass — entries above are unaffected — and
        # an RTA-schedulable core has U <= 1).  Skipping the divergent
        # fixed-point iterations changes no decision; the epsilon keeps
        # float accumulation error from ever rejecting a true U <= 1.
        if self._utilization + util > 1.0 + 1e-9:
            return None
        if warm is not None:
            key = warm.key
            pos = warm.pos
            triple = self._triple_of(candidate)
            warm_ok = True
        else:
            if pre is None:
                key = _entry_sort_key(candidate)
                triple = self._triple_of(candidate)
            pos = bisect_right(self._keys, key)
            warm_ok = False
        tick = self.tick_ns
        iterations = 0

        # Candidate's own fixed point; interferers are the entries above.
        budget = triple[0]
        limit = candidate.deadline - tick
        interferers = self._triples[:pos]
        r = budget
        if warm_ok and warm.response > r:
            r = warm.response
        response = None
        if r <= limit:
            while True:
                iterations += 1
                acc = budget
                for wcet, period, jitter in interferers:
                    acc += -(-(r + jitter) // period) * wcet
                if acc == r:
                    response = r
                    break
                if acc > limit:
                    break
                r = acc
        if response is None:
            stats.fixpoint_iterations += iterations
            return None

        # Entries below, top-down; each adds itself to the interferer set
        # of the next.  ``interferers`` already holds everything above the
        # candidate, so append the candidate first.
        interferers.append(triple)
        below: List[int] = []
        entries = self.entries
        triples = self._triples
        responses = self._responses
        for index in range(pos, len(entries)):
            own = triples[index]
            budget = own[0]
            limit = entries[index].deadline - tick
            r = budget
            start = responses[index]
            if start is not None and start > r:
                r = start
            if warm_ok:
                prior = warm.below[index - pos]
                if prior > r:
                    r = prior
            result = None
            if r <= limit:
                while True:
                    iterations += 1
                    acc = budget
                    for wcet, period, jitter in interferers:
                        acc += -(-(r + jitter) // period) * wcet
                    if acc == r:
                        result = r
                        break
                    if acc > limit:
                        break
                    r = acc
            if result is None:
                stats.fixpoint_iterations += iterations
                return None
            below.append(result)
            interferers.append(own)
        stats.fixpoint_iterations += iterations
        self._last = _ProbeResult(candidate, key, pos, triple, response, below)
        return response

    def _capture_warm(self):
        return self._last

    def _restore_warm(self, warm) -> None:
        # After a budget search the last *successful* probe is the best
        # budget's, so a commit of the winning entry can reuse it.
        self._last = warm

    # -- mutation -------------------------------------------------------

    def commit(self, candidate: Entry) -> int:
        """Verify-and-install ``candidate``; returns its response.

        Reuses the immediately preceding successful :meth:`probe` of the
        same entry object; otherwise probes now.  Raises ``ValueError``
        if the candidate is infeasible (partitioners only commit after a
        successful probe, so this indicates a logic error)."""
        last = self._last
        if last is None or last.candidate is not candidate:
            if self.probe(candidate) is None:
                raise ValueError(
                    f"commit of infeasible candidate {candidate.name}"
                )
            last = self._last
        self.entries.insert(last.pos, candidate)
        self._keys.insert(last.pos, last.key)
        self._triples.insert(last.pos, last.triple)
        self._responses.insert(last.pos, last.response)
        for offset, value in enumerate(last.below):
            self._responses[last.pos + 1 + offset] = value
        self._utilization += candidate.utilization
        self._last = None
        return last.response

    def install(self, entry: Entry, response: Optional[int] = None) -> None:
        """Blind insert (no feasibility check) with an optional known
        response — the commit path of split pieces whose feasibility the
        partitioner already established during the search.  Cached
        responses of entries below stay valid lower bounds (the new
        entry only adds interference)."""
        key = _entry_sort_key(entry)
        pos = bisect_right(self._keys, key)
        self.entries.insert(pos, entry)
        self._keys.insert(pos, key)
        self._triples.insert(pos, self._triple_of(entry))
        self._responses.insert(pos, response)
        self._utilization += entry.utilization
        self._last = None

    def remove(self, entry: Entry) -> None:
        """Remove a resident entry.  Responses below it are invalidated
        (they can only shrink, so the cache would over-estimate — no
        longer a valid *lower* bound for warm starts)."""
        index = self.entries.index(entry)
        del self.entries[index]
        del self._keys[index]
        del self._triples[index]
        del self._responses[index]
        for below in range(index, len(self._responses)):
            self._responses[below] = None
        self._utilization -= entry.utilization
        self._last = None

    def clone(self) -> "CoreAnalysisContext":
        """Independent copy for speculative multi-step edits (PDMS's
        victim splitting); adopt it on success, drop it on failure."""
        copy = CoreAnalysisContext(self.budget_fn, self.tick_ns, self.stats)
        copy.entries = list(self.entries)
        copy._keys = list(self._keys)
        copy._triples = list(self._triples)
        copy._responses = list(self._responses)
        copy._utilization = self._utilization
        return copy

    # -- introspection --------------------------------------------------

    def response_of(self, entry: Entry) -> Optional[int]:
        """Exact current response of a resident entry (recomputes and
        re-memoizes if the cache holds only a lower bound)."""
        index = self.entries.index(entry)
        cached = self._responses[index]
        exact = fixed_point(
            self._triples[index][0],
            self._triples,
            index,
            None,
            entry.deadline - self.tick_ns,
            cached,
            self.stats,
        )
        self._responses[index] = exact
        return exact

    def responses(self) -> List[Tuple[Entry, Optional[int]]]:
        """Exact ``(entry, response)`` for every resident, priority order."""
        return [(entry, self.response_of(entry)) for entry in self.entries]


class ScratchRtaContext(_BudgetSearchMixin):
    """The from-scratch reference with the same API: every probe
    re-sorts the core and re-runs a cold fixed point for *all* entries,
    rebuilding each entry's interferer list on the fly — the exact
    per-probe cost shape the partitioners had before the incremental
    engine (``_core_feasible`` / ``rta_admission`` over plain entry
    lists), minus the duplicated lower-bound probe fixed in
    :class:`_BudgetSearchMixin` (kept fixed here too, so the benchmark
    does not take credit for that bugfix)."""

    incremental = False

    def __init__(
        self,
        budget_fn: Optional[Callable[[Entry], int]] = None,
        tick_ns: int = 0,
        stats: Optional[AnalysisStats] = None,
    ) -> None:
        self.budget_fn = budget_fn if budget_fn is not None else _raw_budget
        self.tick_ns = tick_ns
        self.stats = stats if stats is not None else STATS
        self.entries: List[Entry] = []  # append order, like the old lists
        self._utilization = 0.0
        self._last_candidate: Optional[Entry] = None

    @property
    def utilization(self) -> float:
        return self._utilization

    def __len__(self) -> int:
        return len(self.entries)

    def prepare(self, candidate: Entry) -> None:
        """Nothing reusable across a scan — every probe recomputes
        everything, like the helpers this context reproduces."""
        return None

    def probe(
        self,
        candidate: Entry,
        warm: Optional[_ProbeResult] = None,
        pre: Optional[tuple] = None,
    ) -> Optional[int]:
        self.stats.probes += 1
        self._last_candidate = None
        tick = self.tick_ns
        ordered = order_entries(self.entries + [candidate])
        candidate_response: Optional[int] = None
        for index, entry in enumerate(ordered):
            # Per-entry interferer-list rebuild, as the original helpers
            # did (O(n^2) triple construction per probe).
            higher = [self._triple_of(e) for e in ordered[:index]]
            response = fixed_point(
                self._triple_of(entry)[0],
                higher,
                index,
                None,
                entry.deadline - tick,
                None,
                self.stats,
            )
            if response is None:
                return None
            if entry is candidate:
                candidate_response = response
        self._last_candidate = candidate
        self._last_response = candidate_response
        return candidate_response

    def _triple_of(self, entry: Entry) -> Tuple[int, int, int]:
        return (
            self.budget_fn(entry),
            entry.period,
            entry.jitter + self.tick_ns,
        )

    def commit(self, candidate: Entry) -> int:
        if self._last_candidate is not candidate:
            if self.probe(candidate) is None:
                raise ValueError(
                    f"commit of infeasible candidate {candidate.name}"
                )
        response = self._last_response
        self.install(candidate)
        return response

    def install(self, entry: Entry, response: Optional[int] = None) -> None:
        self.entries.append(entry)
        self._utilization += entry.utilization
        self._last_candidate = None

    def remove(self, entry: Entry) -> None:
        self.entries.remove(entry)
        self._utilization -= entry.utilization
        self._last_candidate = None

    def clone(self) -> "ScratchRtaContext":
        copy = ScratchRtaContext(self.budget_fn, self.tick_ns, self.stats)
        copy.entries = list(self.entries)
        copy._utilization = self._utilization
        return copy

    def response_of(self, entry: Entry) -> Optional[int]:
        ordered = order_entries(self.entries)
        triples = [self._triple_of(e) for e in ordered]
        index = ordered.index(entry)
        return fixed_point(
            triples[index][0],
            triples,
            index,
            None,
            entry.deadline - self.tick_ns,
            None,
            self.stats,
        )

    def responses(self) -> List[Tuple[Entry, Optional[int]]]:
        return [
            (entry, self.response_of(entry))
            for entry in order_entries(self.entries)
        ]


def _raw_triple(entry: Entry) -> Tuple[int, int, int]:
    return (entry.budget, entry.period, entry.deadline)


class EdfCoreContext(_BudgetSearchMixin):
    """Demand-bound (EDF) admission context with cached triples.

    The exact processor-demand test is a whole-core property, so probes
    cannot reuse per-entry fixed points; what *is* redundant between
    probes — rebuilding every resident's ``(C, T_eff, D)`` triple and
    re-checking residents' ``C <= D`` — is cached here.  ``triple_fn``
    maps an entry to its admission triple (C=D splitting passes its
    located-charge/effective-period form); ``precheck_cd=True`` applies
    the candidate-side ``C <= D`` veto the C=D splitter used to apply to
    the whole core (residents passed it at their own admission, so the
    candidate check is equivalent)."""

    incremental = True

    def __init__(
        self,
        triple_fn: Callable[[Entry], Tuple[int, int, int]] = _raw_triple,
        precheck_cd: bool = True,
        stats: Optional[AnalysisStats] = None,
    ) -> None:
        self.triple_fn = triple_fn
        self.precheck_cd = precheck_cd
        self.stats = stats if stats is not None else STATS
        self.entries: List[Entry] = []
        self._triples: List[Tuple[int, int, int]] = []
        self._utilization = 0.0
        self._last_candidate: Optional[Entry] = None

    @property
    def utilization(self) -> float:
        return self._utilization

    def __len__(self) -> int:
        return len(self.entries)

    def prepare(self, candidate: Entry) -> Tuple[int, int, int]:
        """Precompute the candidate's admission triple for reuse across
        a multi-core scan of sibling contexts (same ``triple_fn``
        semantics); pass the result to :meth:`probe` as ``pre``."""
        return self.triple_fn(candidate)

    def probe(
        self,
        candidate: Entry,
        warm: Optional[_ProbeResult] = None,
        pre: Optional[Tuple[int, int, int]] = None,
    ) -> Optional[int]:
        """``1`` when the demand test admits the core with ``candidate``
        added, else ``None`` (the value carries no response semantics —
        EDF admission is a verdict, not a response time)."""
        self.stats.probes += 1
        self._last_candidate = None
        triple = self.triple_fn(candidate) if pre is None else pre
        if self.precheck_cd and triple[0] > triple[2]:
            return None
        self.stats.edf_tests += 1
        if not edf_schedulable(self._triples + [triple]):
            return None
        self._last_candidate = candidate
        return 1

    def commit(self, candidate: Entry) -> int:
        if self._last_candidate is not candidate:
            if self.probe(candidate) is None:
                raise ValueError(
                    f"commit of infeasible candidate {candidate.name}"
                )
        self.install(candidate)
        return 1

    def install(self, entry: Entry, response: Optional[int] = None) -> None:
        self.entries.append(entry)
        self._triples.append(self.triple_fn(entry))
        self._utilization += entry.utilization
        self._last_candidate = None

    def remove(self, entry: Entry) -> None:
        index = self.entries.index(entry)
        del self.entries[index]
        del self._triples[index]
        self._utilization -= entry.utilization
        self._last_candidate = None

    def clone(self) -> "EdfCoreContext":
        copy = EdfCoreContext(self.triple_fn, self.precheck_cd, self.stats)
        copy.entries = list(self.entries)
        copy._triples = list(self._triples)
        copy._utilization = self._utilization
        return copy


class EdfScratchContext(_BudgetSearchMixin):
    """From-scratch demand-bound reference: rebuilds every triple and
    re-checks every ``C <= D`` per probe (the old ``_core_edf_ok``)."""

    incremental = False

    def __init__(
        self,
        triple_fn: Callable[[Entry], Tuple[int, int, int]] = _raw_triple,
        precheck_cd: bool = True,
        stats: Optional[AnalysisStats] = None,
    ) -> None:
        self.triple_fn = triple_fn
        self.precheck_cd = precheck_cd
        self.stats = stats if stats is not None else STATS
        self.entries: List[Entry] = []
        self._utilization = 0.0
        self._last_candidate: Optional[Entry] = None

    @property
    def utilization(self) -> float:
        return self._utilization

    def __len__(self) -> int:
        return len(self.entries)

    def prepare(self, candidate: Entry) -> None:
        """Nothing reusable — the from-scratch reference rebuilds every
        triple per probe, like the old ``_core_edf_ok``."""
        return None

    def probe(
        self,
        candidate: Entry,
        warm: Optional[_ProbeResult] = None,
        pre: Optional[tuple] = None,
    ) -> Optional[int]:
        self.stats.probes += 1
        self._last_candidate = None
        triples = [self.triple_fn(e) for e in self.entries + [candidate]]
        if self.precheck_cd:
            for wcet, _period, deadline in triples:
                if wcet > deadline:
                    return None
        self.stats.edf_tests += 1
        if not edf_schedulable(triples):
            return None
        self._last_candidate = candidate
        return 1

    def commit(self, candidate: Entry) -> int:
        if self._last_candidate is not candidate:
            if self.probe(candidate) is None:
                raise ValueError(
                    f"commit of infeasible candidate {candidate.name}"
                )
        self.install(candidate)
        return 1

    def install(self, entry: Entry, response: Optional[int] = None) -> None:
        self.entries.append(entry)
        self._utilization += entry.utilization
        self._last_candidate = None

    def remove(self, entry: Entry) -> None:
        self.entries.remove(entry)
        self._utilization -= entry.utilization
        self._last_candidate = None

    def clone(self) -> "EdfScratchContext":
        copy = EdfScratchContext(self.triple_fn, self.precheck_cd, self.stats)
        copy.entries = list(self.entries)
        copy._utilization = self._utilization
        return copy


def make_rta_context(
    incremental: bool = True,
    budget_fn: Optional[Callable[[Entry], int]] = None,
    tick_ns: int = 0,
    stats: Optional[AnalysisStats] = None,
):
    """RTA context of the requested flavor (shared partitioner helper)."""
    cls = CoreAnalysisContext if incremental else ScratchRtaContext
    return cls(budget_fn=budget_fn, tick_ns=tick_ns, stats=stats)


def make_edf_context(
    incremental: bool = True,
    triple_fn: Callable[[Entry], Tuple[int, int, int]] = _raw_triple,
    precheck_cd: bool = True,
    stats: Optional[AnalysisStats] = None,
):
    """Demand-bound context of the requested flavor."""
    cls = EdfCoreContext if incremental else EdfScratchContext
    return cls(triple_fn=triple_fn, precheck_cd=precheck_cd, stats=stats)
