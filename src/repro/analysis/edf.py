"""EDF schedulability analysis (uniprocessor).

Extension beyond the paper (DESIGN.md §7): the dynamic-priority side of the
comparison.  For one processor:

* implicit deadlines — EDF is optimal: schedulable iff ``U <= 1``
  (Liu & Layland);
* constrained deadlines — processor-demand analysis: schedulable iff
  ``U <= 1`` and for every absolute deadline ``t`` in the testing set,
  ``dbf(t) <= t``, where the demand bound function is

      dbf(t) = sum over tasks of  max(0, floor((t - D_i) / T_i) + 1) * C_i

  The testing set is bounded by Baruah's busy-period argument; we use the
  classic La/Lb bound and enumerate deadlines up to it (exact test).
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence, Tuple

from repro.model.task import Task

#: A task for demand analysis: (wcet, period, deadline).
DemandTask = Tuple[int, int, int]


def _as_triples(tasks: Iterable) -> List[DemandTask]:
    triples = []
    for task in tasks:
        if isinstance(task, tuple):
            triples.append(task)
        else:
            triples.append((task.wcet, task.period, task.deadline))
    return triples


def demand_bound(tasks: Iterable, t: int) -> int:
    """Total execution demand of jobs with release and deadline in [0, t].

    >>> demand_bound([(2, 5, 5)], 5)
    2
    >>> demand_bound([(2, 5, 5)], 4)
    0
    >>> demand_bound([(2, 5, 5)], 10)
    4
    """
    total = 0
    for wcet, period, deadline in _as_triples(tasks):
        if t >= deadline:
            total += ((t - deadline) // period + 1) * wcet
    return total


def edf_test_limit(tasks: Sequence[DemandTask]) -> int:
    """Upper bound on deadlines that must be checked (busy-period bound)."""
    triples = _as_triples(tasks)
    utilization = sum(c / t for c, t, _d in triples)
    if utilization > 1.0:
        return 0
    hyper_like = max((t for _c, t, _d in triples), default=0)
    # La: max over tasks of (T_i - D_i) * U_i / (1 - U), plus the largest
    # deadline; guard the denominator for U == 1.
    if utilization < 1.0:
        la = sum(
            max(0, (t - d)) * (c / t) for c, t, d in triples
        ) / (1.0 - utilization)
    else:
        la = float("inf")
    lb = _busy_period(triples)
    candidates = [value for value in (la, lb) if value != float("inf")]
    limit = int(math.ceil(min(candidates))) if candidates else lb
    return max(limit, hyper_like)


def _busy_period(triples: Sequence[DemandTask]) -> int:
    """Length of the synchronous busy period (fixed point of the workload)."""
    total_wcet = sum(c for c, _t, _d in triples)
    if total_wcet == 0:
        return 0
    length = total_wcet
    while True:
        demand = sum(
            -(-length // t) * c for c, t, _d in triples
        )  # ceil(length/T) * C
        if demand == length:
            return length
        if demand > 2**63:  # pragma: no cover - overload guard
            return length
        length = demand


def edf_schedulable(tasks: Iterable) -> bool:
    """Exact uniprocessor EDF test (processor demand analysis).

    Accepts ``Task`` objects or ``(wcet, period, deadline)`` triples.

    >>> edf_schedulable([(5, 10, 10), (5, 10, 10)])
    True
    >>> edf_schedulable([(6, 10, 10), (5, 10, 10)])
    False
    >>> edf_schedulable([(3, 10, 5), (3, 10, 5)])
    False
    """
    triples = _as_triples(tasks)
    if not triples:
        return True
    utilization = sum(c / t for c, t, _d in triples)
    if utilization > 1.0 + 1e-12:
        return False
    if all(d == t for _c, t, d in triples):
        return True  # implicit deadlines: U <= 1 is exact
    limit = edf_test_limit(triples)
    # Enumerate absolute deadlines up to the limit.
    checkpoints = set()
    for wcet, period, deadline in triples:
        point = deadline
        while point <= limit:
            checkpoints.add(point)
            point += period
    for t in sorted(checkpoints):
        if demand_bound(triples, t) > t:
            return False
    return True


def edf_utilization_schedulable(tasks: Iterable) -> bool:
    """Implicit-deadline shortcut: schedulable iff U <= 1."""
    triples = _as_triples(tasks)
    return sum(c / t for c, t, _d in triples) <= 1.0 + 1e-12
