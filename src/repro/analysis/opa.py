"""Audsley's Optimal Priority Assignment (OPA).

Extension (DESIGN.md §7).  For uniprocessor preemptive fixed-priority
scheduling, rate- and deadline-monotonic orderings are optimal only for
synchronous task sets without release jitter.  With jitter — which split
subtasks carry — **Audsley's algorithm** (1991) is optimal: it assigns the
*lowest* priority to any entry that is schedulable there (its verdict at
the bottom does not depend on the relative order of the others), recurses
on the rest, and fails only if no entry can take the lowest slot, in which
case *no* priority ordering works.

The implementation operates on the same :class:`~repro.model.assignment.Entry`
objects as the rest of the analysis.  Body subtasks keep their fixed
top-of-core position (their budgets were frozen under that assumption);
OPA permutes only the NORMAL/TAIL entries below them.

``opa_admission`` plugs into the partitioning heuristics as a drop-in,
strictly-more-permissive replacement for ``rta_admission``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.analysis.rta import response_time
from repro.model.assignment import Entry, EntryKind


def _schedulable_at_bottom(
    entry: Entry, others: Sequence[Entry]
) -> bool:
    """Is ``entry`` schedulable at the lowest priority among ``others``?"""
    higher = [(e.budget, e.period, e.jitter) for e in others]
    return response_time(entry.budget, higher, entry.deadline) is not None


def opa_order(entries: Sequence[Entry]) -> Optional[List[Entry]]:
    """Find a feasible priority order (highest first), or ``None``.

    Body subtasks are pinned above everything in their creation order;
    the remaining entries are ordered by Audsley's algorithm.  Returns the
    full ordered list (bodies first) on success.
    """
    bodies = sorted(
        (e for e in entries if e.kind == EntryKind.BODY),
        key=lambda e: (e.body_rank, e.task.name),
    )
    flexible = [e for e in entries if e.kind != EntryKind.BODY]

    # Bodies themselves must be verified in their fixed positions.
    for index, body in enumerate(bodies):
        higher = [(e.budget, e.period, e.jitter) for e in bodies[:index]]
        if response_time(body.budget, higher, body.deadline) is None:
            return None

    assigned_bottom: List[Entry] = []  # lowest priority first
    remaining = list(flexible)
    while remaining:
        placed = False
        for candidate in remaining:
            others = bodies + [e for e in remaining if e is not candidate]
            if _schedulable_at_bottom(candidate, others):
                assigned_bottom.append(candidate)
                remaining.remove(candidate)
                placed = True
                break
        if not placed:
            return None
    ordered = bodies + list(reversed(assigned_bottom))
    return ordered


def opa_schedulable(entries: Sequence[Entry]) -> bool:
    """True iff *some* fixed-priority order schedules the core."""
    return opa_order(entries) is not None


def opa_admission(entries: Sequence[Entry]) -> bool:
    """Partitioning admission test backed by OPA (dominates RTA-with-RM)."""
    return opa_schedulable(entries)


def apply_opa(entries: Sequence[Entry]) -> bool:
    """Run OPA and, on success, write the found order into the entries'
    ``local_priority`` fields (0 = highest).  Returns success."""
    ordered = opa_order(entries)
    if ordered is None:
        return False
    for local_priority, entry in enumerate(ordered):
        entry.local_priority = local_priority
    return True
