"""Exact response-time analysis (RTA) for fixed-priority scheduling.

This is the Joseph & Pandya / Audsley fixed-point iteration, extended with
release jitter.  For an entry ``i`` with execution budget ``C_i``, release
jitter ``J_i`` and higher-local-priority entries ``hp(i)``::

    R = C_i + sum over j in hp(i) of ceil((R + J_j) / T_j) * C_j

iterated from ``R = C_i`` until it stabilises or exceeds the entry's local
deadline.  Jitter ``J_j`` inflates the interference of higher-priority
entries whose release can be deferred (split-task bodies and tails); the
entry's own deadline check is ``R <= D_i`` where ``D_i`` is the *synthetic*
local deadline (for tails the partitioner already subtracted the bodies'
completion bound, so no extra term appears here).

All quantities are integer nanoseconds; the iteration is exact and always
terminates because the candidate response grows monotonically and is cut off
at the deadline.

Local priority order on a core follows the FP-TS convention:

1. body subtasks, in creation order (earlier-created bodies higher), above
   everything else — this freezes a body's response time the moment it is
   placed, so budgets computed during splitting stay valid as the
   partitioner keeps loading the core;
2. normal tasks and tail subtasks, by global (rate-monotonic) priority.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.model.assignment import Assignment, Entry, EntryKind


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


def response_time(
    budget: int,
    higher: Sequence[Tuple[int, int, int]],
    limit: int,
) -> Optional[int]:
    """Fixed-point response time of a job of length ``budget``.

    Parameters
    ----------
    budget:
        Execution demand of the entry under analysis (ns).
    higher:
        Interfering entries as ``(wcet, period, jitter)`` triples.
    limit:
        Abort threshold; if the response exceeds ``limit`` return ``None``
        (the entry is unschedulable at this priority).

    Returns the exact worst-case response time, or ``None``.
    """
    if budget > limit:
        return None
    r = budget
    while True:
        interference = 0
        for wcet, period, jitter in higher:
            interference += _ceil_div(r + jitter, period) * wcet
        next_r = budget + interference
        if next_r == r:
            return r
        if next_r > limit:
            return None
        r = next_r


def _entry_sort_key(entry: Entry) -> tuple:
    if entry.kind == EntryKind.BODY:
        return (0, entry.body_rank, entry.task.name)
    priority = entry.task.priority
    if priority is None:
        raise ValueError(
            f"entry {entry.name}: task has no global priority assigned"
        )
    # Rate-monotonic order with a tail-favouring tie-break: a TAIL subtask
    # ranks above NORMAL tasks of the *same period*.  Any tie-break yields a
    # valid RM priority order; favouring migrated work matches the kernel
    # implementation (the migrated subtask is inserted and scheduled first)
    # and avoids rejecting schedulable splits on name ties.
    tail_rank = 0 if entry.kind == EntryKind.TAIL else 1
    return (1, entry.task.period, tail_rank, priority, entry.task.name)


def order_entries(entries: Iterable[Entry]) -> List[Entry]:
    """Return entries in local priority order (highest first).

    Bodies come first (creation order); everything else is rate-monotonic
    (period-ordered, which equals global-priority order for RM-assigned
    task sets) with tails winning period ties.  The same ordering drives
    both the analysis and the kernel simulator.
    """
    return sorted(entries, key=_entry_sort_key)


@dataclass
class EntryResult:
    """Outcome of RTA for one entry."""

    entry: Entry
    response: Optional[int]  # None => misses its local deadline

    @property
    def schedulable(self) -> bool:
        return self.response is not None

    @property
    def slack(self) -> Optional[int]:
        if self.response is None:
            return None
        return self.entry.deadline - self.response


@dataclass
class CoreAnalysis:
    """Outcome of RTA for every entry on one core."""

    results: List[EntryResult]

    @property
    def schedulable(self) -> bool:
        return all(result.schedulable for result in self.results)

    def response_of(self, name: str) -> Optional[int]:
        for result in self.results:
            if result.entry.name == name:
                return result.response
        raise KeyError(f"no entry named {name!r} on this core")


def entry_response_time(
    entry: Entry, higher_entries: Sequence[Entry], tick_ns: int = 0
) -> Optional[int]:
    """Response time of ``entry`` under interference from ``higher_entries``.

    ``tick_ns`` models a tick-driven kernel: every release can be deferred
    by up to one tick, which adds ``tick_ns`` of release jitter to the
    interferers and consumes ``tick_ns`` of the entry's own deadline.
    """
    higher = [
        (e.budget, e.period, e.jitter + tick_ns) for e in higher_entries
    ]
    return response_time(entry.budget, higher, entry.deadline - tick_ns)


def core_schedulable(
    entries: Iterable[Entry], tick_ns: int = 0
) -> CoreAnalysis:
    """Run exact RTA on all entries of one core, in local priority order."""
    ordered = order_entries(entries)
    results: List[EntryResult] = []
    for index, entry in enumerate(ordered):
        response = entry_response_time(entry, ordered[:index], tick_ns)
        results.append(EntryResult(entry=entry, response=response))
    return CoreAnalysis(results=results)


def assignment_schedulable(assignment: Assignment, tick_ns: int = 0) -> bool:
    """True iff every core of the assignment passes exact RTA."""
    for core in assignment.cores:
        if not core_schedulable(core.entries, tick_ns).schedulable:
            return False
    return True
