"""Global multiprocessor schedulability tests (extension, DESIGN.md §7).

The paper's introduction contrasts partitioning against "the global
approach, [where] each task can execute on any available processor at run
time" and cites the finding that partitioning is superior for hard
real-time systems.  These classic sufficient tests for global scheduling
let the evaluation harness show that comparison:

* **GFB** (Goossens, Funk & Baruah 2003) for global EDF on ``m``
  processors: schedulable if ``U <= m - (m - 1) * U_max``;
* **RM-US[m/(3m-2)]** (Andersson, Baruah & Jonsson 2001) for global
  fixed-priority: tasks heavier than ``m / (3m - 2)`` get top priority,
  the rest rate-monotonic; schedulable if ``U <= m^2 / (3m - 2)``.

Both are *sufficient only* and notoriously pessimistic — which is exactly
the point the comparison makes.
"""

from __future__ import annotations

from repro.model.taskset import TaskSet


def global_edf_gfb_schedulable(taskset: TaskSet, m: int) -> bool:
    """GFB density test for global EDF (implicit deadlines).

    >>> from repro.model.task import Task
    >>> ts = TaskSet([Task("a", wcet=1, period=2)])
    >>> global_edf_gfb_schedulable(ts, 2)
    True
    """
    if m <= 0:
        raise ValueError("m must be positive")
    if len(taskset) == 0:
        return True
    u_max = taskset.max_utilization
    return taskset.total_utilization <= m - (m - 1) * u_max + 1e-12


def global_rm_us_schedulable(taskset: TaskSet, m: int) -> bool:
    """RM-US[m/(3m-2)] utilization test for global fixed-priority.

    >>> from repro.model.task import Task
    >>> ts = TaskSet([Task("a", wcet=1, period=4), Task("b", wcet=1, period=4)])
    >>> global_rm_us_schedulable(ts, 2)
    True
    """
    if m <= 0:
        raise ValueError("m must be positive")
    if len(taskset) == 0:
        return True
    bound = m * m / (3 * m - 2)
    return taskset.total_utilization <= bound + 1e-12


def global_edf_bound(m: int, u_max: float) -> float:
    """The GFB capacity for a given largest task utilization."""
    return m - (m - 1) * u_max


def global_rm_us_bound(m: int) -> float:
    """The RM-US capacity ``m^2 / (3m - 2)`` (tends to m/3)."""
    return m * m / (3 * m - 2)
