"""Schedulability analysis.

Uniprocessor fixed-priority response-time analysis (with release jitter, the
form needed for split-task tails), classic utilization bounds, the
overhead-aware variants used for the paper's evaluation, and the
struct-of-arrays batch kernels (:mod:`repro.analysis.batch`) that run the
same exact tests over whole task-set populations in lock-step.
"""

from repro.analysis.rta import (
    CoreAnalysis,
    EntryResult,
    assignment_schedulable,
    core_schedulable,
    entry_response_time,
    order_entries,
    response_time,
)
from repro.analysis.batch import (
    BATCH_STATS,
    BatchStats,
    PopulationError,
    TaskSetPopulation,
    batch_partition_accept,
    batch_partition_accept_multi,
    batch_rta_responses,
)
from repro.analysis.incremental import (
    STATS,
    AnalysisStats,
    CoreAnalysisContext,
    EdfCoreContext,
    EdfScratchContext,
    ScratchRtaContext,
    make_edf_context,
    make_rta_context,
)
from repro.analysis.bounds import (
    liu_layland_bound,
    liu_layland_schedulable,
    hyperbolic_schedulable,
    spa_light_threshold,
)
from repro.analysis.edf import (
    demand_bound,
    edf_schedulable,
    edf_utilization_schedulable,
)
from repro.analysis.global_bounds import (
    global_edf_gfb_schedulable,
    global_rm_us_schedulable,
)
from repro.analysis.blocking import (
    assignment_schedulable_with_resources,
    core_schedulable_with_resources,
)
from repro.analysis.qpa import qpa_schedulable
from repro.analysis.opa import opa_admission, opa_order, opa_schedulable
from repro.analysis.oracle import fp_schedulable_oracle
from repro.analysis.slack import (
    SensitivityReport,
    sensitivity_report,
    wcet_margin,
)

__all__ = [
    "CoreAnalysis",
    "EntryResult",
    "assignment_schedulable",
    "core_schedulable",
    "entry_response_time",
    "order_entries",
    "response_time",
    "BATCH_STATS",
    "BatchStats",
    "PopulationError",
    "TaskSetPopulation",
    "batch_partition_accept",
    "batch_partition_accept_multi",
    "batch_rta_responses",
    "STATS",
    "AnalysisStats",
    "CoreAnalysisContext",
    "EdfCoreContext",
    "EdfScratchContext",
    "ScratchRtaContext",
    "make_edf_context",
    "make_rta_context",
    "liu_layland_bound",
    "liu_layland_schedulable",
    "hyperbolic_schedulable",
    "spa_light_threshold",
    "demand_bound",
    "edf_schedulable",
    "edf_utilization_schedulable",
    "global_edf_gfb_schedulable",
    "global_rm_us_schedulable",
    "assignment_schedulable_with_resources",
    "core_schedulable_with_resources",
    "qpa_schedulable",
    "opa_admission",
    "opa_order",
    "opa_schedulable",
    "fp_schedulable_oracle",
    "SensitivityReport",
    "sensitivity_report",
    "wcet_margin",
]
