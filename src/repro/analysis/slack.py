"""Per-task sensitivity analysis (extension).

Answers the engineer's questions about an accepted core assignment:

* **slack** — how much later could each entry finish and still meet its
  deadline (direct from RTA);
* **WCET margin** — by how much could *one* task's WCET grow, everything
  else fixed, before the core becomes unschedulable (binary search over
  the exact analysis) — the classic sensitivity-analysis question
  (Bini, Di Natale & Buttazzo style, computed numerically);
* **bottleneck** — the task with the smallest relative margin, i.e. the
  first thing to break under growth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis.rta import core_schedulable
from repro.model.assignment import Entry


def _with_budget(entry: Entry, budget: int) -> Entry:
    clone = Entry(
        kind=entry.kind,
        task=entry.task,
        core=entry.core,
        budget=entry.task.wcet if entry.subtask is None else budget,
        subtask=entry.subtask,
        deadline=entry.deadline,
        jitter=entry.jitter,
        local_priority=entry.local_priority,
        body_rank=entry.body_rank,
    )
    # NORMAL entries must keep budget == task.wcet; emulate growth via a
    # task copy instead.
    if entry.subtask is None:
        clone = Entry(
            kind=entry.kind,
            task=entry.task.with_wcet(budget),
            core=entry.core,
            budget=budget,
            deadline=entry.deadline,
            jitter=entry.jitter,
            local_priority=entry.local_priority,
            body_rank=entry.body_rank,
        )
    return clone


def wcet_margin(
    entries: Sequence[Entry],
    target_name: str,
    precision: int = 1000,
) -> Optional[int]:
    """Largest additional WCET (ns) the entry named ``target_name`` can
    absorb with the core still schedulable; None if already unschedulable.
    """
    entries = list(entries)
    target_index = next(
        (i for i, e in enumerate(entries) if e.name == target_name), None
    )
    if target_index is None:
        raise KeyError(f"no entry named {target_name!r}")
    if not core_schedulable(entries).schedulable:
        return None
    base = entries[target_index].budget
    ceiling_limit = entries[target_index].deadline  # budget can't pass D

    def ok(extra: int) -> bool:
        budget = base + extra
        if budget > ceiling_limit:
            return False
        trial = list(entries)
        trial[target_index] = _with_budget(entries[target_index], budget)
        return core_schedulable(trial).schedulable

    low, high = 0, ceiling_limit - base
    if high <= 0:
        return 0
    if ok(high):
        return high
    while high - low > precision:
        mid = (low + high) // 2
        if ok(mid):
            low = mid
        else:
            high = mid
    return low


@dataclass
class SensitivityReport:
    """Slack and WCET margins for every entry of one core."""

    slack: Dict[str, int]
    margin: Dict[str, int]
    budgets: Dict[str, int]

    @property
    def bottleneck(self) -> Optional[str]:
        """Entry with the smallest margin relative to its budget."""
        best_name, best_ratio = None, None
        for name, margin in self.margin.items():
            budget = self.budgets.get(name, 1)
            ratio = margin / budget if budget else float("inf")
            if best_ratio is None or ratio < best_ratio:
                best_name, best_ratio = name, ratio
        return best_name

    def as_table(self) -> str:
        lines = [
            f"{'entry':>16} {'budget':>12} {'slack':>12} "
            f"{'wcet margin':>12} {'growth':>8}"
        ]
        for name in self.slack:
            budget = self.budgets[name]
            growth = self.margin[name] / budget if budget else 0.0
            lines.append(
                f"{name:>16} {budget:>12} {self.slack[name]:>12} "
                f"{self.margin[name]:>12} {growth:>7.1%}"
            )
        return "\n".join(lines)


def sensitivity_report(
    entries: Sequence[Entry], precision: int = 1000
) -> Optional[SensitivityReport]:
    """Full per-entry sensitivity of one schedulable core (else None)."""
    analysis = core_schedulable(entries)
    if not analysis.schedulable:
        return None
    slack = {
        result.entry.name: result.slack for result in analysis.results
    }
    margin = {}
    budgets = {}
    for entry in entries:
        budgets[entry.name] = entry.budget
        margin[entry.name] = wcet_margin(
            entries, entry.name, precision=precision
        )
    return SensitivityReport(slack=slack, margin=margin, budgets=budgets)
