"""Parametric cache hierarchy and cache-related delay (CPMD) model.

The model captures exactly the mechanism the paper describes:

* each core has **private** cache (L1 + L2) of size ``private_bytes``;
* all cores share an **L3** of size ``shared_bytes``;
* when a task is preempted, the intervening workload displaces its working
  set from the private levels; on *resume*, lines are re-fetched from L3
  (cost ``l3_line_ns`` per line).  If the working set no longer fits even in
  L3 (or the system is modelled without a shared level), lines come from
  memory (``memory_line_ns`` per line);
* a *migration* to another core pays the same L3 re-fetch — which is the
  paper's observation that migration and local-context-switch delay are of
  the same order of magnitude;
* the one asymmetry (also noted in the paper): a task with a working set
  much smaller than the private cache that resumes *locally* has a chance
  that part of its set survived; we model the surviving fraction with
  ``local_survival`` in [0, 1].

Default latencies approximate a 2.66 GHz Nehalem-class Core i7: ~40 cycles
L3, ~200 cycles memory, 64-byte lines.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CacheHierarchy:
    """Static description of the cache hierarchy."""

    private_bytes: int = 288 * 1024  # 32 KiB L1D + 256 KiB L2 per core
    shared_bytes: int = 8 * 1024 * 1024  # 8 MiB shared L3
    line_bytes: int = 64
    l3_line_ns: int = 15  # ~40 cycles @ 2.66 GHz
    memory_line_ns: int = 75  # ~200 cycles @ 2.66 GHz

    def __post_init__(self) -> None:
        if self.line_bytes <= 0:
            raise ValueError("line_bytes must be positive")
        if self.private_bytes < 0 or self.shared_bytes < 0:
            raise ValueError("cache sizes must be non-negative")

    def lines(self, wss_bytes: int) -> int:
        """Number of cache lines in a working set."""
        return -(-wss_bytes // self.line_bytes)

    def at_frequency(self, freq) -> "CacheHierarchy":
        """Line-reload costs as seen by a core clocked at ``freq``.

        The model counts reload latency in the *CPU clock domain* (the
        paper's cycle counts divided by the nominal clock), so slowing
        the core dilates both levels by ``1/f`` — the same single
        rational scale, rounded half-up, as every other per-core cost.
        """
        from repro.energy.model import as_fraction, scale_ns

        f = as_fraction(freq)
        if f == 1:
            return self
        return CacheHierarchy(
            private_bytes=self.private_bytes,
            shared_bytes=self.shared_bytes,
            line_bytes=self.line_bytes,
            l3_line_ns=scale_ns(self.l3_line_ns, f),
            memory_line_ns=scale_ns(self.memory_line_ns, f),
        )


@dataclass(frozen=True)
class CachePenaltyModel:
    """Computes cache-related preemption/migration delay for a working set.

    >>> model = CachePenaltyModel()
    >>> local = model.preemption_delay(64 * 1024)
    >>> migration = model.migration_delay(64 * 1024)
    >>> 0 < local <= migration
    True
    >>> # same order of magnitude (paper's finding for realistic WSS):
    >>> migration / max(local, 1) < 10
    True
    """

    hierarchy: CacheHierarchy = CacheHierarchy()
    local_survival: float = 0.25
    """Fraction of a *private-cache-resident* working set assumed to survive a
    local preemption.  Zero would make local resume identical to migration;
    the paper notes small-working-set tasks get *some* benefit locally."""

    def __post_init__(self) -> None:
        if not 0.0 <= self.local_survival <= 1.0:
            raise ValueError("local_survival must be within [0, 1]")

    def _reload_all(self, wss_bytes: int) -> int:
        """Cost of re-fetching the whole working set into private cache."""
        hierarchy = self.hierarchy
        lines = hierarchy.lines(wss_bytes)
        if wss_bytes <= hierarchy.shared_bytes and hierarchy.shared_bytes > 0:
            return lines * hierarchy.l3_line_ns
        return lines * hierarchy.memory_line_ns

    def preemption_delay(self, wss_bytes: int) -> int:
        """Delay when a preempted task resumes on the *same* core (ns)."""
        if wss_bytes <= 0:
            return 0
        full = self._reload_all(wss_bytes)
        if wss_bytes <= self.hierarchy.private_bytes:
            # Part of a small working set may still be resident locally.
            return int(round(full * (1.0 - self.local_survival)))
        return full

    def migration_delay(self, wss_bytes: int) -> int:
        """Delay when a task resumes on a *different* core (ns).

        Nothing survives in the destination's private cache, but the shared
        L3 still holds the working set — hence the paper's "same order of
        magnitude" observation.
        """
        if wss_bytes <= 0:
            return 0
        return self._reload_all(wss_bytes)

    def delay(self, wss_bytes: int, migrated: bool) -> int:
        if migrated:
            return self.migration_delay(wss_bytes)
        return self.preemption_delay(wss_bytes)

    def at_frequency(self, freq) -> "CachePenaltyModel":
        """The penalty model of a core clocked at ``freq``:
        the hierarchy's line costs dilated by ``1/f`` (see
        :meth:`CacheHierarchy.at_frequency`); survival is geometry, not
        time, and stays.  ``at_frequency(1)`` returns ``self``."""
        from repro.energy.model import as_fraction

        f = as_fraction(freq)
        if f == 1:
            return self
        return CachePenaltyModel(
            hierarchy=self.hierarchy.at_frequency(f),
            local_survival=self.local_survival,
        )

    @staticmethod
    def none() -> "CachePenaltyModel":
        """A model that charges no cache-related delay at all."""
        return CachePenaltyModel(
            hierarchy=CacheHierarchy(l3_line_ns=0, memory_line_ns=0),
            local_survival=0.0,
        )

    @staticmethod
    def private_only() -> "CachePenaltyModel":
        """No shared level: migrations re-fetch from memory.

        Models the paper's remark that *without* a shared lower-level cache
        (or for working sets exceeding L3) migration is significantly more
        expensive than a local context switch.
        """
        return CachePenaltyModel(
            hierarchy=CacheHierarchy(shared_bytes=0), local_survival=0.25
        )
