"""Cache-related preemption and migration delay model.

Section 3 of the paper measures "cache-related overhead" and finds that on a
shared-L3 machine (Intel Core-i7), the delay after a *migration* and after a
*local context switch* is "in the same order of magnitude", because in both
cases the preempted/migrated task's working set has been displaced from the
private caches (L1/L2) but survives in the shared L3.  Only tasks with very
small working sets benefit from resuming on the same core.

This package provides the parametric model reproducing that behaviour.
"""

from repro.cache.model import CacheHierarchy, CachePenaltyModel

__all__ = ["CacheHierarchy", "CachePenaltyModel"]
