"""Seeded scenario synthesis from fitted workload profiles.

:class:`ScenarioSynthesizer` turns a :class:`~repro.workload.profile.
WorkloadProfile` back into concrete :class:`~repro.servers.server.
AperiodicJob` streams, at arbitrary load:

* **scale** multiplies the arrival rate (inter-arrival gaps shrink by
  the factor) while execution demands keep their fitted distribution —
  ``scale=4.0`` means 4x the jobs of the source trace;
* **storms** (:class:`StormSpec`) overlay a deterministic ON/OFF phase:
  inside an ON window the arrival rate is further multiplied by
  ``intensity``.  Storm intensity and duration are plain numbers, so the
  engine can sweep them like any other axis.

Determinism contract: every stream draws from its own
``random.Random(f"repro-workload:{seed}:{stream}")`` (see
:func:`stream_rng`), and draws exactly one uniform per inter-arrival and
one per execution demand, so a scenario regenerates bit-identically from
``(profile, seed, scale, storm, horizon)`` in any process — the property
the engine's cache and the statistical test harness both pin.

Exactness contract: a **zero-variance** profile (every quantile knot
equal) synthesized at ``scale=1.0`` with no storm reproduces the source
trace's arrivals and demands *exactly* — the basis of the
``replay-vs-synthetic`` differential pair.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.servers.server import AperiodicJob
from repro.workload.profile import BurstDescriptor, WorkloadProfile

#: Storm gaps are clamped to at least one nanosecond.
_MIN_GAP_NS = 1


def stream_rng(seed: int, stream: str) -> random.Random:
    """The deterministic RNG for one synthesized stream.

    String seeding hashes with SHA-512 (stable across processes and
    Python versions), and namespacing by stream name decorrelates the
    streams of one scenario without any draw-order coupling.
    """
    return random.Random(f"repro-workload:{seed}:{stream}")


@dataclass(frozen=True)
class StormSpec:
    """A deterministic ON/OFF arrival storm.

    Time is partitioned into cycles of ``on_ns + off_ns``; the first
    ``on_ns`` of each cycle is the storm (ON) phase, during which the
    arrival rate is multiplied by ``intensity``.
    """

    intensity: float
    on_ns: int
    off_ns: int

    def __post_init__(self) -> None:
        if self.intensity < 1.0:
            raise ValueError("storm intensity must be >= 1")
        if self.on_ns <= 0:
            raise ValueError("storm on_ns must be positive")
        if self.off_ns < 0:
            raise ValueError("storm off_ns must be non-negative")

    @property
    def cycle_ns(self) -> int:
        return self.on_ns + self.off_ns

    def in_storm(self, t: int) -> bool:
        return t % self.cycle_ns < self.on_ns

    @staticmethod
    def from_burst(
        burst: BurstDescriptor, floor_ns: int = 1
    ) -> Optional["StormSpec"]:
        """Build a storm spec from a fitted burst descriptor.

        Returns ``None`` when the fit found no distinct ON phase (the
        stream is effectively smooth).
        """
        if burst.mean_on_ns <= 0 or burst.intensity <= 1.0:
            return None
        return StormSpec(
            intensity=burst.intensity,
            on_ns=max(floor_ns, int(burst.mean_on_ns)),
            off_ns=max(0, int(burst.mean_off_ns)),
        )


class ScenarioSynthesizer:
    """Synthesizes aperiodic job streams from a fitted profile."""

    def __init__(self, profile: WorkloadProfile, seed: int = 0) -> None:
        self.profile = profile
        self.seed = seed

    def synthesize_stream(
        self,
        name: str,
        horizon_ns: int,
        scale: float = 1.0,
        storm: Optional[StormSpec] = None,
    ) -> List[AperiodicJob]:
        """Synthesize one stream's jobs over ``[0, horizon_ns)``."""
        if horizon_ns <= 0:
            raise ValueError("horizon_ns must be positive")
        if scale <= 0:
            raise ValueError("scale must be positive")
        stream = self.profile.stream(name)
        rng = stream_rng(self.seed, name)
        jobs: List[AperiodicJob] = []
        t = 0
        while True:
            gap = stream.interarrival.sample(rng)
            factor = scale
            if storm is not None and storm.in_storm(t):
                factor *= storm.intensity
            if factor != 1.0:
                gap = int(round(gap / factor))
            gap = max(_MIN_GAP_NS, gap)
            t += gap
            if t >= horizon_ns:
                break
            work = max(1, stream.work.sample(rng))
            jobs.append(AperiodicJob(arrival=t, work=work))
        return jobs

    def synthesize(
        self,
        horizon_ns: int,
        scale: float = 1.0,
        storm: Optional[StormSpec] = None,
        streams: Optional[Sequence[str]] = None,
    ) -> List[AperiodicJob]:
        """Synthesize all (or the named) streams, merged by arrival.

        The merge is a stable sort over streams in profile order, so the
        result is deterministic even when arrivals tie across streams.
        """
        names = tuple(streams) if streams is not None else self.profile.names
        merged: List[AperiodicJob] = []
        for name in names:
            merged.extend(
                self.synthesize_stream(
                    name, horizon_ns, scale=scale, storm=storm
                )
            )
        merged.sort(key=lambda job: job.arrival)
        return merged


def run_workload_unit(unit) -> dict:
    """Execute one :class:`~repro.engine.units.WorkloadUnit`.

    Synthesizes the scenario, optionally generates a hard periodic set,
    routes the aperiodic jobs through the chosen server policy via the
    exact event-driven :func:`~repro.servers.sim.simulate_with_server`,
    and returns a payload of *exact* integers (totals, not means) so the
    engine cache round-trips bit-identically.
    """
    from repro.model.time import MS, US
    from repro.servers.server import DeferrableServer, PollingServer
    from repro.servers.sim import simulate_with_server

    horizon = unit.horizon_ms * MS
    storm = None
    if unit.storm_intensity > 1.0:
        storm = StormSpec(
            intensity=unit.storm_intensity,
            on_ns=unit.storm_on_ms * MS,
            off_ns=unit.storm_off_ms * MS,
        )
    synthesizer = ScenarioSynthesizer(unit.profile, seed=unit.seed)
    streams = (unit.stream,) if unit.stream else None
    jobs = synthesizer.synthesize(
        horizon, scale=unit.scale, storm=storm, streams=streams
    )

    tasks = []
    if unit.n_hard_tasks > 0 and unit.hard_utilization > 0:
        from repro.model.generator import TaskSetGenerator

        taskset = TaskSetGenerator(
            n_tasks=unit.n_hard_tasks,
            seed=unit.seed,
            period_min=unit.period_min,
            period_max=unit.period_max,
        ).generate(unit.hard_utilization)
        # simulate_with_server expects highest priority first (RM).
        tasks = sorted(taskset, key=lambda task: (task.period, task.name))

    if unit.server_kind == "background":
        server = None
    elif unit.server_kind == "polling":
        server = PollingServer(
            capacity=unit.server_capacity_us * US,
            period=unit.server_period_us * US,
        )
    elif unit.server_kind == "deferrable":
        server = DeferrableServer(
            capacity=unit.server_capacity_us * US,
            period=unit.server_period_us * US,
        )
    else:
        raise ValueError(f"unknown server kind {unit.server_kind!r}")

    misses, stats = simulate_with_server(
        tasks,
        jobs,
        horizon,
        server=server,
        server_priority=unit.server_priority,
    )
    return {
        "jobs": len(jobs),
        "hard_tasks": len(tasks),
        "hard_misses": misses,
        "completed": stats.completed,
        "unfinished": stats.unfinished,
        "total_response_ns": stats.total_response,
        "max_response_ns": stats.max_response,
    }
