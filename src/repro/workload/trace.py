"""The versioned arrival-trace ingest format, plus importers.

A trace is the raw material of the workload layer: per-stream samples of
*when* short jobs arrived and *how much* execution they needed.  The
native on-disk form is JSONL — one header object followed by one record
object per line::

    {"format": "repro-trace", "version": 1}
    {"stream": "frontend", "arrival_ns": 120000, "work_ns": 80000}
    {"stream": "frontend", "arrival_ns": 410000, "work_ns": 91000}

Records carry **absolute** arrival instants in nanoseconds (per stream,
non-decreasing after normalization) and positive execution demands.  The
header is mandatory; an unknown ``version`` fails loudly instead of
half-parsing, so the format can evolve without silent misreads.

Importers translate foreign shapes into this one:

* :func:`import_csv` — a flat CSV with ``arrival``/``work`` columns in
  any of the ``_ns``/``_us``/``_ms`` unit suffixes and an optional
  ``stream`` column;
* :func:`import_azure_invocations` — an Azure-Functions-style invocation
  log: one row per function, one numeric column per time bin holding the
  invocation *count* in that bin.  Counts are spread evenly inside their
  bin (deterministically — no RNG), and per-function execution times come
  from an optional durations table.
"""

from __future__ import annotations

import csv
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.model.time import MS, SEC, US
from repro.servers.server import AperiodicJob

#: On-disk format marker and version; bump the version (and teach
#: :func:`load_trace` the migration) whenever the record schema changes.
TRACE_FORMAT = "repro-trace"
TRACE_VERSION = 1

#: Column-suffix -> nanoseconds-per-unit, for the CSV importer.
_UNIT_SCALE = {"ns": 1, "us": US, "ms": MS, "s": SEC}


@dataclass(frozen=True)
class TraceRecord:
    """One observed job: ``work_ns`` of demand arriving at ``arrival_ns``."""

    stream: str
    arrival_ns: int
    work_ns: int

    def __post_init__(self) -> None:
        if not self.stream:
            raise ValueError("trace record needs a non-empty stream name")
        if self.arrival_ns < 0:
            raise ValueError(
                f"arrival_ns must be non-negative, got {self.arrival_ns!r}"
            )
        if self.work_ns <= 0:
            raise ValueError(
                f"work_ns must be positive, got {self.work_ns!r}"
            )


@dataclass(frozen=True)
class ArrivalTrace:
    """An immutable, per-stream-sorted collection of trace records."""

    records: Tuple[TraceRecord, ...]

    def __post_init__(self) -> None:
        ordered = tuple(
            sorted(self.records, key=lambda r: (r.stream, r.arrival_ns))
        )
        object.__setattr__(self, "records", ordered)

    def __len__(self) -> int:
        return len(self.records)

    @property
    def streams(self) -> Tuple[str, ...]:
        return tuple(sorted({r.stream for r in self.records}))

    def stream_records(self, stream: str) -> Tuple[TraceRecord, ...]:
        found = tuple(r for r in self.records if r.stream == stream)
        if not found:
            raise KeyError(
                f"trace has no stream {stream!r}; "
                f"streams: {', '.join(self.streams) or '(none)'}"
            )
        return found

    def jobs(self, stream: str) -> List[AperiodicJob]:
        """The stream replayed verbatim as aperiodic jobs."""
        return [
            AperiodicJob(arrival=r.arrival_ns, work=r.work_ns)
            for r in self.stream_records(stream)
        ]

    def interarrivals(self, stream: str) -> List[int]:
        """Inter-arrival samples (ns); the first is the delta from t=0.

        Including the initial offset keeps the sample count equal to the
        job count and makes a constant-rate trace fit to a profile whose
        synthesis reproduces the trace *exactly* (the replay-vs-synthetic
        differential pair relies on this).
        """
        arrivals = [r.arrival_ns for r in self.stream_records(stream)]
        previous = 0
        gaps = []
        for arrival in arrivals:
            gaps.append(arrival - previous)
            previous = arrival
        return gaps

    def works(self, stream: str) -> List[int]:
        return [r.work_ns for r in self.stream_records(stream)]

    def span_ns(self, stream: str) -> int:
        """Observation span: the last arrival (streams start at t=0)."""
        records = self.stream_records(stream)
        return records[-1].arrival_ns


def save_trace(trace: ArrivalTrace, path: Union[str, Path]) -> None:
    """Write the trace in the native JSONL format."""
    lines = [
        json.dumps(
            {"format": TRACE_FORMAT, "version": TRACE_VERSION},
            sort_keys=True,
            separators=(",", ":"),
        )
    ]
    for record in trace.records:
        lines.append(
            json.dumps(
                {
                    "stream": record.stream,
                    "arrival_ns": record.arrival_ns,
                    "work_ns": record.work_ns,
                },
                sort_keys=True,
                separators=(",", ":"),
            )
        )
    Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")


def load_trace(path: Union[str, Path]) -> ArrivalTrace:
    """Read a native JSONL trace; one-line errors on malformed input."""
    text = Path(path).read_text(encoding="utf-8")
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        raise ValueError(f"trace {path}: empty file")
    try:
        header = json.loads(lines[0])
    except ValueError as exc:
        raise ValueError(f"trace {path}: invalid header JSON ({exc})")
    if not isinstance(header, dict) or header.get("format") != TRACE_FORMAT:
        raise ValueError(
            f"trace {path}: missing {TRACE_FORMAT!r} header line"
        )
    if header.get("version") != TRACE_VERSION:
        raise ValueError(
            f"trace {path}: unsupported version {header.get('version')!r} "
            f"(this build reads version {TRACE_VERSION})"
        )
    records = []
    for index, line in enumerate(lines[1:], start=2):
        try:
            data = json.loads(line)
            records.append(
                TraceRecord(
                    stream=data["stream"],
                    arrival_ns=int(data["arrival_ns"]),
                    work_ns=int(data["work_ns"]),
                )
            )
        except (ValueError, KeyError, TypeError) as exc:
            raise ValueError(f"trace {path} line {index}: {exc}")
    return ArrivalTrace(records=tuple(records))


def _pick_column(
    fieldnames: Sequence[str], base: str
) -> Tuple[Optional[str], int]:
    """Find ``base_<unit>`` (or bare ``base``, read as ns) in a header."""
    for unit, scale in _UNIT_SCALE.items():
        name = f"{base}_{unit}"
        if name in fieldnames:
            return name, scale
    if base in fieldnames:
        return base, 1
    return None, 1


def import_csv(
    path: Union[str, Path], default_stream: str = "default"
) -> ArrivalTrace:
    """Import a flat CSV of arrivals.

    Required columns: ``arrival`` and ``work``, each either bare
    (nanoseconds) or suffixed ``_ns``/``_us``/``_ms``/``_s``.  An
    optional ``stream`` column separates streams; rows without one land
    in ``default_stream``.  Arrivals are normalized so each stream
    starts at its own first arrival's offset from the trace minimum
    (absolute epoch timestamps import cleanly).
    """
    with Path(path).open(newline="", encoding="utf-8") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None:
            raise ValueError(f"csv {path}: missing header row")
        arrival_col, arrival_scale = _pick_column(reader.fieldnames, "arrival")
        work_col, work_scale = _pick_column(reader.fieldnames, "work")
        if arrival_col is None or work_col is None:
            raise ValueError(
                f"csv {path}: need 'arrival' and 'work' columns "
                f"(optionally suffixed _ns/_us/_ms/_s); "
                f"got {reader.fieldnames}"
            )
        rows = []
        for index, row in enumerate(reader, start=2):
            try:
                stream = (row.get("stream") or default_stream).strip()
                arrival = int(round(float(row[arrival_col]) * arrival_scale))
                work = int(round(float(row[work_col]) * work_scale))
            except (TypeError, ValueError) as exc:
                raise ValueError(f"csv {path} row {index}: {exc}")
            rows.append((stream, arrival, work))
    if not rows:
        raise ValueError(f"csv {path}: no data rows")
    origin = min(arrival for _stream, arrival, _work in rows)
    return ArrivalTrace(
        records=tuple(
            TraceRecord(
                stream=stream, arrival_ns=arrival - origin, work_ns=work
            )
            for stream, arrival, work in rows
        )
    )


def load_azure_durations(
    path: Union[str, Path], unit_ns: int = MS
) -> Dict[str, int]:
    """Read a per-function durations table: ``{function: work_ns}``.

    Accepts the Azure-style shape — an id column first, plus an
    ``Average`` column — or any two-column ``id,duration`` CSV.  Values
    are multiplied by ``unit_ns`` (default: the file holds milliseconds).
    """
    durations: Dict[str, int] = {}
    with Path(path).open(newline="", encoding="utf-8") as handle:
        reader = csv.DictReader(handle)
        if not reader.fieldnames or len(reader.fieldnames) < 2:
            raise ValueError(f"durations {path}: need id + duration columns")
        id_col = reader.fieldnames[0]
        value_col = (
            "Average" if "Average" in reader.fieldnames
            else reader.fieldnames[1]
        )
        for index, row in enumerate(reader, start=2):
            try:
                durations[row[id_col].strip()] = max(
                    1, int(round(float(row[value_col]) * unit_ns))
                )
            except (TypeError, ValueError) as exc:
                raise ValueError(f"durations {path} row {index}: {exc}")
    return durations


def import_azure_invocations(
    path: Union[str, Path],
    bin_ns: int = 60 * SEC,
    work_ns: int = 50 * MS,
    durations: Optional[Mapping[str, int]] = None,
    max_streams: int = 0,
) -> ArrivalTrace:
    """Import an Azure-Functions-style invocation log.

    Expected shape: the *last non-numeric* header column names the
    function (the public trace carries ``HashOwner,HashApp,HashFunction``
    prefixes — the right-most is used), and every purely numeric header
    column is a time bin whose cell holds the invocation count in that
    bin.  Bin ``k`` covers ``[(k-1) * bin_ns, k * bin_ns)`` — the
    public trace labels minutes starting at "1".

    A count of ``c`` in one bin becomes ``c`` arrivals spread evenly at
    the midpoints of ``c`` equal slices of the bin — deterministic, no
    RNG — which preserves both the per-bin counts (so burstiness
    descriptors fit faithfully) and the total volume.  ``durations``
    maps function id to execution time in ns (see
    :func:`load_azure_durations`); unknown ids fall back to ``work_ns``.
    ``max_streams`` > 0 keeps only the busiest functions.
    """
    if bin_ns <= 0 or work_ns <= 0:
        raise ValueError("bin_ns and work_ns must be positive")
    with Path(path).open(newline="", encoding="utf-8") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None:
            raise ValueError(f"azure log {path}: missing header row")
        bin_cols = [
            name for name in reader.fieldnames if name.strip().isdigit()
        ]
        id_cols = [
            name for name in reader.fieldnames if not name.strip().isdigit()
        ]
        if not bin_cols or not id_cols:
            raise ValueError(
                f"azure log {path}: need an id column plus numeric bin "
                f"columns; got {reader.fieldnames}"
            )
        bin_cols.sort(key=lambda name: int(name))
        id_col = id_cols[-1]
        per_stream: Dict[str, List[TraceRecord]] = {}
        for index, row in enumerate(reader, start=2):
            stream = row[id_col].strip()
            if not stream:
                raise ValueError(f"azure log {path} row {index}: empty id")
            work = (
                durations.get(stream, work_ns)
                if durations is not None
                else work_ns
            )
            records = per_stream.setdefault(stream, [])
            for col in bin_cols:
                cell = (row.get(col) or "0").strip()
                try:
                    count = int(float(cell or "0"))
                except ValueError as exc:
                    raise ValueError(
                        f"azure log {path} row {index} bin {col}: {exc}"
                    )
                if count <= 0:
                    continue
                start = (int(col) - 1) * bin_ns
                for slot in range(count):
                    arrival = start + (2 * slot + 1) * bin_ns // (2 * count)
                    records.append(
                        TraceRecord(
                            stream=stream, arrival_ns=arrival, work_ns=work
                        )
                    )
    if not per_stream:
        raise ValueError(f"azure log {path}: no function rows")
    if max_streams > 0:
        busiest = sorted(
            per_stream, key=lambda s: (-len(per_stream[s]), s)
        )[:max_streams]
        per_stream = {s: per_stream[s] for s in busiest}
    return ArrivalTrace(
        records=tuple(
            record
            for stream in sorted(per_stream)
            for record in per_stream[stream]
        )
    )
