"""Calibration: fit overhead-model constants from measured micro-benchmarks.

The paper's overhead model is parameterized by measured constants — the
queue-operation costs δ/θ at two queue lengths plus the pure costs of
``release()`` / ``sch()`` / ``cnt_swth()``.  The repo ships the paper's
Core-i7 numbers (:data:`repro.overhead.model.PAPER_QUEUE_POINTS`), but a
production deployment wants constants measured on *its own* hardware.

:func:`calibrate` runs the instrumented-queue micro-benchmarks of
:mod:`repro.overhead.measure` (the same Section-3 methodology: maximal
observed single-operation cost at steady queue occupancy) at two queue
lengths, measures the scheduler-function pure costs, and packages the
result as a serializable :class:`CalibrationResult` whose
:meth:`~CalibrationResult.overhead_model` drops into every analysis and
simulation via the CLI's ``--overheads calib:<path>`` spec.

:func:`fitted_jitter_faults` closes the second loop: instead of the
fault layer's fixed uniform jitter bound, a fitted
:class:`~repro.workload.profile.EmpiricalDistribution` (e.g. of measured
release latencies) becomes the jitter model — the injector draws by
inverse transform from its quantile knots.

Timing caveat: the measured *numbers* are wall-clock and hence
machine-dependent; everything downstream of a saved calibration file is
deterministic (the file pins the constants).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence, Tuple, Union

from repro.faults.plan import FaultPlan, TaskFaults
from repro.overhead.model import OverheadModel
from repro.workload.profile import EmpiricalDistribution

#: Calibration document version.
CALIBRATION_VERSION = 1

#: Queue lengths measured by default (the paper's published pair).
DEFAULT_QUEUE_LENGTHS = (4, 64)


@dataclass(frozen=True)
class CalibrationResult:
    """Fitted overhead constants, ready to serialize or instantiate.

    ``points`` holds exactly two ``(n, delta_ns, theta_ns)`` calibration
    points — the same shape as the paper's published pair — so
    :meth:`overhead_model` can reuse the model's log2 interpolation.
    """

    points: Tuple[Tuple[int, int, int], ...]
    release_ns: int
    sch_ns: int
    cnt_swth_ns: int
    rounds: int
    seed: int
    version: int = CALIBRATION_VERSION

    def __post_init__(self) -> None:
        if len(self.points) != 2:
            raise ValueError(
                f"need exactly two calibration points, got {len(self.points)}"
            )
        (n0, d0, t0), (n1, d1, t1) = self.points
        if n0 >= n1:
            raise ValueError("calibration points must have increasing n")
        for value in (d0, t0, d1, t1):
            if value < 1:
                raise ValueError("queue-op costs must be >= 1 ns")
        if min(self.release_ns, self.sch_ns, self.cnt_swth_ns) < 0:
            raise ValueError("scheduler-function costs must be non-negative")
        object.__setattr__(
            self, "points", tuple(tuple(p) for p in self.points)
        )

    def overhead_model(
        self, tasks_per_core: int = 4, cache=None
    ) -> OverheadModel:
        """An :class:`OverheadModel` with queue costs interpolated at
        ``tasks_per_core`` from the *fitted* points."""
        from repro.cache.model import CachePenaltyModel
        from repro.overhead.model import _log_interpolate

        delta, theta = _log_interpolate(tasks_per_core, self.points)
        return OverheadModel(
            release_ns=self.release_ns,
            sch_ns=self.sch_ns,
            cnt_swth_ns=self.cnt_swth_ns,
            ready_op_ns=max(1, delta),
            sleep_op_ns=max(1, theta),
            cache=cache if cache is not None else CachePenaltyModel.none(),
        )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "version": self.version,
            "points": [list(p) for p in self.points],
            "release_ns": self.release_ns,
            "sch_ns": self.sch_ns,
            "cnt_swth_ns": self.cnt_swth_ns,
            "rounds": self.rounds,
            "seed": self.seed,
        }

    @staticmethod
    def from_dict(data: dict) -> "CalibrationResult":
        if not isinstance(data, dict):
            raise ValueError(
                f"calibration must be a JSON object, "
                f"got {type(data).__name__}"
            )
        if data.get("version") != CALIBRATION_VERSION:
            raise ValueError(
                f"unsupported calibration version {data.get('version')!r} "
                f"(this build reads version {CALIBRATION_VERSION})"
            )
        return CalibrationResult(
            points=tuple(
                (int(n), int(d), int(t)) for n, d, t in data["points"]
            ),
            release_ns=int(data["release_ns"]),
            sch_ns=int(data["sch_ns"]),
            cnt_swth_ns=int(data["cnt_swth_ns"]),
            rounds=int(data["rounds"]),
            seed=int(data["seed"]),
        )

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    @staticmethod
    def load(path: Union[str, Path]) -> "CalibrationResult":
        try:
            data = json.loads(Path(path).read_text(encoding="utf-8"))
        except ValueError as exc:
            raise ValueError(f"calibration {path}: invalid JSON ({exc})")
        return CalibrationResult.from_dict(data)

    def describe(self) -> str:
        (n0, d0, t0), (n1, d1, t1) = self.points
        return (
            f"calibration: delta(N={n0})={d0}ns delta(N={n1})={d1}ns "
            f"theta(N={n0})={t0}ns theta(N={n1})={t1}ns "
            f"release={self.release_ns}ns sch={self.sch_ns}ns "
            f"cnt_swth={self.cnt_swth_ns}ns"
        )


def calibrate(
    queue_lengths: Sequence[int] = DEFAULT_QUEUE_LENGTHS,
    rounds: int = 400,
    scheduler_rounds: int = 10,
    seed: int = 0,
) -> CalibrationResult:
    """Measure this machine's δ/θ and scheduler-function constants.

    Uses the maximal observed single-operation cost (the paper's
    statistic) for the queue points and the mean for the scheduler
    functions (their cost is load-independent in the model).
    """
    from repro.overhead.measure import (
        measure_queue_operations,
        measure_scheduler_functions,
    )

    if len(queue_lengths) != 2 or queue_lengths[0] >= queue_lengths[1]:
        raise ValueError(
            "queue_lengths must be two increasing values, got "
            f"{tuple(queue_lengths)!r}"
        )
    points = []
    for n in queue_lengths:
        measurement = measure_queue_operations(n, rounds=rounds, seed=seed)
        points.append(
            (
                n,
                max(1, measurement.ready_max_ns),
                max(1, measurement.sleep_max_ns),
            )
        )
    functions = measure_scheduler_functions(
        rounds=scheduler_rounds, seed=seed + 1
    )
    return CalibrationResult(
        points=tuple(points),
        release_ns=max(0, int(round(functions["release"]))),
        sch_ns=max(0, int(round(functions["sch"]))),
        cnt_swth_ns=max(0, int(round(functions["cnt_swth"]))),
        rounds=rounds,
        seed=seed,
    )


def fitted_jitter_faults(
    jitter: EmpiricalDistribution,
    tasks: Optional[Sequence[str]] = None,
    base: Optional[FaultPlan] = None,
) -> FaultPlan:
    """A fault plan whose release jitter follows a *fitted* distribution.

    ``jitter`` is an :class:`EmpiricalDistribution` of observed release
    latencies (fit one with ``EmpiricalDistribution.fit(samples)``).
    The returned plan keeps ``release_jitter_ns`` at the distribution's
    maximum — the bound analysis-side consumers see — while the injector
    draws each delay by inverse transform from the quantile knots.

    ``tasks`` limits the jitter to the named tasks (default: every
    task); ``base`` supplies the remaining fault parameters.
    """
    plan = base if base is not None else FaultPlan()
    spec_base = plan.default if tasks is None else TaskFaults()
    spec = TaskFaults(
        overrun_factor=spec_base.overrun_factor,
        overrun_probability=spec_base.overrun_probability,
        release_jitter_ns=max(0, int(round(jitter.max_value))),
        release_jitter_quantiles=jitter.quantiles,
    )
    if tasks is None:
        return FaultPlan(
            tasks=dict(plan.tasks),
            default=spec,
            overhead_spike_factor=plan.overhead_spike_factor,
            overhead_spike_probability=plan.overhead_spike_probability,
            migration_drop_probability=plan.migration_drop_probability,
            migration_delay_probability=plan.migration_delay_probability,
            migration_delay_ns=plan.migration_delay_ns,
            seed=plan.seed,
        )
    merged = dict(plan.tasks)
    for name in tasks:
        merged[name] = spec
    return FaultPlan(
        tasks=merged,
        default=plan.default,
        overhead_spike_factor=plan.overhead_spike_factor,
        overhead_spike_probability=plan.overhead_spike_probability,
        migration_drop_probability=plan.migration_drop_probability,
        migration_delay_probability=plan.migration_delay_probability,
        migration_delay_ns=plan.migration_delay_ns,
        seed=plan.seed,
    )
