"""Fitted workload profiles: empirical distributions + burstiness.

A :class:`WorkloadProfile` is what the synthesizer consumes: for every
stream of an ingested :class:`~repro.workload.trace.ArrivalTrace`, a
compact, serializable statistical fingerprint —

* **empirical distributions** of inter-arrival times and execution
  demands, stored as fixed-knot quantile sketches
  (:class:`EmpiricalDistribution`).  Sampling is inverse-transform with
  linear interpolation between knots, so a constant (zero-variance)
  stream round-trips *exactly*: every knot equals the constant and every
  sample returns it — the property the replay-vs-synthetic differential
  pair pins;
* **burstiness descriptors** (:class:`BurstDescriptor`): the index of
  dispersion of windowed arrival counts (1 ≈ Poisson, > 1 bursty,
  < 1 regular) and a fitted ON/OFF storm phase — mean storm length,
  mean gap between storms, and the rate multiplier inside a storm.

Profiles serialize to plain JSON (:meth:`WorkloadProfile.to_dict` /
``from_dict`` / ``save`` / ``load``) and the round trip reconstructs an
**equal** profile — the ingest→fit→export→re-ingest property the test
harness asserts.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Sequence, Tuple, Union

from repro.model.time import SEC

#: Profile document version (independent of the trace format version).
PROFILE_VERSION = 1

#: Default number of quantile knots per fitted distribution.
DEFAULT_KNOTS = 65

#: Default burstiness analysis window.
DEFAULT_WINDOW_NS = 1 * SEC

#: A window is part of a storm when its arrival count exceeds this
#: multiple of the mean per-window count.
STORM_THRESHOLD = 1.5


@dataclass(frozen=True)
class EmpiricalDistribution:
    """A quantile sketch of one positive-valued sample population.

    ``quantiles`` holds the values at evenly spaced cumulative
    probabilities 0, 1/(K-1), ..., 1 (non-decreasing).  ``n_samples``
    and ``mean`` describe the fitted population exactly.
    """

    quantiles: Tuple[float, ...]
    n_samples: int
    mean: float

    def __post_init__(self) -> None:
        if len(self.quantiles) < 1:
            raise ValueError("need at least one quantile knot")
        if self.n_samples < 1:
            raise ValueError("n_samples must be positive")
        if any(
            b < a for a, b in zip(self.quantiles, self.quantiles[1:])
        ):
            raise ValueError("quantiles must be non-decreasing")
        if self.quantiles[0] < 0:
            raise ValueError("quantiles must be non-negative")

    @staticmethod
    def fit(
        samples: Sequence[Union[int, float]], knots: int = DEFAULT_KNOTS
    ) -> "EmpiricalDistribution":
        """Fit a sketch to raw samples (order statistics, interpolated)."""
        if not samples:
            raise ValueError("cannot fit a distribution to zero samples")
        if knots < 1:
            raise ValueError("knots must be positive")
        ordered = sorted(float(s) for s in samples)
        n = len(ordered)
        if n == 1 or knots == 1:
            values = tuple([ordered[0]] * max(1, knots))
        else:
            values = []
            for j in range(knots):
                position = j * (n - 1) / (knots - 1)
                low = int(position)
                frac = position - low
                if low + 1 < n and frac > 0:
                    value = ordered[low] + (ordered[low + 1] - ordered[low]) * frac
                else:
                    value = ordered[low]
                values.append(float(value))
            values = tuple(values)
        return EmpiricalDistribution(
            quantiles=values,
            n_samples=n,
            mean=float(sum(ordered) / n),
        )

    @property
    def min_value(self) -> float:
        return self.quantiles[0]

    @property
    def max_value(self) -> float:
        return self.quantiles[-1]

    @property
    def is_constant(self) -> bool:
        return self.quantiles[0] == self.quantiles[-1]

    def sample(self, rng) -> int:
        """One inverse-transform draw, rounded to integer nanoseconds."""
        if len(self.quantiles) == 1 or self.is_constant:
            # No RNG consumption for degenerate sketches would make the
            # draw sequence depend on the fitted data; always consume
            # exactly one uniform per sample.
            rng.random()
            return int(round(self.quantiles[0]))
        position = rng.random() * (len(self.quantiles) - 1)
        low = int(position)
        frac = position - low
        if low + 1 < len(self.quantiles) and frac > 0:
            value = self.quantiles[low] + (
                self.quantiles[low + 1] - self.quantiles[low]
            ) * frac
        else:
            value = self.quantiles[low]
        return int(round(value))

    def cdf(self, x: float) -> float:
        """P(X <= x) under the piecewise-linear sketch."""
        q = self.quantiles
        if x < q[0]:
            return 0.0
        if x >= q[-1]:
            return 1.0
        k = len(q) - 1
        # Rightmost knot with value <= x; flat runs collapse to a jump.
        low = 0
        high = k
        while low < high:
            mid = (low + high + 1) // 2
            if q[mid] <= x:
                low = mid
            else:
                high = mid - 1
        i = low
        if i >= k or q[i + 1] == q[i]:
            return i / k
        return (i + (x - q[i]) / (q[i + 1] - q[i])) / k


@dataclass(frozen=True)
class BurstDescriptor:
    """Windowed burstiness statistics of one arrival stream."""

    window_ns: int
    index_of_dispersion: float
    on_ratio: float  # fraction of windows inside a storm phase
    intensity: float  # storm arrival rate / overall mean rate (>= 1)
    mean_on_ns: float  # mean storm run length
    mean_off_ns: float  # mean gap between storms

    @property
    def is_bursty(self) -> bool:
        return self.index_of_dispersion > 1.0

    @staticmethod
    def fit(
        arrivals: Sequence[int], window_ns: int = DEFAULT_WINDOW_NS
    ) -> "BurstDescriptor":
        if window_ns <= 0:
            raise ValueError("window_ns must be positive")
        if not arrivals:
            raise ValueError("cannot fit burstiness to zero arrivals")
        span = max(arrivals) + 1
        n_windows = max(1, -(-span // window_ns))
        counts = [0] * n_windows
        for arrival in arrivals:
            counts[arrival // window_ns] += 1
        mean = sum(counts) / n_windows
        if mean <= 0:
            return BurstDescriptor(window_ns, 0.0, 0.0, 1.0, 0.0, 0.0)
        variance = sum((c - mean) ** 2 for c in counts) / n_windows
        dispersion = variance / mean
        on = [c > STORM_THRESHOLD * mean for c in counts]
        on_windows = sum(on)
        if on_windows == 0 or on_windows == n_windows:
            return BurstDescriptor(
                window_ns=window_ns,
                index_of_dispersion=float(dispersion),
                on_ratio=float(on_windows / n_windows),
                intensity=1.0,
                mean_on_ns=0.0,
                mean_off_ns=0.0,
            )
        runs_on: List[int] = []
        runs_off: List[int] = []
        current = on[0]
        length = 0
        for flag in on:
            if flag == current:
                length += 1
            else:
                (runs_on if current else runs_off).append(length)
                current = flag
                length = 1
        (runs_on if current else runs_off).append(length)
        on_rate = sum(
            c for c, flag in zip(counts, on) if flag
        ) / on_windows
        return BurstDescriptor(
            window_ns=window_ns,
            index_of_dispersion=float(dispersion),
            on_ratio=float(on_windows / n_windows),
            intensity=float(max(1.0, on_rate / mean)),
            mean_on_ns=float(
                window_ns * sum(runs_on) / len(runs_on) if runs_on else 0.0
            ),
            mean_off_ns=float(
                window_ns * sum(runs_off) / len(runs_off)
                if runs_off
                else 0.0
            ),
        )


@dataclass(frozen=True)
class StreamProfile:
    """The fitted fingerprint of one arrival stream."""

    name: str
    interarrival: EmpiricalDistribution
    work: EmpiricalDistribution
    burst: BurstDescriptor
    n_jobs: int
    span_ns: int

    @property
    def rate_per_sec(self) -> float:
        """Mean arrival rate implied by the fitted inter-arrivals."""
        if self.interarrival.mean <= 0:
            return 0.0
        return SEC / self.interarrival.mean


@dataclass(frozen=True)
class WorkloadProfile:
    """A versioned bundle of fitted stream profiles."""

    streams: Tuple[StreamProfile, ...] = ()
    source: str = ""
    version: int = PROFILE_VERSION

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(s.name for s in self.streams)

    def stream(self, name: str) -> StreamProfile:
        for stream in self.streams:
            if stream.name == name:
                return stream
        raise KeyError(
            f"profile has no stream {name!r}; "
            f"streams: {', '.join(self.names) or '(none)'}"
        )

    # ------------------------------------------------------------------
    # Serialization (exact JSON round trip)
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "version": self.version,
            "source": self.source,
            "streams": [
                {
                    "name": s.name,
                    "n_jobs": s.n_jobs,
                    "span_ns": s.span_ns,
                    "interarrival": _dist_to_dict(s.interarrival),
                    "work": _dist_to_dict(s.work),
                    "burst": {
                        "window_ns": s.burst.window_ns,
                        "index_of_dispersion": s.burst.index_of_dispersion,
                        "on_ratio": s.burst.on_ratio,
                        "intensity": s.burst.intensity,
                        "mean_on_ns": s.burst.mean_on_ns,
                        "mean_off_ns": s.burst.mean_off_ns,
                    },
                }
                for s in self.streams
            ],
        }

    @staticmethod
    def from_dict(data: dict) -> "WorkloadProfile":
        if not isinstance(data, dict):
            raise ValueError(
                f"profile must be a JSON object, got {type(data).__name__}"
            )
        if data.get("version") != PROFILE_VERSION:
            raise ValueError(
                f"unsupported profile version {data.get('version')!r} "
                f"(this build reads version {PROFILE_VERSION})"
            )
        streams = []
        for entry in data.get("streams", ()):
            burst = entry["burst"]
            streams.append(
                StreamProfile(
                    name=entry["name"],
                    n_jobs=int(entry["n_jobs"]),
                    span_ns=int(entry["span_ns"]),
                    interarrival=_dist_from_dict(entry["interarrival"]),
                    work=_dist_from_dict(entry["work"]),
                    burst=BurstDescriptor(
                        window_ns=int(burst["window_ns"]),
                        index_of_dispersion=float(
                            burst["index_of_dispersion"]
                        ),
                        on_ratio=float(burst["on_ratio"]),
                        intensity=float(burst["intensity"]),
                        mean_on_ns=float(burst["mean_on_ns"]),
                        mean_off_ns=float(burst["mean_off_ns"]),
                    ),
                )
            )
        return WorkloadProfile(
            streams=tuple(streams),
            source=data.get("source", ""),
            version=PROFILE_VERSION,
        )

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    @staticmethod
    def load(path: Union[str, Path]) -> "WorkloadProfile":
        try:
            data = json.loads(Path(path).read_text(encoding="utf-8"))
        except ValueError as exc:
            raise ValueError(f"profile {path}: invalid JSON ({exc})")
        return WorkloadProfile.from_dict(data)


def _dist_to_dict(dist: EmpiricalDistribution) -> dict:
    return {
        "quantiles": list(dist.quantiles),
        "n_samples": dist.n_samples,
        "mean": dist.mean,
    }


def _dist_from_dict(data: dict) -> EmpiricalDistribution:
    return EmpiricalDistribution(
        quantiles=tuple(float(q) for q in data["quantiles"]),
        n_samples=int(data["n_samples"]),
        mean=float(data["mean"]),
    )


def fit_profile(
    trace,
    window_ns: int = DEFAULT_WINDOW_NS,
    knots: int = DEFAULT_KNOTS,
    source: str = "",
) -> WorkloadProfile:
    """Fit a :class:`WorkloadProfile` to every stream of a trace."""
    streams = []
    for name in trace.streams:
        arrivals = [r.arrival_ns for r in trace.stream_records(name)]
        streams.append(
            StreamProfile(
                name=name,
                interarrival=EmpiricalDistribution.fit(
                    trace.interarrivals(name), knots=knots
                ),
                work=EmpiricalDistribution.fit(
                    trace.works(name), knots=knots
                ),
                burst=BurstDescriptor.fit(arrivals, window_ns=window_ns),
                n_jobs=len(arrivals),
                span_ns=trace.span_ns(name),
            )
        )
    return WorkloadProfile(streams=tuple(streams), source=source)
