"""Trace-driven and bursty workload generation.

The experiments historically drew every arrival from UUniFast synthetic
periodic sets; this package adds the *realistic* side of the paper's
evaluation story — replaying measured arrival traces and synthesizing
storm-shaped load at controllable scale:

* :mod:`repro.workload.trace` — a versioned JSONL trace-ingest format
  (inter-arrival + execution-time samples per stream) with importers for
  plain CSV and Azure-Functions-style per-bin invocation logs;
* :mod:`repro.workload.profile` — per-stream empirical distributions
  (quantile sketches) plus burstiness descriptors (index of dispersion,
  ON/OFF storm phases), fitted from a trace and serializable round-trip;
* :mod:`repro.workload.synth` — the seeded :class:`ScenarioSynthesizer`:
  scales a fitted profile to arbitrary load, drives ON/OFF arrival
  storms, and routes the resulting short aperiodic jobs through the
  :mod:`repro.servers` machinery alongside hard periodic sets;
* :mod:`repro.workload.stats` — dependency-free Kolmogorov–Smirnov and
  chi-square statistics for the goodness-of-fit harness;
* :mod:`repro.workload.calibrate` — fits the overhead-model constants
  (the paper's δ/θ queue-op costs) from this implementation's own
  instrumented-queue micro-benchmarks, and feeds the fault layer's
  jitter model from fitted distributions instead of fixed bounds.

Determinism contract: every random draw flows through an RNG derived
from ``(seed, stream)`` by stable string seeding, so a synthesized
scenario regenerates bit-identically from the same seed in any process.
"""

from repro.workload.calibrate import (
    CalibrationResult,
    calibrate,
    fitted_jitter_faults,
)
from repro.workload.profile import (
    BurstDescriptor,
    EmpiricalDistribution,
    StreamProfile,
    WorkloadProfile,
    fit_profile,
)
from repro.workload.synth import (
    ScenarioSynthesizer,
    StormSpec,
    stream_rng,
)
from repro.workload.trace import (
    ArrivalTrace,
    TraceRecord,
    import_azure_invocations,
    import_csv,
    load_trace,
    save_trace,
)

__all__ = [
    "ArrivalTrace",
    "BurstDescriptor",
    "CalibrationResult",
    "EmpiricalDistribution",
    "ScenarioSynthesizer",
    "StormSpec",
    "StreamProfile",
    "TraceRecord",
    "WorkloadProfile",
    "calibrate",
    "fit_profile",
    "fitted_jitter_faults",
    "import_azure_invocations",
    "import_csv",
    "load_trace",
    "save_trace",
    "stream_rng",
]
