"""Dependency-free goodness-of-fit statistics for the test harness.

Implements the two classical tests the workload suite needs without
reaching for scipy (the container only guarantees numpy):

* two-sample **Kolmogorov–Smirnov**: the max gap between empirical CDFs,
  with the large-sample critical value
  ``c(alpha) * sqrt((n + m) / (n * m))``;
* **chi-square** homogeneity over shared bins, with the critical value
  from the Wilson–Hilferty cube approximation (accurate to well under a
  percent for the dof the suite uses).

Both are used as *seeded regression tests* with pinned tolerances, not
as online hypothesis tests: the harness fixes the seed, so a pass/fail
flip means the synthesizer's distribution drifted, not bad luck.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

#: c(alpha) coefficients for the two-sample KS critical value.
_KS_COEFFICIENTS = {
    0.10: 1.224,
    0.05: 1.358,
    0.01: 1.628,
    0.001: 1.949,
}

#: Standard-normal quantiles for the chi-square critical value.
_Z_QUANTILES = {
    0.10: 1.2815515655446004,
    0.05: 1.6448536269514722,
    0.01: 2.3263478740408408,
    0.001: 3.090232306167813,
}


def ks_statistic(
    a: Sequence[float], b: Sequence[float]
) -> float:
    """Two-sample KS statistic D = sup |F_a(x) - F_b(x)|."""
    if not a or not b:
        raise ValueError("both samples must be non-empty")
    xs = sorted(a)
    ys = sorted(b)
    n, m = len(xs), len(ys)
    i = j = 0
    d = 0.0
    while i < n and j < m:
        # Consume every observation at the current point on BOTH sides
        # before measuring, so ties (ubiquitous with integer-ns samples)
        # don't register a spurious mid-tie gap.
        x = xs[i] if xs[i] <= ys[j] else ys[j]
        while i < n and xs[i] <= x:
            i += 1
        while j < m and ys[j] <= x:
            j += 1
        d = max(d, abs(i / n - j / m))
    return d


def ks_critical(n: int, m: int, alpha: float = 0.01) -> float:
    """Large-sample two-sample KS critical value at level ``alpha``."""
    if alpha not in _KS_COEFFICIENTS:
        raise ValueError(
            f"unsupported alpha {alpha}; "
            f"choose from {sorted(_KS_COEFFICIENTS)}"
        )
    if n < 1 or m < 1:
        raise ValueError("sample sizes must be positive")
    return _KS_COEFFICIENTS[alpha] * math.sqrt((n + m) / (n * m))


def ks_two_sample(
    a: Sequence[float], b: Sequence[float], alpha: float = 0.01
) -> Tuple[float, float, bool]:
    """Returns ``(D, critical, consistent)`` for two samples."""
    d = ks_statistic(a, b)
    critical = ks_critical(len(a), len(b), alpha)
    return d, critical, d <= critical


def chi_square_critical(dof: int, alpha: float = 0.01) -> float:
    """Upper-tail chi-square critical value (Wilson–Hilferty)."""
    if dof < 1:
        raise ValueError("dof must be positive")
    if alpha not in _Z_QUANTILES:
        raise ValueError(
            f"unsupported alpha {alpha}; "
            f"choose from {sorted(_Z_QUANTILES)}"
        )
    z = _Z_QUANTILES[alpha]
    h = 2.0 / (9.0 * dof)
    return dof * (1.0 - h + z * math.sqrt(h)) ** 3


def chi_square_homogeneity(
    a: Sequence[float],
    b: Sequence[float],
    bins: int = 10,
    alpha: float = 0.01,
    min_expected: float = 5.0,
) -> Tuple[float, float, bool]:
    """Chi-square homogeneity test over shared quantile bins.

    Bin edges come from the pooled sample's quantiles, so every bin has
    comparable pooled mass; adjacent bins are merged until each expected
    count reaches ``min_expected``.  Returns ``(statistic, critical,
    consistent)``; degenerate pooled samples (a single distinct value)
    are trivially consistent.
    """
    if not a or not b:
        raise ValueError("both samples must be non-empty")
    pooled = sorted(list(a) + list(b))
    if pooled[0] == pooled[-1]:
        return 0.0, chi_square_critical(1, alpha), True
    edges = _quantile_edges(pooled, bins)
    counts_a = _bin_counts(a, edges)
    counts_b = _bin_counts(b, edges)
    counts_a, counts_b = _merge_small_bins(
        counts_a, counts_b, len(a), len(b), min_expected
    )
    n, m = len(a), len(b)
    total = n + m
    statistic = 0.0
    for ca, cb in zip(counts_a, counts_b):
        pooled_count = ca + cb
        if pooled_count == 0:
            continue
        expected_a = pooled_count * n / total
        expected_b = pooled_count * m / total
        statistic += (ca - expected_a) ** 2 / expected_a
        statistic += (cb - expected_b) ** 2 / expected_b
    dof = max(1, len(counts_a) - 1)
    critical = chi_square_critical(dof, alpha)
    return statistic, critical, statistic <= critical


def _quantile_edges(pooled: List[float], bins: int) -> List[float]:
    """Interior bin edges at the pooled sample's evenly spaced quantiles."""
    if bins < 2:
        raise ValueError("need at least two bins")
    n = len(pooled)
    edges: List[float] = []
    for k in range(1, bins):
        edge = pooled[min(n - 1, (k * n) // bins)]
        if not edges or edge > edges[-1]:
            edges.append(edge)
    return edges


def _bin_counts(
    samples: Sequence[float], edges: List[float]
) -> List[int]:
    """Counts per bin; bin i is (edges[i-1], edges[i]] conceptually."""
    counts = [0] * (len(edges) + 1)
    for x in samples:
        lo, hi = 0, len(edges)
        while lo < hi:
            mid = (lo + hi) // 2
            if x <= edges[mid]:
                hi = mid
            else:
                lo = mid + 1
        counts[lo] += 1
    return counts


def _merge_small_bins(
    counts_a: List[int],
    counts_b: List[int],
    n: int,
    m: int,
    min_expected: float,
) -> Tuple[List[int], List[int]]:
    """Merge adjacent bins until every expected count >= min_expected."""
    total = n + m
    merged_a: List[int] = []
    merged_b: List[int] = []
    acc_a = acc_b = 0
    for ca, cb in zip(counts_a, counts_b):
        acc_a += ca
        acc_b += cb
        pooled = acc_a + acc_b
        if (
            pooled * n / total >= min_expected
            and pooled * m / total >= min_expected
        ):
            merged_a.append(acc_a)
            merged_b.append(acc_b)
            acc_a = acc_b = 0
    if acc_a or acc_b:
        if merged_a:
            merged_a[-1] += acc_a
            merged_b[-1] += acc_b
        else:
            merged_a.append(acc_a)
            merged_b.append(acc_b)
    return merged_a, merged_b


def summarize_samples(samples: Sequence[float]) -> Dict[str, float]:
    """Mean/variance/dispersion summary used in test failure messages."""
    if not samples:
        raise ValueError("samples must be non-empty")
    n = len(samples)
    mean = sum(samples) / n
    variance = sum((x - mean) ** 2 for x in samples) / n
    return {
        "n": float(n),
        "mean": mean,
        "variance": variance,
        "dispersion": variance / mean if mean else 0.0,
    }
