"""repro — semi-partitioned multi-core real-time scheduling.

A production-quality reproduction of

    Yi Zhang, Nan Guan, Wang Yi:
    *Towards the Implementation and Evaluation of Semi-Partitioned
    Multi-Core Scheduling*.  PPES 2011 (OASIcs vol. 18), pp. 42-46.

The library provides:

* the sporadic task model and random task-set generation
  (:mod:`repro.model`);
* exact fixed-priority response-time analysis and utilization bounds
  (:mod:`repro.analysis`);
* partitioned scheduling baselines — FFD, WFD, BFD, NFD
  (:mod:`repro.partition`);
* semi-partitioned scheduling — FP-TS with RTA-based task splitting, plus
  the SPA1/SPA2 utilization-bound variants (:mod:`repro.semipart`);
* a discrete-event simulator of the paper's Linux scheduler architecture,
  with binomial-heap ready queues, red-black-tree sleep queues, split-task
  migration, and injected overheads (:mod:`repro.kernel`,
  :mod:`repro.structures`);
* the overhead model and measurement harness of the paper's Section 3
  (:mod:`repro.overhead`, :mod:`repro.cache`);
* the evaluation harness: acceptance-ratio sweeps, sensitivity ablations,
  simulation-backed validation (:mod:`repro.experiments`).

Quickstart::

    from repro.model import Task, TaskSet, MS
    from repro.semipart import fpts_partition

    ts = TaskSet([
        Task("video", wcet=6 * MS, period=10 * MS),
        Task("audio", wcet=3 * MS, period=5 * MS),
        Task("control", wcet=14 * MS, period=20 * MS),
    ]).assign_rate_monotonic()
    assignment = fpts_partition(ts, n_cores=2)
    print(assignment.describe())
"""

from repro.model import (
    MS,
    NS,
    SEC,
    US,
    Assignment,
    Task,
    TaskSet,
    TaskSetGenerator,
)
from repro.analysis import assignment_schedulable, core_schedulable
from repro.cache import CacheHierarchy, CachePenaltyModel
from repro.kernel import KernelSim, SimulationResult
from repro.overhead import OverheadModel, inflate_taskset
from repro.partition import (
    partition_first_fit_decreasing,
    partition_worst_fit_decreasing,
)
from repro.semipart import FptsConfig, fpts_partition

__version__ = "1.0.0"

__all__ = [
    "NS",
    "US",
    "MS",
    "SEC",
    "Task",
    "TaskSet",
    "TaskSetGenerator",
    "Assignment",
    "assignment_schedulable",
    "core_schedulable",
    "CacheHierarchy",
    "CachePenaltyModel",
    "KernelSim",
    "SimulationResult",
    "OverheadModel",
    "inflate_taskset",
    "partition_first_fit_decreasing",
    "partition_worst_fit_decreasing",
    "FptsConfig",
    "fpts_partition",
    "__version__",
]
