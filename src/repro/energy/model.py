"""Per-core frequency scaling and the energy ledger.

Guo & Lu (PAPERS.md) observe that fixed-priority scheduling with task
splitting *is* an energy-scheduling problem once per-core frequency
enters the overhead model: slowing a core dilates every nanosecond of
application work and kernel work on it, and the power drawn while doing
so follows the classic CMOS form ``P(f) = P_s + C · f^alpha``.

This module keeps all of that **integer-exact**:

* a core's frequency is a single rational scale (:class:`fractions.
  Fraction`), so time dilation ``1/f`` is one exact multiply per value,
  rounded half-up once — never a chain of drifting floats;
* power levels are integer milliwatts, and because ``1 mW x 1 ns =
  1 pJ`` *exactly*, every ledger entry is an integer picojoule count —
  ``busy + overhead + idle ≡ total`` holds as arithmetic identity, not
  within a tolerance;
* :func:`check_energy_ledger` replays the whole ledger from zero given
  only the per-core busy/overhead counters and the horizon, the same
  discipline as :func:`repro.servers.sim.check_server_ledger` for
  server budgets.

The defaults approximate one Nehalem-class core: ~0.35 W static/idle
draw and ~1.65 W dynamic at full clock, cubic in frequency.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import List, Optional, Sequence, Tuple, Union

#: Default static (and idle) power per core, milliwatts.
DEFAULT_STATIC_MW = 350
#: Default dynamic power per core at f = 1, milliwatts.
DEFAULT_DYNAMIC_MW = 1650
#: Default dynamic-power exponent (cubic: V scales with f).
DEFAULT_ALPHA = 3

FreqLike = Union[int, float, str, Fraction]


def round_half_up(value: Union[int, Fraction]) -> int:
    """Round a rational to the nearest integer, ties away from floor.

    Python's ``round`` is banker's rounding (``round(0.5) == 0``); every
    frequency-scaled quantity in this package rounds *half-up* instead so
    that compositions of scales stay monotone and reproducible.

    >>> round_half_up(Fraction(1, 2)), round_half_up(Fraction(5, 2))
    (1, 3)
    >>> round_half_up(Fraction(7, 10))
    1
    """
    if isinstance(value, int):
        return value
    num, den = value.numerator, value.denominator
    return (2 * num + den) // (2 * den)


def scale_ns(value: int, freq: Fraction) -> int:
    """Dilate ``value`` nanoseconds of full-speed work to frequency
    ``freq``: ``value / freq``, rounded half-up.  ``freq == 1`` is the
    exact identity."""
    if freq == 1:
        return value
    return round_half_up(Fraction(value, 1) / freq)


def as_fraction(value: FreqLike) -> Fraction:
    """Normalize a frequency given as int/float/str/Fraction to an exact
    :class:`Fraction`.

    Floats go through their *decimal repr* (``0.8`` becomes ``4/5``, not
    the binary ``3602879701896397/4503599627370496``), so CLI and config
    values mean what they say.
    """
    if isinstance(value, Fraction):
        freq = value
    elif isinstance(value, int):
        freq = Fraction(value)
    elif isinstance(value, float):
        freq = Fraction(str(value))
    elif isinstance(value, str):
        freq = Fraction(value.strip())
    else:
        raise TypeError(f"cannot interpret {value!r} as a frequency")
    if freq <= 0:
        raise ValueError(f"frequency must be positive, got {value!r}")
    return freq


def normalize_frequencies(
    frequencies: Optional[Union[FreqLike, Sequence[FreqLike]]],
    n_cores: int,
) -> Tuple[Fraction, ...]:
    """Per-core frequency vector: ``None`` means all cores at 1; a
    scalar broadcasts; a sequence must have exactly one entry per core."""
    if frequencies is None:
        return (Fraction(1),) * n_cores
    if isinstance(frequencies, (int, float, str, Fraction)):
        return (as_fraction(frequencies),) * n_cores
    freqs = tuple(as_fraction(value) for value in frequencies)
    if len(freqs) != n_cores:
        raise ValueError(
            f"frequencies has {len(freqs)} entries for {n_cores} cores"
        )
    return freqs


def parse_freq_spec(spec: str, n_cores: int) -> Tuple[Fraction, ...]:
    """Parse the CLI ``--freq`` syntax.

    ``"0.8"`` sets every core; ``"0.8,1.0"`` is positional per core;
    ``"0:0.8,2:0.5"`` names cores explicitly (the rest stay at 1).
    """
    spec = spec.strip()
    if not spec:
        raise ValueError("--freq: empty specification")
    parts = [part.strip() for part in spec.split(",") if part.strip()]
    if any(":" in part for part in parts):
        freqs = [Fraction(1)] * n_cores
        for part in parts:
            core_text, _, value = part.partition(":")
            try:
                core = int(core_text)
            except ValueError:
                raise ValueError(f"--freq: bad core index {core_text!r}")
            if not 0 <= core < n_cores:
                raise ValueError(
                    f"--freq: core {core} outside 0..{n_cores - 1}"
                )
            freqs[core] = as_fraction(value)
        return tuple(freqs)
    if len(parts) == 1:
        return normalize_frequencies(parts[0], n_cores)
    return normalize_frequencies(parts, n_cores)


@dataclass(frozen=True)
class PowerModel:
    """``P(f) = static_mw + dynamic_mw · f^alpha``, in integer mW.

    ``idle_mw`` is the clock-gated floor: static draw only.  The active
    level at a rational frequency is rounded half-up to an integer once,
    at ledger-construction time, so energy accrual stays exact.

    >>> PowerModel().active_mw(Fraction(1))
    2000
    >>> PowerModel().active_mw(Fraction(1, 2))
    556
    """

    static_mw: int = DEFAULT_STATIC_MW
    dynamic_mw: int = DEFAULT_DYNAMIC_MW
    alpha: int = DEFAULT_ALPHA

    def __post_init__(self) -> None:
        if self.static_mw < 0 or self.dynamic_mw < 0:
            raise ValueError("power levels must be non-negative")
        if self.alpha < 1:
            raise ValueError("alpha must be at least 1")

    @property
    def idle_mw(self) -> int:
        return self.static_mw

    def active_mw(self, freq: FreqLike) -> int:
        f = as_fraction(freq)
        return self.static_mw + round_half_up(self.dynamic_mw * f**self.alpha)

    def as_dict(self) -> dict:
        return {
            "static_mw": self.static_mw,
            "dynamic_mw": self.dynamic_mw,
            "alpha": self.alpha,
        }

    @staticmethod
    def from_dict(data: dict) -> "PowerModel":
        return PowerModel(
            static_mw=int(data["static_mw"]),
            dynamic_mw=int(data["dynamic_mw"]),
            alpha=int(data["alpha"]),
        )


@dataclass(frozen=True)
class CoreEnergy:
    """One core's row of the ledger.  All energies in integer pJ."""

    core: int
    freq_num: int
    freq_den: int
    active_mw: int
    busy_ns: int
    overhead_ns: int
    idle_ns: int
    busy_pj: int
    overhead_pj: int
    idle_pj: int

    @property
    def frequency(self) -> Fraction:
        return Fraction(self.freq_num, self.freq_den)

    @property
    def total_pj(self) -> int:
        return self.busy_pj + self.overhead_pj + self.idle_pj

    def as_dict(self) -> dict:
        return {
            "core": self.core,
            "freq": [self.freq_num, self.freq_den],
            "active_mw": self.active_mw,
            "busy_ns": self.busy_ns,
            "overhead_ns": self.overhead_ns,
            "idle_ns": self.idle_ns,
            "busy_pj": self.busy_pj,
            "overhead_pj": self.overhead_pj,
            "idle_pj": self.idle_pj,
        }

    @staticmethod
    def from_dict(data: dict) -> "CoreEnergy":
        num, den = data["freq"]
        return CoreEnergy(
            core=int(data["core"]),
            freq_num=int(num),
            freq_den=int(den),
            active_mw=int(data["active_mw"]),
            busy_ns=int(data["busy_ns"]),
            overhead_ns=int(data["overhead_ns"]),
            idle_ns=int(data["idle_ns"]),
            busy_pj=int(data["busy_pj"]),
            overhead_pj=int(data["overhead_pj"]),
            idle_pj=int(data["idle_pj"]),
        )


@dataclass(frozen=True)
class EnergyLedger:
    """Per-core busy/overhead/idle energy of one simulation.

    An *empty* ledger (no cores) marks a producer that does not account
    energy (the frozen legacy simulator); checkers skip it.
    """

    duration_ns: int = 0
    idle_mw: int = 0
    cores: Tuple[CoreEnergy, ...] = ()

    @staticmethod
    def empty() -> "EnergyLedger":
        return EnergyLedger()

    @property
    def is_empty(self) -> bool:
        return not self.cores

    @property
    def busy_pj(self) -> int:
        return sum(core.busy_pj for core in self.cores)

    @property
    def overhead_pj(self) -> int:
        return sum(core.overhead_pj for core in self.cores)

    @property
    def idle_pj(self) -> int:
        return sum(core.idle_pj for core in self.cores)

    @property
    def total_pj(self) -> int:
        return self.busy_pj + self.overhead_pj + self.idle_pj

    @property
    def average_power_mw(self) -> Fraction:
        """Mean platform power over the horizon (sum over cores), exact:
        total pJ over total ns is milliwatts by construction."""
        if self.duration_ns <= 0:
            return Fraction(0)
        return Fraction(self.total_pj, self.duration_ns)

    def energy_per_ns(self, window_ns: int) -> int:
        """Energy (pJ, half-up) a window of ``window_ns`` would cost at
        this run's mean power — used for energy-per-hyperperiod."""
        if self.duration_ns <= 0:
            return 0
        return round_half_up(Fraction(self.total_pj * window_ns,
                                      self.duration_ns))

    def as_dict(self) -> dict:
        return {
            "duration_ns": self.duration_ns,
            "idle_mw": self.idle_mw,
            "cores": [core.as_dict() for core in self.cores],
        }

    @staticmethod
    def from_dict(data: dict) -> "EnergyLedger":
        return EnergyLedger(
            duration_ns=int(data["duration_ns"]),
            idle_mw=int(data["idle_mw"]),
            cores=tuple(
                CoreEnergy.from_dict(core) for core in data["cores"]
            ),
        )


def check_energy_ledger(
    ledger: EnergyLedger,
    busy_ns: Sequence[int],
    overhead_ns: Sequence[int],
    duration: int,
) -> List[str]:
    """Replay the ledger from zero and report violations (empty = clean).

    Given only the independently-maintained per-core busy/overhead
    nanosecond counters and the horizon, every ledger field is forced:
    ``idle = duration - busy - overhead`` (clamped at zero: the final
    kernel op of a run may straddle the horizon, and its *full* cost is
    charged when it starts, matching the overhead counters), each energy
    is the matching time multiplied by the recorded power level, and the
    per-core total must equal ``busy + overhead + idle`` energy exactly.
    Mirrors :func:`repro.servers.sim.check_server_ledger`.
    """
    violations: List[str] = []
    if ledger.is_empty:
        return violations
    if ledger.duration_ns != duration:
        violations.append(
            f"ledger horizon {ledger.duration_ns} != run horizon {duration}"
        )
    if len(ledger.cores) != len(busy_ns):
        violations.append(
            f"ledger has {len(ledger.cores)} cores, run has {len(busy_ns)}"
        )
        return violations
    for index, core in enumerate(ledger.cores):
        where = f"core {index}"
        if core.core != index:
            violations.append(
                f"{where}: ledger row labelled core {core.core}"
            )
        if core.freq_den <= 0 or core.freq_num <= 0:
            violations.append(f"{where}: non-positive frequency")
            continue
        if core.busy_ns != busy_ns[index]:
            violations.append(
                f"{where}: busy {core.busy_ns} ns, counter says "
                f"{busy_ns[index]} ns"
            )
        if core.overhead_ns != overhead_ns[index]:
            violations.append(
                f"{where}: overhead {core.overhead_ns} ns, counter says "
                f"{overhead_ns[index]} ns"
            )
        expected_idle = max(0, duration - core.busy_ns - core.overhead_ns)
        if core.idle_ns != expected_idle:
            violations.append(
                f"{where}: idle {core.idle_ns} ns, replay says "
                f"{expected_idle} ns"
            )
        accounted = core.busy_ns + core.overhead_ns + core.idle_ns
        if accounted != max(duration, core.busy_ns + core.overhead_ns):
            violations.append(f"{where}: time does not sum to the horizon")
        if core.busy_pj != core.busy_ns * core.active_mw:
            violations.append(
                f"{where}: busy energy {core.busy_pj} pJ != "
                f"{core.busy_ns} ns x {core.active_mw} mW"
            )
        if core.overhead_pj != core.overhead_ns * core.active_mw:
            violations.append(
                f"{where}: overhead energy {core.overhead_pj} pJ != "
                f"{core.overhead_ns} ns x {core.active_mw} mW"
            )
        if core.idle_pj != core.idle_ns * ledger.idle_mw:
            violations.append(
                f"{where}: idle energy {core.idle_pj} pJ != "
                f"{core.idle_ns} ns x {ledger.idle_mw} mW"
            )
        if core.total_pj != core.busy_pj + core.overhead_pj + core.idle_pj:
            violations.append(
                f"{where}: energy does not balance (busy + overhead + "
                "idle != total)"
            )
    return violations
