"""Energy accounting: per-core DVFS scaling and the energy ledger.

See :mod:`repro.energy.model` for the arithmetic contract (rational
frequencies, integer-mW power, integer-pJ energies) and docs/energy.md
for the model semantics.
"""

from repro.energy.model import (
    DEFAULT_ALPHA,
    DEFAULT_DYNAMIC_MW,
    DEFAULT_STATIC_MW,
    CoreEnergy,
    EnergyLedger,
    PowerModel,
    as_fraction,
    check_energy_ledger,
    normalize_frequencies,
    parse_freq_spec,
    round_half_up,
    scale_ns,
)

__all__ = [
    "DEFAULT_ALPHA",
    "DEFAULT_DYNAMIC_MW",
    "DEFAULT_STATIC_MW",
    "CoreEnergy",
    "EnergyLedger",
    "PowerModel",
    "as_fraction",
    "check_energy_ledger",
    "normalize_frequencies",
    "parse_freq_spec",
    "round_half_up",
    "scale_ns",
]
