"""Acceptance-ratio experiment (the paper's Section 4 comparison, E3).

For each normalized utilization level ``u`` the harness generates
``sets_per_point`` random task sets with total utilization ``u * m``, runs
every registered algorithm's overhead-aware acceptance test, and reports
the fraction accepted — the *acceptance ratio* curves that Section 4
summarises as "semi-partitioned scheduling indeed outperforms partitioned
scheduling in the presence of realistic run-time overheads".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.algorithms import accept
from repro.model.generator import TaskSetGenerator
from repro.model.time import MS
from repro.overhead.model import OverheadModel


def default_utilization_grid() -> List[float]:
    """Normalized utilization points 0.600, 0.625, ..., 1.000."""
    return [round(0.600 + 0.025 * i, 3) for i in range(17)]


@dataclass
class AcceptanceConfig:
    """Parameters of one acceptance-ratio sweep."""

    n_cores: int = 4
    n_tasks: int = 12
    sets_per_point: int = 100
    utilizations: Sequence[float] = field(
        default_factory=default_utilization_grid
    )
    seed: int = 2011
    overheads: OverheadModel = field(default_factory=OverheadModel.zero)
    algorithms: Sequence[str] = ("FP-TS", "FFD", "WFD")
    period_min: int = 10 * MS
    period_max: int = 1000 * MS


@dataclass
class AcceptanceResult:
    """Acceptance ratios: ``ratios[algorithm][i]`` for ``utilizations[i]``."""

    config: AcceptanceConfig
    utilizations: List[float]
    ratios: Dict[str, List[float]]

    def ratio_at(self, algorithm: str, utilization: float) -> float:
        index = self.utilizations.index(utilization)
        return self.ratios[algorithm][index]

    def weighted_acceptance(self, algorithm: str) -> float:
        """Mean acceptance over the sweep (area under the curve)."""
        values = self.ratios[algorithm]
        return sum(values) / len(values) if values else 0.0

    def weighted_schedulability(self, algorithm: str) -> float:
        """Bastoni-style weighted schedulability: acceptance weighted by
        utilization, emphasising the high-load region where algorithms
        actually differ:  W = sum(u_i * S(u_i)) / sum(u_i)."""
        ratios = self.ratios[algorithm]
        weight_total = sum(self.utilizations)
        if weight_total == 0:
            return 0.0
        return (
            sum(u * s for u, s in zip(self.utilizations, ratios))
            / weight_total
        )

    def breakdown_utilization(
        self, algorithm: str, threshold: float = 0.5
    ) -> Optional[float]:
        """First normalized utilization where acceptance drops below
        ``threshold`` — the 'collapse point' of the algorithm."""
        for u, ratio in zip(self.utilizations, self.ratios[algorithm]):
            if ratio < threshold:
                return u
        return None

    def as_table(self) -> str:
        algorithms = list(self.ratios)
        header = f"{'U/m':>6} " + " ".join(f"{a:>8}" for a in algorithms)
        lines = [header]
        for i, u in enumerate(self.utilizations):
            row = f"{u:>6.3f} " + " ".join(
                f"{self.ratios[a][i]:>8.3f}" for a in algorithms
            )
            lines.append(row)
        return "\n".join(lines)


def run_acceptance(config: AcceptanceConfig) -> AcceptanceResult:
    """Execute the sweep.  Deterministic for a fixed config/seed."""
    ratios: Dict[str, List[float]] = {name: [] for name in config.algorithms}
    for point_index, normalized in enumerate(config.utilizations):
        total = normalized * config.n_cores
        generator = TaskSetGenerator(
            n_tasks=config.n_tasks,
            seed=config.seed + 7919 * point_index,
            period_min=config.period_min,
            period_max=config.period_max,
        )
        tasksets = generator.generate_many(total, config.sets_per_point)
        for name in config.algorithms:
            accepted = sum(
                1
                for ts in tasksets
                if accept(name, ts, config.n_cores, config.overheads)
            )
            ratios[name].append(accepted / len(tasksets))
    return AcceptanceResult(
        config=config,
        utilizations=list(config.utilizations),
        ratios=ratios,
    )
