"""Acceptance-ratio experiment (the paper's Section 4 comparison, E3).

For each normalized utilization level ``u`` the harness generates
``sets_per_point`` random task sets with total utilization ``u * m``, runs
every registered algorithm's overhead-aware acceptance test, and reports
the fraction accepted — the *acceptance ratio* curves that Section 4
summarises as "semi-partitioned scheduling indeed outperforms partitioned
scheduling in the presence of realistic run-time overheads".
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.engine import AcceptanceUnit, ExperimentEngine, ResultCache
from repro.model.time import MS
from repro.overhead.model import OverheadModel


def default_utilization_grid() -> List[float]:
    """Normalized utilization points 0.600, 0.625, ..., 1.000."""
    return [round(0.600 + 0.025 * i, 3) for i in range(17)]


@dataclass
class AcceptanceConfig:
    """Parameters of one acceptance-ratio sweep."""

    n_cores: int = 4
    n_tasks: int = 12
    sets_per_point: int = 100
    utilizations: Sequence[float] = field(
        default_factory=default_utilization_grid
    )
    seed: int = 2011
    overheads: OverheadModel = field(default_factory=OverheadModel.zero)
    algorithms: Sequence[str] = ("FP-TS", "FFD", "WFD")
    period_min: int = 10 * MS
    period_max: int = 1000 * MS
    #: Analyze each point's population with the vectorized batch kernels
    #: (bit-identical ratios; scalar fallback where inexpressible).
    batch: bool = False


@dataclass
class AcceptanceResult:
    """Acceptance ratios: ``ratios[algorithm][i]`` for ``utilizations[i]``."""

    config: AcceptanceConfig
    utilizations: List[float]
    ratios: Dict[str, List[float]]

    @property
    def failed_utilizations(self) -> List[float]:
        """Grid points whose work unit failed (NaN ratios) — non-empty
        only when the engine degraded gracefully instead of raising."""
        out = []
        for index, u in enumerate(self.utilizations):
            if any(
                math.isnan(self.ratios[name][index]) for name in self.ratios
            ):
                out.append(u)
        return out

    def ratio_at(self, algorithm: str, utilization: float) -> float:
        """Acceptance ratio at the grid point closest to ``utilization``.

        Matches with a tolerance (``math.isclose``) instead of float
        equality, so values reconstructed by arithmetic (``0.675`` from
        ``0.6 + 3 * 0.025``) still resolve to their grid point.
        """
        for index, candidate in enumerate(self.utilizations):
            if math.isclose(
                candidate, utilization, rel_tol=1e-9, abs_tol=1e-9
            ):
                return self.ratios[algorithm][index]
        raise KeyError(
            f"utilization {utilization!r} is not a grid point of this "
            f"sweep (grid: {self.utilizations})"
        )

    def weighted_acceptance(self, algorithm: str) -> float:
        """Mean acceptance over the sweep (area under the curve).

        Grid points whose work unit failed (NaN ratios) are excluded
        from the numerator *and* the denominator — a failed measurement
        must not poison the mean or silently count as a rejection.
        """
        values = [
            v for v in self.ratios[algorithm] if not math.isnan(v)
        ]
        return sum(values) / len(values) if values else 0.0

    def weighted_schedulability(self, algorithm: str) -> float:
        """Bastoni-style weighted schedulability: acceptance weighted by
        utilization, emphasising the high-load region where algorithms
        actually differ:  W = sum(u_i * S(u_i)) / sum(u_i).

        As for :meth:`weighted_acceptance`, failed grid points (NaN
        ratios) contribute to neither the weighted sum nor the weight
        total.
        """
        points = [
            (u, s)
            for u, s in zip(self.utilizations, self.ratios[algorithm])
            if not math.isnan(s)
        ]
        weight_total = sum(u for u, _ in points)
        if weight_total == 0:
            return 0.0
        return sum(u * s for u, s in points) / weight_total

    def breakdown_utilization(
        self, algorithm: str, threshold: float = 0.5
    ) -> Optional[float]:
        """First normalized utilization where acceptance drops below
        ``threshold`` — the 'collapse point' of the algorithm."""
        for u, ratio in zip(self.utilizations, self.ratios[algorithm]):
            if ratio < threshold:
                return u
        return None

    def as_table(self) -> str:
        algorithms = list(self.ratios)
        header = f"{'U/m':>6} " + " ".join(f"{a:>8}" for a in algorithms)
        lines = [header]
        for i, u in enumerate(self.utilizations):
            row = f"{u:>6.3f} " + " ".join(
                f"{self.ratios[a][i]:>8.3f}" for a in algorithms
            )
            lines.append(row)
        return "\n".join(lines)


def acceptance_units(config: AcceptanceConfig) -> List[AcceptanceUnit]:
    """Decompose a sweep into per-utilization-point work units.

    Seed contract (kept from the original serial loop): point ``i`` uses
    ``config.seed + 7919 * i``, so units are independent of execution
    order and process placement.
    """
    return [
        AcceptanceUnit(
            n_cores=config.n_cores,
            n_tasks=config.n_tasks,
            sets_per_point=config.sets_per_point,
            utilization=normalized,
            seed=config.seed + 7919 * point_index,
            algorithms=tuple(config.algorithms),
            overheads=config.overheads,
            period_min=config.period_min,
            period_max=config.period_max,
            batch=config.batch,
        )
        for point_index, normalized in enumerate(config.utilizations)
    ]


def assemble_acceptance(
    config: AcceptanceConfig, payloads: Sequence[Optional[dict]]
) -> AcceptanceResult:
    """Merge per-unit payloads (in unit order) into an AcceptanceResult.

    A ``None`` payload — a unit the engine gave up on after exhausting
    its retries — yields ``NaN`` ratios at that grid point (see
    :attr:`AcceptanceResult.failed_utilizations`) instead of an
    exception, so one bad unit cannot sink a whole sweep.
    """
    ratios: Dict[str, List[float]] = {name: [] for name in config.algorithms}
    for payload in payloads:
        if payload is None:
            for name in config.algorithms:
                ratios[name].append(math.nan)
            continue
        total = payload["total"]
        for name in config.algorithms:
            ratios[name].append(payload["accepted"][name] / total)
    return AcceptanceResult(
        config=config,
        utilizations=list(config.utilizations),
        ratios=ratios,
    )


def run_acceptance(
    config: AcceptanceConfig,
    jobs: int = 1,
    cache: Union[ResultCache, str, None] = None,
    engine: Optional[ExperimentEngine] = None,
) -> AcceptanceResult:
    """Execute the sweep.  Deterministic for a fixed config/seed:
    ``jobs > 1`` and caching change only where units execute, never the
    result.  Pass an :class:`ExperimentEngine` to share cache/stat
    counters across several sweeps (the campaign and sensitivity
    harnesses do)."""
    if engine is None:
        engine = ExperimentEngine(jobs=jobs, cache=cache)
    payloads = engine.run(acceptance_units(config))
    return assemble_acceptance(config, payloads)
