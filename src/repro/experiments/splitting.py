"""Splitting and migration statistics (E7, ablation).

The paper's "major concern about semi-partitioned scheduling" is the extra
context-switch overhead caused by task splitting.  This experiment measures
how much splitting FP-TS actually performs as utilization grows: the number
of split tasks per accepted set, subtasks per split, and the migration rate
the splits induce at run time (migrations per second, analytically
``sum over split tasks of (k_i - 1) / T_i``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.experiments.algorithms import build_assignment
from repro.model.generator import TaskSetGenerator
from repro.model.time import MS, SEC
from repro.overhead.model import OverheadModel


@dataclass
class SplittingStats:
    """Aggregates for one normalized-utilization point."""

    normalized_utilization: float
    sets_accepted: int = 0
    sets_total: int = 0
    split_tasks_total: int = 0
    subtasks_total: int = 0
    migrations_per_second_total: float = 0.0

    @property
    def acceptance(self) -> float:
        return self.sets_accepted / self.sets_total if self.sets_total else 0.0

    @property
    def mean_split_tasks(self) -> float:
        if not self.sets_accepted:
            return 0.0
        return self.split_tasks_total / self.sets_accepted

    @property
    def mean_subtasks_per_split(self) -> float:
        if not self.split_tasks_total:
            return 0.0
        return self.subtasks_total / self.split_tasks_total

    @property
    def mean_migrations_per_second(self) -> float:
        if not self.sets_accepted:
            return 0.0
        return self.migrations_per_second_total / self.sets_accepted


def splitting_statistics(
    utilizations: Sequence[float] = (0.6, 0.7, 0.8, 0.9, 0.95, 1.0),
    algorithm: str = "FP-TS",
    n_cores: int = 4,
    n_tasks: int = 12,
    sets_per_point: int = 50,
    seed: int = 11,
    model: OverheadModel = OverheadModel.zero(),
    period_min: int = 10 * MS,
    period_max: int = 1000 * MS,
) -> List[SplittingStats]:
    """Measure split structure produced by ``algorithm`` across utilizations."""
    rows: List[SplittingStats] = []
    for point_index, normalized in enumerate(utilizations):
        stats = SplittingStats(normalized_utilization=normalized)
        generator = TaskSetGenerator(
            n_tasks=n_tasks,
            seed=seed + 104729 * point_index,
            period_min=period_min,
            period_max=period_max,
        )
        for _ in range(sets_per_point):
            taskset = generator.generate(normalized * n_cores)
            stats.sets_total += 1
            assignment = build_assignment(algorithm, taskset, n_cores, model)
            if assignment is None:
                continue
            stats.sets_accepted += 1
            stats.split_tasks_total += assignment.n_split_tasks
            migrations_per_second = 0.0
            for split in assignment.split_tasks.values():
                stats.subtasks_total += len(split.subtasks)
                migrations_per_second += (
                    split.migration_count_per_job * SEC / split.task.period
                )
            stats.migrations_per_second_total += migrations_per_second
        rows.append(stats)
    return rows


def splitting_table(rows: List[SplittingStats]) -> str:
    header = (
        f"{'U/m':>6} {'accept':>7} {'splits/set':>11} "
        f"{'subtasks/split':>15} {'migr/s':>9}"
    )
    lines = [header]
    for row in rows:
        lines.append(
            f"{row.normalized_utilization:>6.3f} {row.acceptance:>7.3f} "
            f"{row.mean_split_tasks:>11.3f} "
            f"{row.mean_subtasks_per_split:>15.3f} "
            f"{row.mean_migrations_per_second:>9.3f}"
        )
    return "\n".join(lines)
