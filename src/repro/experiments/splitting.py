"""Splitting and migration statistics (E7, ablation).

The paper's "major concern about semi-partitioned scheduling" is the extra
context-switch overhead caused by task splitting.  This experiment measures
how much splitting FP-TS actually performs as utilization grows: the number
of split tasks per accepted set, subtasks per split, and the migration rate
the splits induce at run time (migrations per second, analytically
``sum over split tasks of (k_i - 1) / T_i``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

from repro.engine import ExperimentEngine, ResultCache, SplittingUnit
from repro.model.time import MS
from repro.overhead.model import OverheadModel


@dataclass
class SplittingStats:
    """Aggregates for one normalized-utilization point."""

    normalized_utilization: float
    sets_accepted: int = 0
    sets_total: int = 0
    split_tasks_total: int = 0
    subtasks_total: int = 0
    migrations_per_second_total: float = 0.0

    @property
    def acceptance(self) -> float:
        return self.sets_accepted / self.sets_total if self.sets_total else 0.0

    @property
    def mean_split_tasks(self) -> float:
        if not self.sets_accepted:
            return 0.0
        return self.split_tasks_total / self.sets_accepted

    @property
    def mean_subtasks_per_split(self) -> float:
        if not self.split_tasks_total:
            return 0.0
        return self.subtasks_total / self.split_tasks_total

    @property
    def mean_migrations_per_second(self) -> float:
        if not self.sets_accepted:
            return 0.0
        return self.migrations_per_second_total / self.sets_accepted


def splitting_statistics(
    utilizations: Sequence[float] = (0.6, 0.7, 0.8, 0.9, 0.95, 1.0),
    algorithm: str = "FP-TS",
    n_cores: int = 4,
    n_tasks: int = 12,
    sets_per_point: int = 50,
    seed: int = 11,
    model: OverheadModel = OverheadModel.zero(),
    period_min: int = 10 * MS,
    period_max: int = 1000 * MS,
    jobs: int = 1,
    cache: Union[ResultCache, str, None] = None,
    engine: Optional[ExperimentEngine] = None,
) -> List[SplittingStats]:
    """Measure split structure produced by ``algorithm`` across utilizations.

    Each utilization point is one work unit (seed contract kept from the
    original loop: ``seed + 104729 * point_index``), so the result is
    identical for any ``jobs``/``cache`` setting.
    """
    if engine is None:
        engine = ExperimentEngine(jobs=jobs, cache=cache)
    units = [
        SplittingUnit(
            algorithm=algorithm,
            n_cores=n_cores,
            n_tasks=n_tasks,
            sets_per_point=sets_per_point,
            utilization=normalized,
            seed=seed + 104729 * point_index,
            overheads=model,
            period_min=period_min,
            period_max=period_max,
        )
        for point_index, normalized in enumerate(utilizations)
    ]
    payloads = engine.run(units)
    return [
        SplittingStats(
            normalized_utilization=normalized,
            sets_accepted=payload["sets_accepted"],
            sets_total=payload["sets_total"],
            split_tasks_total=payload["split_tasks_total"],
            subtasks_total=payload["subtasks_total"],
            migrations_per_second_total=payload[
                "migrations_per_second_total"
            ],
        )
        for normalized, payload in zip(utilizations, payloads)
    ]


def splitting_table(rows: List[SplittingStats]) -> str:
    header = (
        f"{'U/m':>6} {'accept':>7} {'splits/set':>11} "
        f"{'subtasks/split':>15} {'migr/s':>9}"
    )
    lines = [header]
    for row in rows:
        lines.append(
            f"{row.normalized_utilization:>6.3f} {row.acceptance:>7.3f} "
            f"{row.mean_split_tasks:>11.3f} "
            f"{row.mean_subtasks_per_split:>15.3f} "
            f"{row.mean_migrations_per_second:>9.3f}"
        )
    return "\n".join(lines)
