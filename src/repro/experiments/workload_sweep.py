"""Trace-driven workload sweep: scale x storm-intensity grid (E9).

The realistic counterpart of the synthetic acceptance sweeps: start from
a *fitted* :class:`~repro.workload.profile.WorkloadProfile` (ingested
from a real trace, e.g. an Azure-Functions-style invocation log), then
sweep scenario **scale** (load multiplier) against **storm intensity**
(the ON-phase rate multiplier) and watch hard-deadline misses and
aperiodic response degrade.  Storm duration (``storm_on_ms`` /
``storm_off_ms``) is part of the config, so a second sweep over duration
is just another config.

Every grid point is one :class:`~repro.engine.WorkloadUnit`, so the
sweep inherits the engine's process pool, content-addressed cache,
journal/resume, and failure manifests.  Seed contract: point ``i`` uses
``seed + 7919 * i`` (the acceptance sweep's prime), and the same base
seed is shared across the storm axis so two intensities differ only by
the storm overlay, not by the sampled baseline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.engine import ExperimentEngine, ResultCache, WorkloadUnit
from repro.model.time import MS
from repro.workload.profile import WorkloadProfile


@dataclass
class WorkloadSweepConfig:
    """Parameters of one scale x storm-intensity sweep."""

    profile: WorkloadProfile
    horizon_ms: int = 2000
    seed: int = 2011
    scales: Sequence[float] = (1.0,)
    storm_intensities: Sequence[float] = (1.0, 2.0, 4.0)
    storm_on_ms: int = 100
    storm_off_ms: int = 400
    stream: str = ""  # empty = all streams in the profile
    server_kind: str = "deferrable"
    server_capacity_us: int = 2000
    server_period_us: int = 10000
    server_priority: int = 0
    n_hard_tasks: int = 4
    hard_utilization: float = 0.5
    period_min: int = 10 * MS
    period_max: int = 1000 * MS


@dataclass
class WorkloadSweepResult:
    """Per-grid-point payloads: ``cells[(scale, intensity)]``."""

    config: WorkloadSweepConfig
    cells: Dict[Tuple[float, float], Optional[dict]]

    @property
    def failed_points(self) -> List[Tuple[float, float]]:
        return [key for key, payload in self.cells.items() if payload is None]

    def cell(self, scale: float, intensity: float) -> dict:
        for (s, i), payload in self.cells.items():
            if math.isclose(s, scale, rel_tol=1e-9) and math.isclose(
                i, intensity, rel_tol=1e-9
            ):
                if payload is None:
                    raise KeyError(
                        f"grid point ({scale}, {intensity}) failed"
                    )
                return payload
        raise KeyError(
            f"({scale!r}, {intensity!r}) is not a grid point of this sweep"
        )

    def as_table(self) -> str:
        header = (
            f"{'scale':>7} {'storm':>6} {'jobs':>7} {'done':>7} "
            f"{'misses':>7} {'mean_resp_us':>12} {'max_resp_us':>12}"
        )
        lines = [header]
        for (scale, intensity), payload in sorted(self.cells.items()):
            if payload is None:
                lines.append(
                    f"{scale:>7.2f} {intensity:>6.2f} "
                    + "FAILED".rjust(7)
                )
                continue
            completed = payload["completed"]
            mean_us = (
                payload["total_response_ns"] / completed / 1000.0
                if completed
                else 0.0
            )
            lines.append(
                f"{scale:>7.2f} {intensity:>6.2f} {payload['jobs']:>7} "
                f"{completed:>7} {payload['hard_misses']:>7} "
                f"{mean_us:>12.1f} "
                f"{payload['max_response_ns'] / 1000.0:>12.1f}"
            )
        return "\n".join(lines)


def workload_units(config: WorkloadSweepConfig) -> List[WorkloadUnit]:
    """Decompose the grid into work units, scale-major order.

    The unit seed advances with the *scale* index only: along the storm
    axis every unit draws the same baseline sample sequence, so two
    intensities differ exactly by the storm overlay (cache fingerprints
    still differ — the intensity is part of the unit config).
    """
    n_intensities = max(1, len(tuple(config.storm_intensities)))
    units = []
    for index, (scale, intensity) in enumerate(grid_points(config)):
        units.append(
            WorkloadUnit(
                profile=config.profile,
                horizon_ms=config.horizon_ms,
                seed=config.seed + 7919 * (index // n_intensities),
                scale=scale,
                stream=config.stream,
                storm_intensity=intensity,
                storm_on_ms=config.storm_on_ms,
                storm_off_ms=config.storm_off_ms,
                server_kind=config.server_kind,
                server_capacity_us=config.server_capacity_us,
                server_period_us=config.server_period_us,
                server_priority=config.server_priority,
                n_hard_tasks=config.n_hard_tasks,
                hard_utilization=config.hard_utilization,
                period_min=config.period_min,
                period_max=config.period_max,
            )
        )
    return units


def grid_points(
    config: WorkloadSweepConfig,
) -> List[Tuple[float, float]]:
    return [
        (scale, intensity)
        for scale in config.scales
        for intensity in config.storm_intensities
    ]


def assemble_workload_sweep(
    config: WorkloadSweepConfig, payloads: Sequence[Optional[dict]]
) -> WorkloadSweepResult:
    cells: Dict[Tuple[float, float], Optional[dict]] = {}
    for point, payload in zip(grid_points(config), payloads):
        cells[point] = payload
    return WorkloadSweepResult(config=config, cells=cells)


def run_workload_sweep(
    config: WorkloadSweepConfig,
    jobs: int = 1,
    cache: Union[ResultCache, str, None] = None,
    engine: Optional[ExperimentEngine] = None,
) -> WorkloadSweepResult:
    """Execute the sweep; deterministic for a fixed config/seed."""
    if engine is None:
        engine = ExperimentEngine(jobs=jobs, cache=cache)
    payloads = engine.run(workload_units(config))
    return assemble_workload_sweep(config, payloads)
