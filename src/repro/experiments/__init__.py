"""Evaluation harness reproducing Section 4 of the paper.

* :mod:`repro.experiments.algorithms` — the algorithm registry (FP-TS, FFD,
  WFD, and the extensions) with uniform overhead-aware acceptance tests;
* :mod:`repro.experiments.acceptance` — acceptance-ratio sweeps over
  normalized utilization (the paper's headline comparison, E3);
* :mod:`repro.experiments.sensitivity` — overhead-magnitude ablation (E5);
* :mod:`repro.experiments.validate` — simulation-backed soundness check of
  accepted task sets (E6);
* :mod:`repro.experiments.splitting` — split/migration statistics (E7).
"""

from repro.experiments.algorithms import (
    ALGORITHMS,
    AlgorithmSpec,
    accept,
    build_assignment,
)
from repro.experiments.acceptance import (
    AcceptanceConfig,
    AcceptanceResult,
    run_acceptance,
)
from repro.experiments.sensitivity import run_overhead_sensitivity
from repro.experiments.validate import ValidationReport, validate_by_simulation
from repro.experiments.splitting import SplittingStats, splitting_statistics
from repro.experiments.breakdown import (
    BreakdownResult,
    critical_scaling_factor,
    run_breakdown,
)
from repro.experiments.campaign import (
    CRITERIA_AXES,
    CampaignRecord,
    CampaignResult,
    run_campaign,
)
from repro.experiments.plot import (
    acceptance_plot,
    ascii_plot,
    pareto_front,
    pareto_table,
)

__all__ = [
    "ALGORITHMS",
    "AlgorithmSpec",
    "accept",
    "build_assignment",
    "AcceptanceConfig",
    "AcceptanceResult",
    "run_acceptance",
    "run_overhead_sensitivity",
    "ValidationReport",
    "validate_by_simulation",
    "SplittingStats",
    "splitting_statistics",
    "BreakdownResult",
    "critical_scaling_factor",
    "run_breakdown",
    "CRITERIA_AXES",
    "CampaignRecord",
    "CampaignResult",
    "run_campaign",
    "acceptance_plot",
    "ascii_plot",
    "pareto_front",
    "pareto_table",
]
