"""Simulation-backed validation of analysis verdicts (E6).

The implicit soundness claim behind the paper's methodology: a task set
accepted by the overhead-aware analysis really does meet all deadlines when
executed by the kernel scheduler with those overheads.  This experiment
closes the loop with our simulator:

1. run the overhead-aware FP-TS analysis on random task sets;
2. for every accepted set, simulate the produced assignment under the same
   overhead model (synchronous releases — the critical instant — worst-case
   execution every job);
3. count deadline misses (expected: zero) and validate the trace
   invariants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.experiments.algorithms import build_assignment
from repro.kernel.sim import KernelSim
from repro.model.generator import TaskSetGenerator
from repro.model.time import MS, SEC
from repro.overhead.model import OverheadModel
from repro.trace.validate import validate_trace


@dataclass
class ValidationReport:
    """Outcome of one validation campaign."""

    algorithm: str
    sets_tested: int = 0
    sets_accepted: int = 0
    sets_simulated: int = 0
    deadline_misses: int = 0
    trace_violations: int = 0
    details: List[str] = field(default_factory=list)

    @property
    def sound(self) -> bool:
        return self.deadline_misses == 0 and self.trace_violations == 0

    def as_table(self) -> str:
        return (
            f"validation of {self.algorithm}: tested={self.sets_tested} "
            f"accepted={self.sets_accepted} simulated={self.sets_simulated} "
            f"misses={self.deadline_misses} "
            f"trace-violations={self.trace_violations} "
            f"sound={self.sound}"
        )


def validate_by_simulation(
    algorithm: str = "FP-TS",
    n_cores: int = 4,
    n_tasks: int = 8,
    normalized_utilization: float = 0.85,
    sets: int = 10,
    seed: int = 7,
    model: Optional[OverheadModel] = None,
    horizon: Optional[int] = None,
    check_traces: bool = True,
    period_min: int = 10 * MS,
    period_max: int = 100 * MS,
) -> ValidationReport:
    """Run the campaign; see module docstring.

    The default period range is narrowed (10-100 ms) so a 1-2 s horizon
    covers many jobs of every task.
    """
    if model is None:
        model = OverheadModel.paper_core_i7(
            tasks_per_core=max(1, n_tasks // n_cores)
        )
    report = ValidationReport(algorithm=algorithm)
    generator = TaskSetGenerator(
        n_tasks=n_tasks,
        seed=seed,
        period_min=period_min,
        period_max=period_max,
    )
    for index in range(sets):
        taskset = generator.generate(normalized_utilization * n_cores)
        report.sets_tested += 1
        assignment = build_assignment(algorithm, taskset, n_cores, model)
        if assignment is None:
            continue
        report.sets_accepted += 1
        # Simulate the overhead-aware assignment itself: its entry budgets
        # include the analysis inflation (the head-room reserved for kernel
        # overheads), while every job executes only its *raw* WCET — the
        # exact situation the analysis promises to cover.
        raw_work = {task.name: task.wcet for task in taskset}
        sim_horizon = horizon
        if sim_horizon is None:
            longest = max(task.period for task in taskset)
            sim_horizon = min(4 * SEC, 10 * longest)
        sim = KernelSim(
            assignment,
            model,
            duration=sim_horizon,
            record_trace=check_traces,
            execution_times=raw_work,
        )
        result = sim.run()
        report.sets_simulated += 1
        if result.miss_count:
            report.deadline_misses += result.miss_count
            report.details.append(
                f"set {index}: {result.miss_count} misses "
                f"(first: {result.misses[0]})"
            )
        if check_traces:
            violations = validate_trace(result.trace, assignment)
            if violations:
                report.trace_violations += len(violations)
                report.details.append(
                    f"set {index}: {len(violations)} trace violations "
                    f"(first: {violations[0]})"
                )
    return report
