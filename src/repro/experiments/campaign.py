"""Factorial experiment campaigns (extension).

Runs the acceptance experiment over a grid of platform/workload
configurations — core counts x task counts x algorithms x overhead models
— and collects long-format records suitable for external analysis (CSV)
plus quick pivot summaries.  This is the harness a paper's full evaluation
section would drive.
"""

from __future__ import annotations

import csv
import io
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.engine import CriteriaUnit, ExperimentEngine, ResultCache
from repro.experiments.acceptance import (
    AcceptanceConfig,
    acceptance_units,
    assemble_acceptance,
)
from repro.overhead.model import OverheadModel


@dataclass(frozen=True)
class CampaignRecord:
    """One (configuration, utilization, algorithm) measurement.

    ``acceptance`` is always populated; the multi-criteria axes are NaN
    unless the campaign ran with ``criteria=True`` (and the algorithm
    accepted at least one set at this point — an axis that could not be
    measured stays NaN and renders as ``-`` in pivots, never as 0).
    """

    n_cores: int
    n_tasks: int
    overheads: str
    algorithm: str
    utilization: float
    acceptance: float
    #: Mean preemptions per job release (simulated subsample).
    preemptions: float = math.nan
    #: Mean migrations per job release (simulated subsample).
    migrations: float = math.nan
    #: min/mean of per-core spare capacity (1.0 = perfectly balanced).
    spare_balance: float = math.nan
    #: 1 - total_utilization / m over accepted assignments.
    packing_slack: float = math.nan
    #: Mean platform power (mW) from the simulation energy ledger.
    avg_power_mw: float = math.nan
    #: Energy per hyperperiod (uJ) at the run's mean power.
    energy_per_hp_uj: float = math.nan


#: Valid field names for :meth:`CampaignResult.filtered` criteria.
_RECORD_FIELDS = tuple(CampaignRecord.__dataclass_fields__)

#: The multi-criteria axes, in record/CSV column order.
CRITERIA_AXES = (
    "preemptions",
    "migrations",
    "spare_balance",
    "packing_slack",
    "avg_power_mw",
    "energy_per_hp_uj",
)

#: Record fields :meth:`CampaignResult.pivot` can aggregate.
_VALUE_FIELDS = ("acceptance",) + CRITERIA_AXES


@dataclass
class CampaignResult:
    """Campaign records, plus the manifest of points that failed.

    ``failed_units`` is non-empty only when the engine exhausted its
    retries on some work unit and degraded gracefully: the affected
    (configuration, utilization) points are *absent* from ``records``
    and listed here instead, so a partial campaign is still usable and
    the gaps are explicit.
    """

    records: List[CampaignRecord] = field(default_factory=list)
    failed_units: List[dict] = field(default_factory=list)

    @property
    def is_partial(self) -> bool:
        return bool(self.failed_units)

    def filtered(self, **criteria) -> List[CampaignRecord]:
        for key in criteria:
            if key not in _RECORD_FIELDS:
                raise ValueError(
                    f"unknown filter key {key!r}; valid keys: "
                    f"{', '.join(_RECORD_FIELDS)}"
                )
        return [
            r
            for r in self.records
            if all(getattr(r, k) == v for k, v in criteria.items())
        ]

    def mean_acceptance(self, **criteria) -> float:
        rows = self.filtered(**criteria)
        if not rows:
            return 0.0
        return sum(r.acceptance for r in rows) / len(rows)

    def pivot(
        self,
        row_key: str = "algorithm",
        column_key: str = "n_cores",
        value_key: str = "acceptance",
    ) -> str:
        """Text pivot table of the mean of ``value_key``.

        Groups in a single pass over the records (sum + count per cell)
        instead of re-filtering the whole record list for every cell, so
        the cost is O(records + cells) rather than O(records x cells).
        NaN values (unmeasured criteria axes) are excluded from both the
        sum and the count, and a cell with no measured value renders as
        ``-`` — a point whose work unit failed must read as *missing*,
        not as a 0.000 that looks like total rejection.
        """
        if value_key not in _VALUE_FIELDS:
            raise ValueError(
                f"unknown value key {value_key!r}; valid keys: "
                f"{', '.join(_VALUE_FIELDS)}"
            )
        sums: Dict[Tuple[object, object], float] = {}
        counts: Dict[Tuple[object, object], int] = {}
        cells_seen: Dict[Tuple[object, object], bool] = {}
        for r in self.records:
            cell = (getattr(r, row_key), getattr(r, column_key))
            cells_seen[cell] = True
            value = getattr(r, value_key)
            if math.isnan(value):
                continue
            sums[cell] = sums.get(cell, 0.0) + value
            counts[cell] = counts.get(cell, 0) + 1
        rows = sorted({cell[0] for cell in cells_seen}, key=str)
        columns = sorted({cell[1] for cell in cells_seen}, key=str)
        header = row_key + "/" + column_key
        lines = [
            f"{header:>16} " + " ".join(f"{str(c):>8}" for c in columns)
        ]
        for row in rows:
            cells = []
            for column in columns:
                n = counts.get((row, column), 0)
                if n:
                    cells.append(f"{sums[(row, column)] / n:>8.3f}")
                else:
                    cells.append(f"{'-':>8}")
            lines.append(f"{str(row):>16} " + " ".join(cells))
        return "\n".join(lines)

    def to_csv(self, path: Optional[Union[str, Path]] = None) -> str:
        """Long-format CSV; unmeasured criteria axes are empty cells."""
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(
            [
                "n_cores",
                "n_tasks",
                "overheads",
                "algorithm",
                "utilization",
                "acceptance",
            ]
            + list(CRITERIA_AXES)
        )
        for r in self.records:
            writer.writerow(
                [
                    r.n_cores,
                    r.n_tasks,
                    r.overheads,
                    r.algorithm,
                    f"{r.utilization:.4f}",
                    f"{r.acceptance:.4f}",
                ]
                + [
                    ""
                    if math.isnan(getattr(r, axis))
                    else f"{getattr(r, axis):.6g}"
                    for axis in CRITERIA_AXES
                ]
            )
        text = buffer.getvalue()
        if path is not None:
            Path(path).write_text(text)
        return text


def run_campaign(
    core_counts: Sequence[int] = (2, 4, 8),
    task_counts: Sequence[int] = (8, 16),
    algorithms: Sequence[str] = ("FP-TS", "FFD", "WFD"),
    overhead_specs: Sequence[Tuple[str, OverheadModel]] = (
        ("zero", OverheadModel.zero()),
    ),
    utilizations: Sequence[float] = (0.7, 0.8, 0.9, 0.95),
    sets_per_point: int = 25,
    seed: int = 404,
    jobs: int = 1,
    cache: Union[ResultCache, str, None] = None,
    engine: Optional[ExperimentEngine] = None,
    criteria: bool = False,
    sim_sets: int = 5,
) -> CampaignResult:
    """Run the full factorial grid; deterministic for fixed arguments.

    The whole grid is decomposed into work units up front and executed
    through **one** engine pass, so ``jobs > 1`` parallelizes across
    configurations as well as utilization points.  Record order (and
    therefore CSV output) is identical to the original nested serial
    loops for any ``jobs``/``cache`` setting.

    ``criteria=True`` additionally dispatches one
    :class:`~repro.engine.CriteriaUnit` per grid point (same seed
    contract as the acceptance unit, short simulations capped at
    ``sim_sets`` accepted sets per algorithm) and fills the records'
    multi-criteria axes.  A failed criteria unit leaves its records'
    axes NaN (rendered ``-`` by :meth:`CampaignResult.pivot`) without
    touching the acceptance measurement or ``failed_units``.
    """
    if engine is None:
        engine = ExperimentEngine(jobs=jobs, cache=cache)

    # Flatten the grid: one AcceptanceConfig per (cores, tasks, overheads)
    # cell, preserving the original iteration order.
    cells: List[Tuple[str, AcceptanceConfig]] = []
    for n_cores in core_counts:
        for n_tasks in task_counts:
            if n_tasks < n_cores:
                continue
            for overhead_name, model in overhead_specs:
                cells.append(
                    (
                        overhead_name,
                        AcceptanceConfig(
                            n_cores=n_cores,
                            n_tasks=n_tasks,
                            sets_per_point=sets_per_point,
                            utilizations=list(utilizations),
                            overheads=model,
                            algorithms=tuple(algorithms),
                            seed=seed + 31 * n_cores + 7 * n_tasks,
                        ),
                    )
                )

    units = []
    for _, config in cells:
        units.extend(acceptance_units(config))
    payloads = engine.run(units)

    criteria_payloads: List[Optional[dict]] = []
    if criteria:
        criteria_units = []
        for _, config in cells:
            for point_index, normalized in enumerate(config.utilizations):
                criteria_units.append(
                    CriteriaUnit(
                        n_cores=config.n_cores,
                        n_tasks=config.n_tasks,
                        sets_per_point=config.sets_per_point,
                        utilization=normalized,
                        seed=config.seed + 7919 * point_index,
                        algorithms=tuple(config.algorithms),
                        overheads=config.overheads,
                        period_min=config.period_min,
                        period_max=config.period_max,
                        sim_sets=sim_sets,
                    )
                )
        criteria_payloads = engine.run(criteria_units)

    result = CampaignResult()
    offset = 0
    for overhead_name, config in cells:
        n_points = len(config.utilizations)
        sweep = assemble_acceptance(
            config, payloads[offset : offset + n_points]
        )
        point_criteria = (
            criteria_payloads[offset : offset + n_points]
            if criteria
            else [None] * n_points
        )
        offset += n_points
        for failed_u in sweep.failed_utilizations:
            result.failed_units.append(
                {
                    "n_cores": config.n_cores,
                    "n_tasks": config.n_tasks,
                    "overheads": overhead_name,
                    "utilization": failed_u,
                }
            )
        for algorithm in algorithms:
            for point_index, (u, acceptance) in enumerate(
                zip(sweep.utilizations, sweep.ratios[algorithm])
            ):
                if math.isnan(acceptance):
                    continue  # listed in failed_units instead
                payload = point_criteria[point_index]
                measured = (
                    (payload.get("criteria") or {}).get(algorithm)
                    if payload
                    else None
                ) or {}
                axes = {
                    axis: (
                        measured[axis]
                        if measured.get(axis) is not None
                        else math.nan
                    )
                    for axis in CRITERIA_AXES
                }
                result.records.append(
                    CampaignRecord(
                        n_cores=config.n_cores,
                        n_tasks=config.n_tasks,
                        overheads=overhead_name,
                        algorithm=algorithm,
                        utilization=u,
                        acceptance=acceptance,
                        **axes,
                    )
                )
    return result
