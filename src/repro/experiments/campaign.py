"""Factorial experiment campaigns (extension).

Runs the acceptance experiment over a grid of platform/workload
configurations — core counts x task counts x algorithms x overhead models
— and collects long-format records suitable for external analysis (CSV)
plus quick pivot summaries.  This is the harness a paper's full evaluation
section would drive.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.experiments.acceptance import AcceptanceConfig, run_acceptance
from repro.overhead.model import OverheadModel


@dataclass(frozen=True)
class CampaignRecord:
    """One (configuration, utilization, algorithm) acceptance measurement."""

    n_cores: int
    n_tasks: int
    overheads: str
    algorithm: str
    utilization: float
    acceptance: float


@dataclass
class CampaignResult:
    records: List[CampaignRecord] = field(default_factory=list)

    def filtered(self, **criteria) -> List[CampaignRecord]:
        out = self.records
        for key, value in criteria.items():
            out = [r for r in out if getattr(r, key) == value]
        return out

    def mean_acceptance(self, **criteria) -> float:
        rows = self.filtered(**criteria)
        if not rows:
            return 0.0
        return sum(r.acceptance for r in rows) / len(rows)

    def pivot(
        self, row_key: str = "algorithm", column_key: str = "n_cores"
    ) -> str:
        """Text pivot table of mean acceptance."""
        rows = sorted({getattr(r, row_key) for r in self.records}, key=str)
        columns = sorted(
            {getattr(r, column_key) for r in self.records}, key=str
        )
        header = row_key + "/" + column_key
        lines = [
            f"{header:>16} " + " ".join(f"{str(c):>8}" for c in columns)
        ]
        for row in rows:
            cells = []
            for column in columns:
                value = self.mean_acceptance(
                    **{row_key: row, column_key: column}
                )
                cells.append(f"{value:>8.3f}")
            lines.append(f"{str(row):>16} " + " ".join(cells))
        return "\n".join(lines)

    def to_csv(self, path: Optional[Union[str, Path]] = None) -> str:
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(
            [
                "n_cores",
                "n_tasks",
                "overheads",
                "algorithm",
                "utilization",
                "acceptance",
            ]
        )
        for r in self.records:
            writer.writerow(
                [
                    r.n_cores,
                    r.n_tasks,
                    r.overheads,
                    r.algorithm,
                    f"{r.utilization:.4f}",
                    f"{r.acceptance:.4f}",
                ]
            )
        text = buffer.getvalue()
        if path is not None:
            Path(path).write_text(text)
        return text


def run_campaign(
    core_counts: Sequence[int] = (2, 4, 8),
    task_counts: Sequence[int] = (8, 16),
    algorithms: Sequence[str] = ("FP-TS", "FFD", "WFD"),
    overhead_specs: Sequence[Tuple[str, OverheadModel]] = (
        ("zero", OverheadModel.zero()),
    ),
    utilizations: Sequence[float] = (0.7, 0.8, 0.9, 0.95),
    sets_per_point: int = 25,
    seed: int = 404,
) -> CampaignResult:
    """Run the full factorial grid; deterministic for fixed arguments."""
    result = CampaignResult()
    for n_cores in core_counts:
        for n_tasks in task_counts:
            if n_tasks < n_cores:
                continue
            for overhead_name, model in overhead_specs:
                config = AcceptanceConfig(
                    n_cores=n_cores,
                    n_tasks=n_tasks,
                    sets_per_point=sets_per_point,
                    utilizations=list(utilizations),
                    overheads=model,
                    algorithms=tuple(algorithms),
                    seed=seed + 31 * n_cores + 7 * n_tasks,
                )
                sweep = run_acceptance(config)
                for algorithm in algorithms:
                    for u, acceptance in zip(
                        sweep.utilizations, sweep.ratios[algorithm]
                    ):
                        result.records.append(
                            CampaignRecord(
                                n_cores=n_cores,
                                n_tasks=n_tasks,
                                overheads=overhead_name,
                                algorithm=algorithm,
                                utilization=u,
                                acceptance=acceptance,
                            )
                        )
    return result
