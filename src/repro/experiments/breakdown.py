"""Breakdown-utilization experiment (extension).

For one task set and one algorithm, the *critical scaling factor* is the
largest multiplier ``f`` such that the set with all WCETs scaled by ``f``
is still accepted; the *breakdown utilization* is the scaled total
utilization at that point.  Averaged over random task sets this is a
finer-grained figure of merit than acceptance ratio: it shows how much
headroom each algorithm leaves on the table.

Classic reference point: for large n, RM's breakdown utilization on one
core tends to ``ln 2 ≈ 0.693`` for random (non-harmonic) sets under the
L&L bound, and ~0.88 under exact analysis; EDF reaches 1.0.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.experiments.algorithms import accept
from repro.model.generator import TaskSetGenerator
from repro.model.taskset import TaskSet
from repro.model.time import MS
from repro.overhead.model import OverheadModel


def critical_scaling_factor(
    taskset: TaskSet,
    algorithm: str,
    n_cores: int,
    model: OverheadModel = OverheadModel.zero(),
    precision: float = 0.005,
    f_max: float = 8.0,
) -> float:
    """Largest WCET scale factor keeping ``taskset`` accepted (0 if even
    the unscaled set is rejected at the smallest probe)."""

    def accepted(factor: float) -> bool:
        try:
            scaled = taskset.scaled_wcet(factor)
            return accept(algorithm, scaled, n_cores, model)
        except ValueError:
            # Scaling beyond a period makes a task invalid => not accepted.
            return False

    low, high = 0.0, f_max
    if not accepted(precision):
        return 0.0
    # Exponential probe up, then binary search.
    probe = 1.0
    while probe < f_max and accepted(probe):
        low = probe
        probe *= 2
    high = min(probe, f_max)
    while high - low > precision:
        mid = (low + high) / 2
        if accepted(mid):
            low = mid
        else:
            high = mid
    return low


@dataclass
class BreakdownResult:
    """Breakdown utilizations per algorithm over a common set of workloads."""

    n_cores: int
    utilizations: Dict[str, List[float]] = field(default_factory=dict)

    def mean(self, algorithm: str) -> float:
        values = self.utilizations[algorithm]
        return sum(values) / len(values) if values else 0.0

    def percentile(self, algorithm: str, q: float) -> float:
        values = sorted(self.utilizations[algorithm])
        if not values:
            return 0.0
        index = min(len(values) - 1, int(q * (len(values) - 1)))
        return values[index]

    def as_table(self) -> str:
        lines = [
            f"{'algorithm':>10} {'mean U/m':>9} {'p10':>7} {'p50':>7} {'p90':>7}"
        ]
        for name in self.utilizations:
            lines.append(
                f"{name:>10} {self.mean(name) / self.n_cores:>9.3f} "
                f"{self.percentile(name, 0.1) / self.n_cores:>7.3f} "
                f"{self.percentile(name, 0.5) / self.n_cores:>7.3f} "
                f"{self.percentile(name, 0.9) / self.n_cores:>7.3f}"
            )
        return "\n".join(lines)


def run_breakdown(
    algorithms: Sequence[str] = ("FP-TS", "FFD", "WFD"),
    n_cores: int = 4,
    n_tasks: int = 12,
    sets: int = 30,
    base_utilization: float = 0.5,
    seed: int = 31,
    model: OverheadModel = OverheadModel.zero(),
    period_min: int = 10 * MS,
    period_max: int = 1000 * MS,
) -> BreakdownResult:
    """Measure breakdown utilization distributions on shared workloads.

    Every algorithm sees the *same* random sets (paired comparison), each
    generated at a modest base utilization and scaled up to its breakdown
    point per algorithm.
    """
    generator = TaskSetGenerator(
        n_tasks=n_tasks,
        seed=seed,
        period_min=period_min,
        period_max=period_max,
    )
    result = BreakdownResult(
        n_cores=n_cores,
        utilizations={name: [] for name in algorithms},
    )
    for _ in range(sets):
        taskset = generator.generate(base_utilization * n_cores)
        base = taskset.total_utilization
        for name in algorithms:
            factor = critical_scaling_factor(taskset, name, n_cores, model)
            result.utilizations[name].append(factor * base)
    return result
