"""Algorithm registry with uniform overhead-aware acceptance semantics.

Every algorithm is exposed as: *given a (raw) rate-monotonic task set, a
core count and an overhead model, does the overhead-aware schedulability
analysis accept the set, and what assignment does it produce?*

Overheads enter exactly as Section 4 of the paper describes — folded into
the analysis:

* every task's WCET is inflated by the per-job charge
  (:func:`repro.overhead.accounting.per_job_overhead`);
* FP-TS additionally reserves the per-migration charge for every subtask
  boundary it creates (``FptsConfig.split_cost``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.analysis.batch import (
    BATCH_STATS,
    BatchStats,
    PopulationError,
    TaskSetPopulation,
    batch_partition_accept,
    batch_partition_accept_multi,
)
from repro.analysis.global_bounds import (
    global_edf_gfb_schedulable,
    global_rm_us_schedulable,
)
from repro.model.assignment import Assignment
from repro.model.taskset import TaskSet
from repro.overhead.accounting import inflate_taskset
from repro.overhead.model import OverheadModel
from repro.partition.edf import partition_edf_first_fit
from repro.partition.heuristics import (
    partition_best_fit_decreasing,
    partition_first_fit_decreasing,
    partition_next_fit_decreasing,
    partition_worst_fit_decreasing,
)
from repro.semipart.cd_split import CdSplitConfig, cd_split_partition
from repro.semipart.fpts import FptsConfig, fpts_partition
from repro.semipart.pdms import PdmsConfig, pdms_hpts_partition
from repro.semipart.spa import spa1_partition, spa2_partition

# (taskset, n_cores, model, incremental=True) -> assignment or None
PartitionFn = Callable[..., Optional[Assignment]]


@dataclass(frozen=True)
class AlgorithmSpec:
    """One registered scheduling algorithm."""

    name: str
    kind: str  # "partitioned" | "semi-partitioned" | "global"
    fn: PartitionFn
    description: str
    #: Scheduling class the simulator should run this algorithm's
    #: assignments under (:data:`repro.kernel.sched_class.SCHED_CLASSES`
    #: registry name).  EDF-side partitioners need deadline-keyed ready
    #: queues; the global tests route through
    #: :func:`repro.kernel.global_sim.build_global_assignment` and a
    #: shared-queue class.
    sched_class: str = "fp"


def _with_inflation(
    partition: Callable[..., Optional[Assignment]],
) -> PartitionFn:
    def run(
        taskset: TaskSet,
        n_cores: int,
        model: OverheadModel,
        incremental: bool = True,
    ) -> Optional[Assignment]:
        inflated = inflate_taskset(taskset, model)
        return partition(inflated, n_cores, incremental=incremental)

    return run


def _global_edf(
    taskset: TaskSet, n_cores: int, incremental: bool = True
) -> Optional[Assignment]:
    """GFB acceptance; returns a placeholder assignment (global scheduling
    produces no partition — simulate with :class:`repro.kernel.GlobalSim`).
    ``incremental`` is accepted for registry uniformity (no per-core
    analysis to memoize)."""
    if global_edf_gfb_schedulable(taskset, n_cores):
        return Assignment(n_cores)
    return None


def _global_rm(
    taskset: TaskSet, n_cores: int, incremental: bool = True
) -> Optional[Assignment]:
    """RM-US acceptance; placeholder assignment as for ``_global_edf``."""
    if global_rm_us_schedulable(taskset, n_cores):
        return Assignment(n_cores)
    return None


def _fpts(
    taskset: TaskSet,
    n_cores: int,
    model: OverheadModel,
    incremental: bool = True,
) -> Optional[Assignment]:
    inflated = inflate_taskset(taskset, model)
    max_wss = max((task.wss for task in taskset), default=0)
    return fpts_partition(
        inflated,
        n_cores,
        FptsConfig.from_model(model, cpmd_wss=max_wss),
        incremental=incremental,
    )


def _cd_split(
    taskset: TaskSet,
    n_cores: int,
    model: OverheadModel,
    incremental: bool = True,
) -> Optional[Assignment]:
    inflated = inflate_taskset(taskset, model)
    max_wss = max((task.wss for task in taskset), default=0)
    return cd_split_partition(
        inflated,
        n_cores,
        CdSplitConfig.from_model(model, cpmd_wss=max_wss),
        incremental=incremental,
    )


def _pdms(
    taskset: TaskSet,
    n_cores: int,
    model: OverheadModel,
    incremental: bool = True,
) -> Optional[Assignment]:
    from repro.overhead.accounting import (
        migration_in_overhead,
        migration_out_overhead,
    )

    inflated = inflate_taskset(taskset, model)
    max_wss = max((task.wss for task in taskset), default=0)
    config = PdmsConfig(
        split_cost=migration_in_overhead(model, max_wss),
        split_cost_out=migration_out_overhead(model),
    )
    return pdms_hpts_partition(
        inflated, n_cores, config, incremental=incremental
    )


ALGORITHMS: Dict[str, AlgorithmSpec] = {
    "FP-TS": AlgorithmSpec(
        name="FP-TS",
        kind="semi-partitioned",
        fn=_fpts,
        description=(
            "Fixed-priority semi-partitioned scheduling with RTA-based "
            "task splitting (the algorithm the paper implements)"
        ),
    ),
    "FFD": AlgorithmSpec(
        name="FFD",
        kind="partitioned",
        fn=_with_inflation(partition_first_fit_decreasing),
        description="First-fit decreasing partitioned RM (paper baseline)",
    ),
    "WFD": AlgorithmSpec(
        name="WFD",
        kind="partitioned",
        fn=_with_inflation(partition_worst_fit_decreasing),
        description="Worst-fit decreasing partitioned RM (paper baseline)",
    ),
    "BFD": AlgorithmSpec(
        name="BFD",
        kind="partitioned",
        fn=_with_inflation(partition_best_fit_decreasing),
        description="Best-fit decreasing partitioned RM (extension)",
    ),
    "NFD": AlgorithmSpec(
        name="NFD",
        kind="partitioned",
        fn=_with_inflation(partition_next_fit_decreasing),
        description="Next-fit decreasing partitioned RM (extension)",
    ),
    "SPA1": AlgorithmSpec(
        name="SPA1",
        kind="semi-partitioned",
        fn=_with_inflation(spa1_partition),
        description=(
            "Utilization-bound semi-partitioning, light tasks only "
            "(Guan et al. RTAS'10, reconstruction)"
        ),
    ),
    "SPA2": AlgorithmSpec(
        name="SPA2",
        kind="semi-partitioned",
        fn=_with_inflation(spa2_partition),
        description=(
            "Utilization-bound semi-partitioning with heavy-task "
            "pre-assignment (Guan et al. RTAS'10, reconstruction)"
        ),
    ),
    "PDMS": AlgorithmSpec(
        name="PDMS",
        kind="semi-partitioned",
        fn=_pdms,
        description=(
            "Highest-priority task splitting (PDMS_HPTS, Lakshmanan et "
            "al. 2009, extension)"
        ),
    ),
    "C=D": AlgorithmSpec(
        name="C=D",
        kind="semi-partitioned",
        fn=_cd_split,
        description=(
            "Semi-partitioned EDF with C=D task splitting "
            "(Burns et al. 2012, extension)"
        ),
        sched_class="edf",
    ),
    "P-EDF": AlgorithmSpec(
        name="P-EDF",
        kind="partitioned",
        fn=_with_inflation(partition_edf_first_fit),
        description=(
            "Partitioned EDF, first-fit decreasing, exact demand-bound "
            "admission (extension)"
        ),
        sched_class="edf",
    ),
    "G-EDF": AlgorithmSpec(
        name="G-EDF",
        kind="global",
        fn=_with_inflation(_global_edf),
        description="Global EDF, GFB density test (extension baseline)",
        sched_class="global-edf",
    ),
    "G-RM": AlgorithmSpec(
        name="G-RM",
        kind="global",
        fn=_with_inflation(_global_rm),
        description=(
            "Global fixed-priority, RM-US[m/(3m-2)] utilization test "
            "(extension baseline)"
        ),
        sched_class="global-rm",
    ),
}


def build_assignment(
    algorithm: str,
    taskset: TaskSet,
    n_cores: int,
    model: OverheadModel = OverheadModel.zero(),
    incremental: bool = True,
) -> Optional[Assignment]:
    """Run ``algorithm`` and return its assignment (None = rejected).

    ``incremental=False`` forces the from-scratch analysis contexts in
    the partitioners (the differential reference; identical result).
    """
    try:
        spec = ALGORITHMS[algorithm]
    except KeyError:
        raise KeyError(
            f"unknown algorithm {algorithm!r}; choose from "
            f"{sorted(ALGORITHMS)}"
        ) from None
    return spec.fn(taskset, n_cores, model, incremental=incremental)


def accept(
    algorithm: str,
    taskset: TaskSet,
    n_cores: int,
    model: OverheadModel = OverheadModel.zero(),
    incremental: bool = True,
) -> bool:
    """True iff the overhead-aware analysis accepts the task set."""
    return (
        build_assignment(
            taskset=taskset,
            algorithm=algorithm,
            n_cores=n_cores,
            model=model,
            incremental=incremental,
        )
        is not None
    )


#: Algorithms the batch layer can express: plain decreasing-utilization
#: bin packing, mapped to (placement, admission).  Splitting algorithms
#: (FP-TS, SPA*, PDMS, C=D) and the global tests stay scalar.
BATCH_ALGORITHMS: Dict[str, Tuple[str, str]] = {
    "FFD": ("first-fit", "rta"),
    "WFD": ("worst-fit", "rta"),
    "BFD": ("best-fit", "rta"),
    "NFD": ("next-fit", "rta"),
    "P-EDF": ("first-fit", "edf"),
}


def accept_population(
    algorithm: str,
    population: TaskSetPopulation,
    n_cores: int,
    model: OverheadModel = OverheadModel.zero(),
    batch: bool = True,
    stats: Optional[BatchStats] = None,
) -> List[bool]:
    """Accept/reject vector of ``algorithm`` over a whole population.

    With ``batch=True`` the algorithms in :data:`BATCH_ALGORITHMS` run
    through the struct-of-arrays kernels of
    :mod:`repro.analysis.batch`; everything else — and any population
    the batch layer cannot express (non-rate-monotonic priority order)
    — falls back to the scalar incremental path one lane at a time.
    Verdicts are bit-identical either way (the batch-vs-scratch
    differential pair enforces this continuously).
    """
    if algorithm not in ALGORITHMS:
        raise KeyError(
            f"unknown algorithm {algorithm!r}; choose from "
            f"{sorted(ALGORITHMS)}"
        )
    plan = BATCH_ALGORITHMS.get(algorithm) if batch else None
    if plan is not None:
        placement, admission = plan
        try:
            verdicts = batch_partition_accept(
                population,
                n_cores,
                model=model,
                placement=placement,
                admission=admission,
                stats=stats,
            )
            return [bool(v) for v in verdicts]
        except PopulationError:
            tracker = stats if stats is not None else BATCH_STATS
            tracker.scalar_fallbacks += population.n_sets
    return [
        accept(algorithm, taskset, n_cores, model=model)
        for taskset in population.tasksets()
    ]


def accept_populations(
    algorithms: List[str],
    population: TaskSetPopulation,
    n_cores: int,
    model: OverheadModel = OverheadModel.zero(),
    batch: bool = True,
    stats: Optional[BatchStats] = None,
) -> Dict[str, List[bool]]:
    """Accept/reject vectors of several algorithms over one population.

    The batchable algorithms (:data:`BATCH_ALGORITHMS`) share a single
    packing pass through
    :func:`repro.analysis.batch.batch_partition_accept_multi` — the
    per-step vectorized probes cover every algorithm's rows at once, so
    asking five heuristics costs far less than five separate sweeps.
    Non-batchable algorithms, ``batch=False``, and populations the
    batch layer rejects take the same scalar per-lane fallback as
    :func:`accept_population`.
    """
    for algorithm in algorithms:
        if algorithm not in ALGORITHMS:
            raise KeyError(
                f"unknown algorithm {algorithm!r}; choose from "
                f"{sorted(ALGORITHMS)}"
            )
    out: Dict[str, List[bool]] = {}
    batched = [a for a in algorithms if batch and a in BATCH_ALGORITHMS]
    if batched:
        try:
            matrix = batch_partition_accept_multi(
                population,
                n_cores,
                model=model,
                configs=[BATCH_ALGORITHMS[a] for a in batched],
                stats=stats,
            )
            for row, algorithm in zip(matrix, batched):
                out[algorithm] = [bool(v) for v in row]
        except PopulationError:
            tracker = stats if stats is not None else BATCH_STATS
            tracker.scalar_fallbacks += population.n_sets * len(batched)
            batched = []
    for algorithm in algorithms:
        if algorithm not in out:
            out[algorithm] = accept_population(
                algorithm,
                population,
                n_cores,
                model=model,
                batch=False,
                stats=stats,
            )
    return out
