"""ASCII line plots for experiment results.

Matplotlib-free rendering of acceptance curves and generic (x, y) series —
the environment this reproduction targets is offline/terminal-only, so the
harness renders its own figures.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple


def ascii_plot(
    series: Dict[str, Sequence[float]],
    x_values: Sequence[float],
    width: int = 64,
    height: int = 16,
    y_min: float = 0.0,
    y_max: Optional[float] = None,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render one or more named series on a character grid.

    Each series gets a marker (its name's first character, upper-cased;
    collisions fall back to digits); overlapping points show ``*``.

    >>> text = ascii_plot({"up": [0, 1], "down": [1, 0]}, [0, 1], width=8,
    ...                   height=4)
    >>> "U" in text and "D" in text
    True
    """
    if not series:
        raise ValueError("need at least one series")
    lengths = {len(values) for values in series.values()}
    if lengths != {len(x_values)}:
        raise ValueError("every series must match x_values in length")
    if y_max is None:
        y_max = max(
            (max(values) for values in series.values() if values),
            default=1.0,
        )
        y_max = max(y_max, y_min + 1e-9)

    grid = [[" "] * width for _ in range(height)]
    markers: Dict[str, str] = {}
    used = set()
    fallback = iter("0123456789")
    for name in series:
        marker = name[0].upper()
        if marker in used:
            marker = next(fallback)
        used.add(marker)
        markers[name] = marker

    x_lo, x_hi = min(x_values), max(x_values)
    x_span = max(x_hi - x_lo, 1e-12)
    y_span = max(y_max - y_min, 1e-12)

    for name, values in series.items():
        marker = markers[name]
        for x, y in zip(x_values, values):
            col = int(round((x - x_lo) / x_span * (width - 1)))
            row = height - 1 - int(round((y - y_min) / y_span * (height - 1)))
            row = min(max(row, 0), height - 1)
            cell = grid[row][col]
            grid[row][col] = marker if cell in (" ", marker) else "*"

    lines = []
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = f"{y_max:8.2f} |"
        elif row_index == height - 1:
            label = f"{y_min:8.2f} |"
        else:
            label = " " * 8 + " |"
        lines.append(label + "".join(row))
    lines.append(" " * 9 + "+" + "-" * width)
    lines.append(
        " " * 9
        + f" {x_lo:<12g}{x_label:^{max(0, width - 26)}}{x_hi:>12g}"
    )
    legend = "   ".join(f"{markers[name]}={name}" for name in series)
    lines.append(" " * 9 + f" [{legend}]  (* = overlap)   y: {y_label}")
    return "\n".join(lines)


def pareto_front(
    points: Sequence[dict],
    axes: Sequence[Tuple[str, str]],
) -> List[dict]:
    """Non-dominated subset of ``points`` under the given objectives.

    ``axes`` is a sequence of ``(key, direction)`` pairs with direction
    ``"max"`` or ``"min"``.  A point is dominated when some other point
    is at least as good on every axis and strictly better on one; NaN
    on any axis excludes a point from consideration (an unmeasured
    criterion can neither dominate nor survive).  Result order follows
    the input, so the front is stable under permutation of ``axes`` and
    deterministic for a fixed input order.
    """
    if not axes:
        raise ValueError("need at least one objective axis")
    for _, direction in axes:
        if direction not in ("max", "min"):
            raise ValueError(
                f"direction must be 'max' or 'min', got {direction!r}"
            )

    def score(point: dict) -> Optional[Tuple[float, ...]]:
        values = []
        for key, direction in axes:
            value = point.get(key)
            if value is None or math.isnan(value):
                return None
            values.append(value if direction == "max" else -value)
        return tuple(values)

    scored = [
        (point, s) for point in points if (s := score(point)) is not None
    ]
    front = []
    for point, s in scored:
        dominated = any(
            all(o >= v for o, v in zip(other, s))
            and any(o > v for o, v in zip(other, s))
            for _, other in scored
        )
        if not dominated:
            front.append(point)
    return front


def pareto_table(
    points: Sequence[dict],
    axes: Sequence[Tuple[str, str]],
    label_key: str = "algorithm",
) -> str:
    """Render the Pareto front of ``points`` as a text table.

    One row per non-dominated point (input order), axes as columns with
    their optimization direction in the header.
    """
    front = pareto_front(points, axes)
    header = f"{label_key:>16} " + " ".join(
        f"{key + ('^' if direction == 'max' else 'v'):>16}"
        for key, direction in axes
    )
    lines = [header]
    for point in front:
        lines.append(
            f"{str(point.get(label_key, '?')):>16} "
            + " ".join(f"{point[key]:>16.4g}" for key, _ in axes)
        )
    if not front:
        lines.append(f"{'(empty front)':>16}")
    return "\n".join(lines)


def acceptance_plot(result, width: int = 64, height: int = 14) -> str:
    """Plot an :class:`~repro.experiments.acceptance.AcceptanceResult`."""
    return ascii_plot(
        {name: ratios for name, ratios in result.ratios.items()},
        result.utilizations,
        width=width,
        height=height,
        y_min=0.0,
        y_max=1.0,
        x_label="normalized utilization U/m",
        y_label="acceptance ratio",
    )
