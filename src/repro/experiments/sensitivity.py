"""Overhead-magnitude sensitivity ablation (E5).

The paper's conclusion is that "the extra overhead caused by task splitting
in semi-partitioned scheduling is very low, and its effect on the system
schedulability is very small".  This experiment quantifies that: the same
acceptance sweep is repeated with the overhead model scaled by a range of
factors (0 = pure theory, 1 = paper-calibrated, 10/100 = inflated), showing
how far overheads must grow before the curves move.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Union

from repro.engine import ExperimentEngine, ResultCache
from repro.experiments.acceptance import (
    AcceptanceConfig,
    AcceptanceResult,
    acceptance_units,
    assemble_acceptance,
)
from repro.overhead.model import OverheadModel


@dataclass
class SensitivityResult:
    """Acceptance results per overhead scale factor."""

    factors: List[float]
    results: Dict[float, AcceptanceResult]

    def delta_vs_zero(self, algorithm: str, factor: float) -> float:
        """Drop in mean acceptance caused by overheads at ``factor``."""
        base = self.results[0.0].weighted_acceptance(algorithm)
        scaled = self.results[factor].weighted_acceptance(algorithm)
        return base - scaled

    def as_table(self, algorithm: str) -> str:
        lines = [f"overhead sensitivity of {algorithm}"]
        lines.append(f"{'factor':>8} {'mean-acceptance':>16} {'delta':>8}")
        base = self.results[self.factors[0]].weighted_acceptance(algorithm)
        for factor in self.factors:
            mean = self.results[factor].weighted_acceptance(algorithm)
            lines.append(f"{factor:>8.1f} {mean:>16.4f} {base - mean:>8.4f}")
        return "\n".join(lines)


def run_overhead_sensitivity(
    base_config: AcceptanceConfig,
    factors: Sequence[float] = (0.0, 1.0, 10.0, 100.0),
    base_model: OverheadModel = None,
    jobs: int = 1,
    cache: Union[ResultCache, str, None] = None,
    engine: Optional[ExperimentEngine] = None,
) -> SensitivityResult:
    """Repeat the acceptance sweep with scaled overhead models.

    All factors' sweeps are fanned out through one engine pass, so
    ``jobs > 1`` parallelizes across factors as well as utilization
    points; results are identical to the serial per-factor loops.
    """
    if base_model is None:
        base_model = OverheadModel.paper_core_i7(
            tasks_per_core=max(1, base_config.n_tasks // base_config.n_cores)
        )
    if engine is None:
        engine = ExperimentEngine(jobs=jobs, cache=cache)
    configs: List[AcceptanceConfig] = []
    for factor in factors:
        model = (
            OverheadModel.zero() if factor == 0.0 else base_model.scaled(factor)
        )
        configs.append(replace(base_config, overheads=model))
    units = []
    for config in configs:
        units.extend(acceptance_units(config))
    payloads = engine.run(units)
    results: Dict[float, AcceptanceResult] = {}
    offset = 0
    for factor, config in zip(factors, configs):
        n_points = len(config.utilizations)
        results[factor] = assemble_acceptance(
            config, payloads[offset : offset + n_points]
        )
        offset += n_points
    return SensitivityResult(factors=list(factors), results=results)
