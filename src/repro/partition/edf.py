"""Partitioned EDF (extension, DESIGN.md §7).

Same bin-packing heuristics as the fixed-priority side, with per-core
admission by the exact uniprocessor EDF test (processor-demand analysis;
for implicit deadlines this degenerates to ``U <= 1``, making partitioned
EDF strictly more permissive than partitioned RM — the classic gap the
comparison benches show).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.edf import edf_schedulable
from repro.analysis.incremental import make_edf_context
from repro.model.assignment import Assignment, Entry
from repro.model.taskset import TaskSet
from repro.partition.heuristics import Placement, partition_taskset


def edf_admission(entries: Sequence[Entry]) -> bool:
    """Exact EDF admission on one core."""
    return edf_schedulable(
        [(entry.budget, entry.period, entry.deadline) for entry in entries]
    )


# Context-backed admission for partition_taskset: cached resident triples
# between probes.  No C<=D pre-check — the plain test above has none.
edf_admission.context_factory = (
    lambda incremental: make_edf_context(
        incremental=incremental, precheck_cd=False
    )
)


def partition_edf(
    taskset: TaskSet,
    n_cores: int,
    placement: Placement = Placement.FIRST_FIT,
    incremental: bool = True,
) -> Optional[Assignment]:
    """Partition for per-core EDF scheduling.

    Priorities must still be assigned (they order the entries for the
    shared bookkeeping) but play no role in the admission decision or at
    run time — simulate the result with ``KernelSim(..., policy="edf")``.
    """
    return partition_taskset(
        taskset, n_cores, placement, edf_admission, incremental=incremental
    )


def partition_edf_first_fit(
    taskset: TaskSet, n_cores: int, incremental: bool = True
) -> Optional[Assignment]:
    return partition_edf(
        taskset, n_cores, Placement.FIRST_FIT, incremental=incremental
    )


def partition_edf_worst_fit(
    taskset: TaskSet, n_cores: int, incremental: bool = True
) -> Optional[Assignment]:
    return partition_edf(
        taskset, n_cores, Placement.WORST_FIT, incremental=incremental
    )
