"""Partitioning with OPA-backed admission (extension).

Uses Audsley's Optimal Priority Assignment as the per-core admission test
and emits assignments carrying the certified priority order.  For implicit-
deadline jitter-free workloads this coincides with RM admission (RM is
optimal there); its advantage appears for constrained deadlines and
jittered entries.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.opa import opa_admission, opa_order
from repro.model.assignment import Assignment
from repro.model.taskset import TaskSet
from repro.partition.heuristics import Placement, partition_taskset


def partition_opa(
    taskset: TaskSet,
    n_cores: int,
    placement: Placement = Placement.FIRST_FIT,
) -> Optional[Assignment]:
    """First-fit decreasing partitioning with OPA admission + ordering."""
    return partition_taskset(
        taskset,
        n_cores,
        placement,
        admission=opa_admission,
        ordering=opa_order,
    )
