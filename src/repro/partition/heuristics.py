"""Bin-packing partitioning heuristics with pluggable admission tests.

A partitioning heuristic is (ordering, placement, admission):

* **ordering** — the paper's baselines sort tasks by *decreasing size*
  (utilization): the "D" in FFD / WFD;
* **placement** — which admitting core receives the task: first-fit scans
  cores in index order, worst-fit picks the least-utilised admitting core,
  best-fit the most-utilised admitting core, next-fit keeps a moving
  pointer and never looks back;
* **admission** — exact response-time analysis by default (what a real
  acceptance test would run), or the Liu & Layland / hyperbolic utilization
  bounds for the cheaper classic variants.

All heuristics return an :class:`~repro.model.assignment.Assignment` on
success or ``None`` when some task fits on no core — the "bin-packing
waste" failure mode that motivates semi-partitioned scheduling.

Admission tests that expose a ``context_factory`` attribute (the exact
RTA and EDF tests do) run on per-core analysis contexts from
:mod:`repro.analysis.incremental`: probes memoize response times between
candidates instead of re-analyzing the whole core each time.
``partition_taskset(..., incremental=False)`` selects the from-scratch
context (bit-identical result; see ``repro.verify.differential``).
Plain-callable admission tests (utilization bounds, OPA) keep the
original per-candidate evaluation path.
"""

from __future__ import annotations

from enum import Enum
from typing import Callable, List, Optional, Sequence, Tuple

from repro.analysis.bounds import (
    hyperbolic_schedulable,
    liu_layland_schedulable,
)
from repro.analysis.incremental import make_rta_context
from repro.analysis.rta import core_schedulable
from repro.model.assignment import Assignment, Entry, EntryKind
from repro.model.task import Task
from repro.model.taskset import TaskSet

AdmissionTest = Callable[[Sequence[Entry]], bool]


def rta_admission(entries: Sequence[Entry]) -> bool:
    """Exact RTA admission: every entry on the core meets its deadline."""
    return core_schedulable(entries).schedulable


# Exact RTA admission runs on an analysis context when partition_taskset
# drives it (incremental memoization; see repro.analysis.incremental).
rta_admission.context_factory = (
    lambda incremental: make_rta_context(incremental=incremental)
)


def liu_layland_admission(entries: Sequence[Entry]) -> bool:
    """Liu & Layland utilization-bound admission (sufficient only)."""
    return liu_layland_schedulable([entry.utilization for entry in entries])


def hyperbolic_admission(entries: Sequence[Entry]) -> bool:
    """Hyperbolic-bound admission (sufficient only, dominates L&L)."""
    return hyperbolic_schedulable(entry.utilization for entry in entries)


class Placement(Enum):
    FIRST_FIT = "first-fit"
    BEST_FIT = "best-fit"
    WORST_FIT = "worst-fit"
    NEXT_FIT = "next-fit"


def _normal_entry(task: Task, core: int) -> Entry:
    return Entry(
        kind=EntryKind.NORMAL,
        task=task,
        core=core,
        budget=task.wcet,
        deadline=task.deadline,
    )


def partition_taskset(
    taskset: TaskSet,
    n_cores: int,
    placement: Placement = Placement.FIRST_FIT,
    admission: AdmissionTest = rta_admission,
    ordering: Optional[Callable[[Sequence[Entry]], List[Entry]]] = None,
    incremental: bool = True,
) -> Optional[Assignment]:
    """Partition ``taskset`` onto ``n_cores`` cores, decreasing-utilization
    order.  Returns the assignment, or ``None`` if some task fits nowhere.

    Tasks must already carry global priorities (e.g. rate-monotonic).

    ``ordering`` maps a core's entries to their final local priority order
    (highest first); defaults to the rate-monotonic rule.  An admission
    test that certifies "some order exists" (e.g. OPA) must supply the
    matching ordering so the emitted assignment is the certified one.

    ``incremental`` picks the analysis-context flavor for admission tests
    that carry a ``context_factory`` (exact RTA / EDF); it has no effect
    on plain-callable admission tests.
    """
    for task in taskset:
        if task.priority is None:
            raise ValueError(
                f"task {task.name} has no priority; call "
                "assign_rate_monotonic() before partitioning"
            )
    assignment = Assignment(n_cores)
    factory = getattr(admission, "context_factory", None)
    next_fit_pointer = 0

    if factory is not None:
        contexts = [factory(incremental) for _ in range(n_cores)]
        for task in taskset.sorted_by_utilization(descending=True):
            chosen, entry = _choose_core_with_contexts(
                task, contexts, placement, next_fit_pointer
            )
            if chosen is None:
                return None
            if placement == Placement.NEXT_FIT:
                next_fit_pointer = chosen
            contexts[chosen].commit(entry)
        _finalize(assignment, [list(ctx.entries) for ctx in contexts], ordering)
        return assignment

    core_entries: List[List[Entry]] = [[] for _ in range(n_cores)]
    for task in taskset.sorted_by_utilization(descending=True):
        chosen = _choose_core(
            task, core_entries, placement, admission, next_fit_pointer
        )
        if chosen is None:
            return None
        if placement == Placement.NEXT_FIT:
            next_fit_pointer = chosen
        entry = _normal_entry(task, chosen)
        core_entries[chosen].append(entry)

    _finalize(assignment, core_entries, ordering)
    return assignment


def _choose_core_with_contexts(
    task: Task,
    contexts: List,
    placement: Placement,
    next_fit_pointer: int,
) -> Tuple[Optional[int], Optional[Entry]]:
    """Context-backed core choice; returns the chosen core and the probed
    entry (so the caller's commit reuses the probe's analysis).

    One probe entry is shared across the core scan (its analysis inputs —
    budget, deadline, jitter, priority — are core-independent); ``core``
    is stamped once the placement decides."""
    n_cores = len(contexts)
    entry = _normal_entry(task, core=0)
    pre = contexts[0].prepare(entry)

    if placement in (Placement.FIRST_FIT, Placement.NEXT_FIT):
        start = next_fit_pointer if placement == Placement.NEXT_FIT else 0
        for core in range(start, n_cores):
            if contexts[core].probe(entry, pre=pre) is not None:
                entry.core = core
                return core, entry
        return None, None

    admitting: List[int] = []
    for core in range(n_cores):
        if contexts[core].probe(entry, pre=pre) is not None:
            admitting.append(core)
    if not admitting:
        return None, None
    if placement == Placement.BEST_FIT:
        chosen = max(admitting, key=lambda c: (contexts[c].utilization, -c))
    elif placement == Placement.WORST_FIT:
        chosen = min(admitting, key=lambda c: (contexts[c].utilization, c))
    else:
        raise ValueError(f"unknown placement {placement!r}")
    entry.core = chosen
    return chosen, entry


def _choose_core(
    task: Task,
    core_entries: List[List[Entry]],
    placement: Placement,
    admission: AdmissionTest,
    next_fit_pointer: int,
) -> Optional[int]:
    n_cores = len(core_entries)

    def admits(core: int) -> bool:
        candidate = core_entries[core] + [_normal_entry(task, core)]
        return admission(candidate)

    if placement == Placement.FIRST_FIT:
        for core in range(n_cores):
            if admits(core):
                return core
        return None

    if placement == Placement.NEXT_FIT:
        # Classic next-fit never revisits earlier bins: scan forward from
        # the pointer only.
        for core in range(next_fit_pointer, n_cores):
            if admits(core):
                return core
        return None

    # Best-fit / worst-fit need every admitting core's utilization.
    def core_utilization(core: int) -> float:
        return sum(entry.utilization for entry in core_entries[core])

    admitting = [core for core in range(n_cores) if admits(core)]
    if not admitting:
        return None
    if placement == Placement.BEST_FIT:
        return max(admitting, key=lambda c: (core_utilization(c), -c))
    if placement == Placement.WORST_FIT:
        return min(admitting, key=lambda c: (core_utilization(c), c))
    raise ValueError(f"unknown placement {placement!r}")


def _finalize(
    assignment: Assignment,
    core_entries: List[List[Entry]],
    ordering: Optional[Callable[[Sequence[Entry]], List[Entry]]] = None,
) -> None:
    """Assign local priorities and fill the Assignment."""
    from repro.analysis.rta import order_entries

    order = ordering if ordering is not None else order_entries
    for core, entries in enumerate(core_entries):
        ordered = order(entries)
        if ordered is None or len(ordered) != len(entries):
            raise RuntimeError(
                f"core {core}: ordering failed on an admitted entry set — "
                "admission test and ordering are inconsistent"
            )
        for local_priority, entry in enumerate(ordered):
            entry.local_priority = local_priority
            assignment.add_entry(entry)


# ----------------------------------------------------------------------
# Named convenience wrappers (the algorithms the paper evaluates)
# ----------------------------------------------------------------------


def partition_first_fit_decreasing(
    taskset: TaskSet,
    n_cores: int,
    admission: AdmissionTest = rta_admission,
    incremental: bool = True,
) -> Optional[Assignment]:
    """FFD — the paper's first baseline."""
    return partition_taskset(
        taskset, n_cores, Placement.FIRST_FIT, admission,
        incremental=incremental,
    )


def partition_worst_fit_decreasing(
    taskset: TaskSet,
    n_cores: int,
    admission: AdmissionTest = rta_admission,
    incremental: bool = True,
) -> Optional[Assignment]:
    """WFD — the paper's second baseline."""
    return partition_taskset(
        taskset, n_cores, Placement.WORST_FIT, admission,
        incremental=incremental,
    )


def partition_best_fit_decreasing(
    taskset: TaskSet,
    n_cores: int,
    admission: AdmissionTest = rta_admission,
    incremental: bool = True,
) -> Optional[Assignment]:
    return partition_taskset(
        taskset, n_cores, Placement.BEST_FIT, admission,
        incremental=incremental,
    )


def partition_next_fit_decreasing(
    taskset: TaskSet,
    n_cores: int,
    admission: AdmissionTest = rta_admission,
    incremental: bool = True,
) -> Optional[Assignment]:
    return partition_taskset(
        taskset, n_cores, Placement.NEXT_FIT, admission,
        incremental=incremental,
    )
