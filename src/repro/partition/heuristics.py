"""Bin-packing partitioning heuristics with pluggable admission tests.

A partitioning heuristic is (ordering, placement, admission):

* **ordering** — the paper's baselines sort tasks by *decreasing size*
  (utilization): the "D" in FFD / WFD;
* **placement** — which admitting core receives the task: first-fit scans
  cores in index order, worst-fit picks the least-utilised admitting core,
  best-fit the most-utilised admitting core, next-fit keeps a moving
  pointer and never looks back;
* **admission** — exact response-time analysis by default (what a real
  acceptance test would run), or the Liu & Layland / hyperbolic utilization
  bounds for the cheaper classic variants.

All heuristics return an :class:`~repro.model.assignment.Assignment` on
success or ``None`` when some task fits on no core — the "bin-packing
waste" failure mode that motivates semi-partitioned scheduling.
"""

from __future__ import annotations

from enum import Enum
from typing import Callable, List, Optional, Sequence

from repro.analysis.bounds import (
    hyperbolic_schedulable,
    liu_layland_schedulable,
)
from repro.analysis.rta import core_schedulable
from repro.model.assignment import Assignment, Entry, EntryKind
from repro.model.task import Task
from repro.model.taskset import TaskSet

AdmissionTest = Callable[[Sequence[Entry]], bool]


def rta_admission(entries: Sequence[Entry]) -> bool:
    """Exact RTA admission: every entry on the core meets its deadline."""
    return core_schedulable(entries).schedulable


def liu_layland_admission(entries: Sequence[Entry]) -> bool:
    """Liu & Layland utilization-bound admission (sufficient only)."""
    return liu_layland_schedulable([entry.utilization for entry in entries])


def hyperbolic_admission(entries: Sequence[Entry]) -> bool:
    """Hyperbolic-bound admission (sufficient only, dominates L&L)."""
    return hyperbolic_schedulable(entry.utilization for entry in entries)


class Placement(Enum):
    FIRST_FIT = "first-fit"
    BEST_FIT = "best-fit"
    WORST_FIT = "worst-fit"
    NEXT_FIT = "next-fit"


def _normal_entry(task: Task, core: int) -> Entry:
    return Entry(
        kind=EntryKind.NORMAL,
        task=task,
        core=core,
        budget=task.wcet,
        deadline=task.deadline,
    )


def partition_taskset(
    taskset: TaskSet,
    n_cores: int,
    placement: Placement = Placement.FIRST_FIT,
    admission: AdmissionTest = rta_admission,
    ordering: Optional[Callable[[Sequence[Entry]], List[Entry]]] = None,
) -> Optional[Assignment]:
    """Partition ``taskset`` onto ``n_cores`` cores, decreasing-utilization
    order.  Returns the assignment, or ``None`` if some task fits nowhere.

    Tasks must already carry global priorities (e.g. rate-monotonic).

    ``ordering`` maps a core's entries to their final local priority order
    (highest first); defaults to the rate-monotonic rule.  An admission
    test that certifies "some order exists" (e.g. OPA) must supply the
    matching ordering so the emitted assignment is the certified one.
    """
    for task in taskset:
        if task.priority is None:
            raise ValueError(
                f"task {task.name} has no priority; call "
                "assign_rate_monotonic() before partitioning"
            )
    assignment = Assignment(n_cores)
    core_entries: List[List[Entry]] = [[] for _ in range(n_cores)]
    next_fit_pointer = 0

    for task in taskset.sorted_by_utilization(descending=True):
        chosen = _choose_core(
            task, core_entries, placement, admission, next_fit_pointer
        )
        if chosen is None:
            return None
        if placement == Placement.NEXT_FIT:
            next_fit_pointer = chosen
        entry = _normal_entry(task, chosen)
        core_entries[chosen].append(entry)

    _finalize(assignment, core_entries, ordering)
    return assignment


def _choose_core(
    task: Task,
    core_entries: List[List[Entry]],
    placement: Placement,
    admission: AdmissionTest,
    next_fit_pointer: int,
) -> Optional[int]:
    n_cores = len(core_entries)

    def admits(core: int) -> bool:
        candidate = core_entries[core] + [_normal_entry(task, core)]
        return admission(candidate)

    if placement == Placement.FIRST_FIT:
        for core in range(n_cores):
            if admits(core):
                return core
        return None

    if placement == Placement.NEXT_FIT:
        # Classic next-fit never revisits earlier bins: scan forward from
        # the pointer only.
        for core in range(next_fit_pointer, n_cores):
            if admits(core):
                return core
        return None

    # Best-fit / worst-fit need every admitting core's utilization.
    def core_utilization(core: int) -> float:
        return sum(entry.utilization for entry in core_entries[core])

    admitting = [core for core in range(n_cores) if admits(core)]
    if not admitting:
        return None
    if placement == Placement.BEST_FIT:
        return max(admitting, key=lambda c: (core_utilization(c), -c))
    if placement == Placement.WORST_FIT:
        return min(admitting, key=lambda c: (core_utilization(c), c))
    raise ValueError(f"unknown placement {placement!r}")


def _finalize(
    assignment: Assignment,
    core_entries: List[List[Entry]],
    ordering: Optional[Callable[[Sequence[Entry]], List[Entry]]] = None,
) -> None:
    """Assign local priorities and fill the Assignment."""
    from repro.analysis.rta import order_entries

    order = ordering if ordering is not None else order_entries
    for core, entries in enumerate(core_entries):
        ordered = order(entries)
        if ordered is None or len(ordered) != len(entries):
            raise RuntimeError(
                f"core {core}: ordering failed on an admitted entry set — "
                "admission test and ordering are inconsistent"
            )
        for local_priority, entry in enumerate(ordered):
            entry.local_priority = local_priority
            assignment.add_entry(entry)


# ----------------------------------------------------------------------
# Named convenience wrappers (the algorithms the paper evaluates)
# ----------------------------------------------------------------------


def partition_first_fit_decreasing(
    taskset: TaskSet, n_cores: int, admission: AdmissionTest = rta_admission
) -> Optional[Assignment]:
    """FFD — the paper's first baseline."""
    return partition_taskset(taskset, n_cores, Placement.FIRST_FIT, admission)


def partition_worst_fit_decreasing(
    taskset: TaskSet, n_cores: int, admission: AdmissionTest = rta_admission
) -> Optional[Assignment]:
    """WFD — the paper's second baseline."""
    return partition_taskset(taskset, n_cores, Placement.WORST_FIT, admission)


def partition_best_fit_decreasing(
    taskset: TaskSet, n_cores: int, admission: AdmissionTest = rta_admission
) -> Optional[Assignment]:
    return partition_taskset(taskset, n_cores, Placement.BEST_FIT, admission)


def partition_next_fit_decreasing(
    taskset: TaskSet, n_cores: int, admission: AdmissionTest = rta_admission
) -> Optional[Assignment]:
    return partition_taskset(taskset, n_cores, Placement.NEXT_FIT, admission)
