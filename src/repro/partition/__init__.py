"""Partitioned multiprocessor scheduling (the paper's baselines).

The paper compares its semi-partitioned scheduler against "two widely used
fixed-priority partitioned scheduling algorithms: FFD (first-fit decreasing
size partitioning) and WFD (worst-fit decreasing size partitioning)".
This package implements those plus the best-fit and next-fit variants, all
parameterised by the admission test (exact RTA by default, utilization
bounds optionally).
"""

from repro.partition.heuristics import (
    Placement,
    partition_taskset,
    partition_first_fit_decreasing,
    partition_worst_fit_decreasing,
    partition_best_fit_decreasing,
    partition_next_fit_decreasing,
    rta_admission,
    liu_layland_admission,
    hyperbolic_admission,
)
from repro.partition.edf import (
    edf_admission,
    partition_edf,
    partition_edf_first_fit,
    partition_edf_worst_fit,
)

__all__ = [
    "Placement",
    "partition_taskset",
    "partition_first_fit_decreasing",
    "partition_worst_fit_decreasing",
    "partition_best_fit_decreasing",
    "partition_next_fit_decreasing",
    "rta_admission",
    "liu_layland_admission",
    "hyperbolic_admission",
    "edf_admission",
    "partition_edf",
    "partition_edf_first_fit",
    "partition_edf_worst_fit",
]
