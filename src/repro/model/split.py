"""Split-task representation.

In semi-partitioned scheduling a *split task* is divided into an ordered
sequence of subtasks, each pinned to a core with an execution **budget**.
At run time a job executes its subtasks in order: when the budget of subtask
``j`` is exhausted on core ``c_j``, the job migrates to core ``c_{j+1}``
(paper, Section 2).  Subtasks ``0 .. k-2`` are **body** subtasks; subtask
``k-1`` is the **tail**, which completes the job, after which the task
returns to the sleep queue of the core hosting the **first** subtask.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.model.task import Task


@dataclass(frozen=True)
class Subtask:
    """One piece of a split task.

    Attributes
    ----------
    task:
        The parent task.
    index:
        Position within the split sequence (0-based).
    core:
        The core this subtask is pinned to.
    budget:
        Execution budget in nanoseconds; the subtask runs exactly this much
        of the job's work on ``core`` before migrating (or finishing).
    total_subtasks:
        Length of the parent's split sequence.
    """

    task: Task
    index: int
    core: int
    budget: int
    total_subtasks: int

    def __post_init__(self) -> None:
        if self.budget <= 0:
            raise ValueError(
                f"subtask {self.name}: budget must be positive, got {self.budget}"
            )
        if not 0 <= self.index < self.total_subtasks:
            raise ValueError(f"subtask index {self.index} out of range")

    @property
    def name(self) -> str:
        return f"{self.task.name}#{self.index}"

    @property
    def is_tail(self) -> bool:
        return self.index == self.total_subtasks - 1

    @property
    def is_body(self) -> bool:
        return not self.is_tail

    @property
    def utilization(self) -> float:
        return self.budget / self.task.period


@dataclass(frozen=True)
class SplitTask:
    """A task together with its ordered split across cores."""

    task: Task
    subtasks: tuple

    def __post_init__(self) -> None:
        if len(self.subtasks) < 2:
            raise ValueError(
                f"split task {self.task.name} needs at least two subtasks"
            )
        total = sum(sub.budget for sub in self.subtasks)
        if total != self.task.wcet:
            raise ValueError(
                f"split task {self.task.name}: budgets sum to {total}, "
                f"expected wcet {self.task.wcet}"
            )
        cores = [sub.core for sub in self.subtasks]
        if len(set(cores)) != len(cores):
            raise ValueError(
                f"split task {self.task.name} visits core twice: {cores}"
            )
        for position, sub in enumerate(self.subtasks):
            if sub.index != position:
                raise ValueError(
                    f"split task {self.task.name}: subtask order broken"
                )

    @staticmethod
    def build(task: Task, pieces: Sequence[tuple]) -> "SplitTask":
        """Build from ``[(core, budget), ...]`` pairs in execution order."""
        total = len(pieces)
        subtasks = tuple(
            Subtask(
                task=task,
                index=i,
                core=core,
                budget=budget,
                total_subtasks=total,
            )
            for i, (core, budget) in enumerate(pieces)
        )
        return SplitTask(task=task, subtasks=subtasks)

    @property
    def body_subtasks(self) -> List[Subtask]:
        return [sub for sub in self.subtasks if sub.is_body]

    @property
    def tail(self) -> Subtask:
        return self.subtasks[-1]

    @property
    def first_core(self) -> int:
        """Core hosting the first subtask — where the task 'sleeps'."""
        return self.subtasks[0].core

    @property
    def migration_count_per_job(self) -> int:
        """Number of migrations each job performs (= #subtasks - 1)."""
        return len(self.subtasks) - 1

    def __str__(self) -> str:
        route = " -> ".join(
            f"core{sub.core}:{sub.budget}" for sub in self.subtasks
        )
        return f"{self.task.name}[{route}]"
