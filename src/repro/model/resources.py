"""Shared resources and critical sections (extension).

The paper's system has no resource sharing; a production scheduler library
needs it, so this module adds the classic uniprocessor model on top:

* a **resource** is a named mutex shared by tasks *on the same core*
  (partitioned resource access; cross-core resource sharing in
  semi-partitioned systems is an open research area and deliberately out
  of scope — split tasks may not use resources);
* each task declares **critical sections**: ``(resource, start, duration)``
  with ``start``/``duration`` measured in executed work units — the job
  locks the resource after ``start`` units of its own execution and holds
  it for the next ``duration`` units;
* locking follows the **immediate priority ceiling protocol** (IPCP, the
  POSIX ``PRIO_PROTECT`` behaviour): while holding a resource, a job runs
  at the resource's ceiling priority (the highest priority of any task
  using it).  Non-preemptive critical sections (NPCS) are the special case
  of ceiling = highest priority on the core.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple


@dataclass(frozen=True)
class CriticalSection:
    """One critical section inside a task's execution.

    ``start`` and ``duration`` are in nanoseconds of the task's *own*
    executed work (not wall-clock): a job locks after executing ``start``
    and unlocks after executing ``start + duration``.
    """

    resource: str
    start: int
    duration: int

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError("critical section start must be >= 0")
        if self.duration <= 0:
            raise ValueError("critical section duration must be positive")

    @property
    def end(self) -> int:
        return self.start + self.duration


@dataclass
class ResourceModel:
    """Critical sections per task, with validation and ceiling computation.

    >>> model = ResourceModel()
    >>> model.add("a", CriticalSection("lock", start=1, duration=2))
    >>> model.sections_of("a")[0].resource
    'lock'
    """

    sections: Dict[str, List[CriticalSection]] = field(default_factory=dict)

    def add(self, task_name: str, section: CriticalSection) -> None:
        existing = self.sections.setdefault(task_name, [])
        for other in existing:
            if section.start < other.end and other.start < section.end:
                raise ValueError(
                    f"task {task_name}: critical sections overlap "
                    f"({other} vs {section}); nesting is not supported"
                )
        existing.append(section)
        existing.sort(key=lambda s: s.start)

    def sections_of(self, task_name: str) -> List[CriticalSection]:
        return self.sections.get(task_name, [])

    def validate_against(self, tasks: Iterable) -> None:
        """Check sections fit inside each task's WCET."""
        by_name = {task.name: task for task in tasks}
        for name, sections in self.sections.items():
            task = by_name.get(name)
            if task is None:
                raise ValueError(f"resource model names unknown task {name!r}")
            for section in sections:
                if section.end > task.wcet:
                    raise ValueError(
                        f"task {name}: critical section ends at "
                        f"{section.end} beyond WCET {task.wcet}"
                    )

    def resources(self) -> List[str]:
        names = set()
        for sections in self.sections.values():
            for section in sections:
                names.add(section.resource)
        return sorted(names)

    def ceilings(
        self, priorities: Mapping[str, int]
    ) -> Dict[str, int]:
        """Ceiling priority of each resource: the highest (numerically
        smallest) priority among its users.  Tasks absent from
        ``priorities`` are ignored."""
        ceilings: Dict[str, int] = {}
        for task_name, sections in self.sections.items():
            priority = priorities.get(task_name)
            if priority is None:
                continue
            for section in sections:
                current = ceilings.get(section.resource)
                if current is None or priority < current:
                    ceilings[section.resource] = priority
        return ceilings

    def max_section_of(self, task_name: str) -> int:
        """Longest critical section of one task (0 if none)."""
        return max(
            (s.duration for s in self.sections_of(task_name)), default=0
        )

    @property
    def is_empty(self) -> bool:
        return not any(self.sections.values())
