"""The sporadic task abstraction.

A task is a sporadic (or strictly periodic, in the simulator) stream of jobs,
each needing up to ``wcet`` nanoseconds of processor time within ``deadline``
nanoseconds of its release; consecutive releases are at least ``period``
nanoseconds apart.  This matches the model of the paper and its reference [4]
(Guan et al., RTAS 2010): constrained deadlines, fixed priorities assigned
rate-monotonically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass(frozen=True)
class Task:
    """An immutable sporadic task.

    Attributes
    ----------
    name:
        Unique identifier within a task set.
    wcet:
        Worst-case execution time ``C`` in nanoseconds (> 0).
    period:
        Minimum inter-release separation ``T`` in nanoseconds (> 0).
    deadline:
        Relative deadline ``D`` in nanoseconds; defaults to ``period``
        (implicit deadlines, as in the paper's evaluation).
    priority:
        Fixed priority; **smaller is higher** (Linux convention).  ``None``
        until a priority-assignment pass (e.g. rate-monotonic) runs.
    wss:
        Working-set size in bytes, consumed by the cache-overhead model.
        The paper notes that cache-related delay depends on "the application
        memory characters"; 64 KiB is a representative mid-size footprint.

    >>> task = Task("video", wcet=6, period=10)
    >>> task.deadline  # implicit deadline
    10
    >>> round(task.utilization, 2)
    0.6
    >>> task.with_priority(0).priority
    0
    """

    name: str
    wcet: int
    period: int
    deadline: int = field(default=0)
    priority: Optional[int] = None
    wss: int = 64 * 1024

    def __post_init__(self) -> None:
        if self.deadline == 0:
            object.__setattr__(self, "deadline", self.period)
        if self.wcet <= 0:
            raise ValueError(f"task {self.name}: wcet must be positive")
        if self.period <= 0:
            raise ValueError(f"task {self.name}: period must be positive")
        if self.deadline <= 0:
            raise ValueError(f"task {self.name}: deadline must be positive")
        if self.wcet > self.deadline:
            raise ValueError(
                f"task {self.name}: wcet {self.wcet} exceeds deadline "
                f"{self.deadline}; the task can never meet its deadline"
            )
        if self.deadline > self.period:
            raise ValueError(
                f"task {self.name}: deadline {self.deadline} exceeds period "
                f"{self.period}; only constrained deadlines are supported"
            )

    @property
    def utilization(self) -> float:
        """``C / T`` as a float in (0, 1]."""
        return self.wcet / self.period

    @property
    def density(self) -> float:
        """``C / D`` as a float in (0, 1]."""
        return self.wcet / self.deadline

    def with_priority(self, priority: int) -> "Task":
        """Return a copy of this task with ``priority`` set."""
        return Task(
            name=self.name,
            wcet=self.wcet,
            period=self.period,
            deadline=self.deadline,
            priority=priority,
            wss=self.wss,
        )

    def with_wcet(self, wcet: int) -> "Task":
        """Return a copy of this task with a different WCET."""
        return Task(
            name=self.name,
            wcet=wcet,
            period=self.period,
            deadline=self.deadline,
            priority=self.priority,
            wss=self.wss,
        )

    def __str__(self) -> str:
        return (
            f"{self.name}(C={self.wcet}, T={self.period}, D={self.deadline}, "
            f"u={self.utilization:.3f})"
        )


def rm_sort_key(task: Task) -> tuple:
    """Rate-monotonic ordering key: shorter period first, name tie-break."""
    return (task.period, task.name)


def dm_sort_key(task: Task) -> tuple:
    """Deadline-monotonic ordering key: shorter deadline first."""
    return (task.deadline, task.name)
