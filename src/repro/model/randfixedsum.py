"""Stafford's RandFixedSum (via Emberson, Stafford & Davis, WATERS 2010).

The modern standard for generating unbiased task utilizations: ``n`` values
that sum to ``U`` with each value in ``[a, b]``, sampled *uniformly* from
that simplex slice.  Unlike UUniFast-discard, acceptance never degenerates
when the caps are tight (the case that made UUniFast-discard struggle in
the SPA1 tests).

This is a faithful port of Roger Stafford's MATLAB ``randfixedsum`` for
the case ``a = 0`` generalised to ``[a, b]`` by shifting: draw ``n`` values
in ``[0, 1]`` summing to ``s`` and rescale.  Requires numpy.
"""

from __future__ import annotations

import random
from typing import List

import numpy as np


def randfixedsum(
    rng: random.Random,
    n: int,
    total: float,
    low: float = 0.0,
    high: float = 1.0,
) -> List[float]:
    """Draw ``n`` values in ``[low, high]`` summing to ``total``, uniformly.

    >>> import random
    >>> values = randfixedsum(random.Random(1), 8, 3.2)
    >>> len(values), abs(sum(values) - 3.2) < 1e-9, max(values) <= 1.0
    (8, True, True)
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if not low < high:
        raise ValueError("need low < high")
    if not n * low - 1e-12 <= total <= n * high + 1e-12:
        raise ValueError(
            f"total {total} outside feasible range "
            f"[{n * low}, {n * high}]"
        )
    # Normalise to the unit problem: n values in [0,1] summing to s.
    span = high - low
    s = (total - n * low) / span
    values = _unit_randfixedsum(rng, n, s)
    return [low + v * span for v in values]


def _unit_randfixedsum(rng: random.Random, n: int, s: float) -> List[float]:
    """Stafford's algorithm on the unit cube."""
    s = min(max(s, 0.0), float(n))
    if n == 1:
        return [s]
    # Degenerate corners.
    if s <= 1e-12:
        return [0.0] * n
    if s >= n - 1e-12:
        return [1.0] * n

    k = int(min(max(np.floor(s), 0), n - 1))
    s = max(min(s, k + 1), k)
    s1 = s - np.arange(k, k - n, -1.0)
    s2 = np.arange(k + n, k, -1.0) - s

    tiny = np.finfo(float).tiny
    huge = np.finfo(float).max
    w = np.zeros((n, n + 1))
    w[0, 1] = huge
    t = np.zeros((n - 1, n))
    for i in range(2, n + 1):
        tmp1 = w[i - 2, 1 : i + 1] * s1[: i] / float(i)
        tmp2 = w[i - 2, : i] * s2[n - i : n] / float(i)
        w[i - 1, 1 : i + 1] = tmp1 + tmp2
        tmp3 = w[i - 1, 1 : i + 1] + tiny
        tmp4 = s2[n - i : n] > s1[: i]
        t[i - 2, : i] = (tmp2 / tmp3) * tmp4 + (1 - tmp1 / tmp3) * (
            np.logical_not(tmp4)
        )

    x = np.zeros(n)
    rt = np.array([rng.random() for _ in range(n - 1)])
    rs = np.array([rng.random() for _ in range(n - 1)])
    current_s = s
    j = k + 1
    sm, pr = 0.0, 1.0
    for i in range(n - 1, 0, -1):
        e = float(rt[n - i - 1] <= t[i - 1, j - 1])
        sx = rs[n - i - 1] ** (1.0 / i)
        sm += (1 - sx) * pr * current_s / (i + 1)
        pr *= sx
        x[n - i - 1] = sm + pr * e
        current_s -= e
        j -= int(e)
    x[n - 1] = sm + pr * current_s

    # Random permutation for exchangeability.
    order = list(range(n))
    rng.shuffle(order)
    return [float(x[index]) for index in order]
