"""Task-to-core assignment produced by (semi-)partitioning algorithms.

An :class:`Assignment` is the contract between the partitioning algorithms
(`repro.partition`, `repro.semipart`), the schedulability analysis
(`repro.analysis`) and the kernel simulator (`repro.kernel`):

* every core has an ordered list of :class:`Entry` objects (highest local
  priority first);
* an entry is either a whole task (``NORMAL``) or one subtask of a split
  task (``BODY`` / ``TAIL``);
* body subtasks occupy the top local priorities — the rule the FP-TS family
  uses so a body's response time is unaffected by anything assigned later;
* tail and normal entries are ordered by the task's global (RM) priority.

Entries also carry the analysis-facing parameters (synthetic deadline and
release jitter for subtasks) so the simulator and the analysis consume the
exact same object.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterator, List, Optional

from repro.model.task import Task
from repro.model.split import SplitTask, Subtask


class EntryKind(Enum):
    NORMAL = "normal"
    BODY = "body"
    TAIL = "tail"


@dataclass
class Entry:
    """One schedulable entity resident on a core."""

    kind: EntryKind
    task: Task
    core: int
    budget: int
    subtask: Optional[Subtask] = None
    # Analysis-facing parameters (nanoseconds):
    deadline: int = 0  # local (possibly synthetic) relative deadline
    jitter: int = 0  # release jitter relative to the job's nominal release
    local_priority: int = 0  # 0 = highest on this core
    body_rank: int = 0  # creation order among body subtasks (earlier = higher)

    def __post_init__(self) -> None:
        if self.budget <= 0:
            raise ValueError(f"entry for {self.task.name}: budget must be positive")
        if self.deadline == 0:
            self.deadline = self.task.deadline
        if self.kind == EntryKind.NORMAL and self.budget != self.task.wcet:
            raise ValueError(
                f"normal entry for {self.task.name} must carry the full WCET"
            )
        if self.kind != EntryKind.NORMAL and self.subtask is None:
            raise ValueError("body/tail entries need their Subtask")

    @property
    def name(self) -> str:
        if self.subtask is not None:
            return self.subtask.name
        return self.task.name

    @property
    def period(self) -> int:
        return self.task.period

    @property
    def utilization(self) -> float:
        return self.budget / self.task.period

    def __str__(self) -> str:
        return (
            f"{self.name}@core{self.core}"
            f"[{self.kind.value}, C={self.budget}, D={self.deadline}, "
            f"J={self.jitter}, p={self.local_priority}]"
        )


@dataclass
class CoreAssignment:
    """The set of entries resident on one core, in local priority order."""

    core: int
    entries: List[Entry] = field(default_factory=list)

    @property
    def utilization(self) -> float:
        return sum(entry.utilization for entry in self.entries)

    def sorted_entries(self) -> List[Entry]:
        return sorted(self.entries, key=lambda e: e.local_priority)

    def add(self, entry: Entry) -> None:
        if entry.core != self.core:
            raise ValueError(
                f"entry for core {entry.core} added to core {self.core}"
            )
        self.entries.append(entry)

    def __len__(self) -> int:
        return len(self.entries)


class Assignment:
    """A complete mapping of a task set onto ``m`` cores."""

    def __init__(self, n_cores: int) -> None:
        if n_cores <= 0:
            raise ValueError("need at least one core")
        self.cores: List[CoreAssignment] = [
            CoreAssignment(core=i) for i in range(n_cores)
        ]
        self.split_tasks: Dict[str, SplitTask] = {}

    @property
    def n_cores(self) -> int:
        return len(self.cores)

    def add_entry(self, entry: Entry) -> None:
        self.cores[entry.core].add(entry)

    def register_split(self, split: SplitTask) -> None:
        self.split_tasks[split.task.name] = split

    def entries(self) -> Iterator[Entry]:
        for core in self.cores:
            yield from core.entries

    def entries_for_task(self, name: str) -> List[Entry]:
        return [entry for entry in self.entries() if entry.task.name == name]

    def core_of(self, name: str) -> Optional[int]:
        """Core of a normal task; None for split tasks (use split_tasks)."""
        if name in self.split_tasks:
            return None
        for entry in self.entries():
            if entry.task.name == name:
                return entry.core
        raise KeyError(f"task {name!r} not in assignment")

    @property
    def tasks(self) -> List[Task]:
        """All distinct tasks in the assignment."""
        seen: Dict[str, Task] = {}
        for entry in self.entries():
            seen.setdefault(entry.task.name, entry.task)
        return list(seen.values())

    @property
    def total_utilization(self) -> float:
        return sum(core.utilization for core in self.cores)

    @property
    def n_split_tasks(self) -> int:
        return len(self.split_tasks)

    @property
    def n_migrations_per_hyperperiod(self) -> Dict[str, int]:
        """Migrations per job for each split task."""
        return {
            name: split.migration_count_per_job
            for name, split in self.split_tasks.items()
        }

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Check structural consistency; raises ValueError on failure."""
        for core in self.cores:
            priorities = [entry.local_priority for entry in core.entries]
            if len(set(priorities)) != len(priorities):
                raise ValueError(
                    f"core {core.core}: duplicate local priorities {priorities}"
                )
        # Every split task's subtasks must appear exactly once, on the right
        # cores, with matching budgets.
        for name, split in self.split_tasks.items():
            entries = self.entries_for_task(name)
            if len(entries) != len(split.subtasks):
                raise ValueError(
                    f"split task {name}: {len(entries)} entries for "
                    f"{len(split.subtasks)} subtasks"
                )
            by_index = {entry.subtask.index: entry for entry in entries}
            for sub in split.subtasks:
                entry = by_index.get(sub.index)
                if entry is None:
                    raise ValueError(f"split task {name}: subtask {sub.index} missing")
                if entry.core != sub.core or entry.budget != sub.budget:
                    raise ValueError(
                        f"split task {name}: subtask {sub.index} entry mismatch"
                    )
        # Non-split tasks appear exactly once.
        counts: Dict[str, int] = {}
        for entry in self.entries():
            counts[entry.task.name] = counts.get(entry.task.name, 0) + 1
        for name, count in counts.items():
            if name not in self.split_tasks and count != 1:
                raise ValueError(f"task {name} assigned {count} times")

    def describe(self) -> str:
        lines = []
        for core in self.cores:
            lines.append(
                f"core {core.core} (U={core.utilization:.3f}):"
            )
            for entry in core.sorted_entries():
                lines.append(f"  {entry}")
        if self.split_tasks:
            lines.append("split tasks:")
            for split in self.split_tasks.values():
                lines.append(f"  {split}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"Assignment(m={self.n_cores}, tasks={len(self.tasks)}, "
            f"splits={self.n_split_tasks})"
        )
