"""Random task-set generation.

The PPES'11 paper evaluates "randomly generated task sets" without printing
the generator parameters; its reference [4] (Guan et al., RTAS 2010 — the
FP-TS paper) uses the standard recipe that we implement here:

* per-task utilizations from **UUniFast** (Bini & Buttazzo, 2005), optionally
  with the *discard* variant that rejects draws containing a task with
  utilization above a cap;
* periods drawn **log-uniformly** from a range (default 10 ms .. 1000 ms,
  typical embedded rates);
* WCET = round(utilization × period), clamped to at least 1 ns.

All randomness flows through an explicit ``random.Random`` instance so every
experiment is reproducible from a seed.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import List, Optional

from repro.model.task import Task
from repro.model.taskset import TaskSet
from repro.model.time import MS, US


def uunifast(rng: random.Random, n: int, total_utilization: float) -> List[float]:
    """Draw ``n`` utilizations summing to ``total_utilization`` (UUniFast).

    Produces an unbiased uniform sample from the simplex
    ``{u : sum(u) = U, u_i > 0}``.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if total_utilization <= 0:
        raise ValueError("total_utilization must be positive")
    utilizations = []
    remaining = total_utilization
    for i in range(1, n):
        next_remaining = remaining * rng.random() ** (1.0 / (n - i))
        utilizations.append(remaining - next_remaining)
        remaining = next_remaining
    utilizations.append(remaining)
    return utilizations


def uunifast_discard(
    rng: random.Random,
    n: int,
    total_utilization: float,
    max_task_utilization: float = 1.0,
    max_attempts: int = 10_000,
) -> List[float]:
    """UUniFast with rejection of draws exceeding ``max_task_utilization``.

    For multiprocessor experiments the total utilization exceeds 1, so plain
    UUniFast can emit tasks with utilization > 1 (infeasible).  The standard
    fix (Davis & Burns) is to discard and redraw.
    """
    if total_utilization > n * max_task_utilization:
        raise ValueError(
            f"cannot fit total utilization {total_utilization} with "
            f"{n} tasks capped at {max_task_utilization}"
        )
    for _attempt in range(max_attempts):
        utilizations = uunifast(rng, n, total_utilization)
        if max(utilizations) <= max_task_utilization:
            return utilizations
    raise RuntimeError(
        f"uunifast_discard failed after {max_attempts} attempts "
        f"(n={n}, U={total_utilization}, cap={max_task_utilization})"
    )


def log_uniform_periods(
    rng: random.Random,
    n: int,
    period_min: int,
    period_max: int,
    granularity: int = 100 * US,
) -> List[int]:
    """Draw ``n`` periods log-uniformly in ``[period_min, period_max]`` ns.

    Results are rounded to ``granularity`` so hyperperiods stay finite and
    simulation horizons reasonable.
    """
    if period_min <= 0 or period_max < period_min:
        raise ValueError("invalid period range")
    periods = []
    log_min = math.log(period_min)
    log_max = math.log(period_max)
    for _ in range(n):
        raw = math.exp(rng.uniform(log_min, log_max))
        quantized = max(granularity, int(round(raw / granularity)) * granularity)
        quantized = min(quantized, (period_max // granularity) * granularity)
        periods.append(quantized)
    return periods


@dataclass
class TaskSetGenerator:
    """Reusable, seeded task-set factory for the evaluation harness.

    Parameters mirror the FP-TS experimental setup: ``n`` tasks whose
    utilizations are drawn by UUniFast-discard (default) or Stafford's
    RandFixedSum (``method="randfixedsum"``), log-uniform periods in
    ``[period_min, period_max]``, implicit deadlines, RM priorities.

    >>> gen = TaskSetGenerator(n_tasks=8, seed=42)
    >>> ts = gen.generate(total_utilization=3.2)
    >>> len(ts), abs(ts.total_utilization - 3.2) < 0.05
    (8, True)
    """

    n_tasks: int
    seed: int = 0
    period_min: int = 10 * MS
    period_max: int = 1000 * MS
    period_granularity: int = 100 * US
    max_task_utilization: float = 1.0
    wss_min: int = 4 * 1024
    wss_max: int = 256 * 1024
    assign_rm: bool = True
    method: str = "uunifast"
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.n_tasks <= 0:
            raise ValueError("n_tasks must be positive")
        if self.method not in ("uunifast", "randfixedsum"):
            raise ValueError(
                f"unknown method {self.method!r}; use 'uunifast' or "
                "'randfixedsum'"
            )
        self._rng = random.Random(self.seed)

    def reseed(self, seed: int) -> None:
        self._rng = random.Random(seed)

    def _draw_utilizations(self, total_utilization: float) -> List[float]:
        if self.method == "randfixedsum":
            from repro.model.randfixedsum import randfixedsum

            return randfixedsum(
                self._rng,
                self.n_tasks,
                total_utilization,
                low=0.0,
                high=self.max_task_utilization,
            )
        return uunifast_discard(
            self._rng,
            self.n_tasks,
            total_utilization,
            self.max_task_utilization,
        )

    def generate(self, total_utilization: float) -> TaskSet:
        """Generate one task set with the requested total utilization."""
        utilizations = self._draw_utilizations(total_utilization)
        periods = log_uniform_periods(
            self._rng,
            self.n_tasks,
            self.period_min,
            self.period_max,
            self.period_granularity,
        )
        tasks = []
        for index, (u, period) in enumerate(zip(utilizations, periods)):
            wcet = max(1, int(round(u * period)))
            wcet = min(wcet, period)  # keep u <= 1 after rounding
            wss = self._rng.randint(self.wss_min, self.wss_max)
            tasks.append(
                Task(
                    name=f"t{index:03d}",
                    wcet=wcet,
                    period=period,
                    wss=wss,
                )
            )
        taskset = TaskSet(tasks)
        if self.assign_rm:
            taskset = taskset.assign_rate_monotonic()
        return taskset

    def generate_many(
        self, total_utilization: float, count: int
    ) -> List[TaskSet]:
        return [self.generate(total_utilization) for _ in range(count)]
