"""Random task-set generation.

The PPES'11 paper evaluates "randomly generated task sets" without printing
the generator parameters; its reference [4] (Guan et al., RTAS 2010 — the
FP-TS paper) uses the standard recipe that we implement here:

* per-task utilizations from **UUniFast** (Bini & Buttazzo, 2005), optionally
  with the *discard* variant that rejects draws containing a task with
  utilization above a cap;
* periods drawn **log-uniformly** from a range (default 10 ms .. 1000 ms,
  typical embedded rates);
* WCET = round(utilization × period), clamped to at least 1 ns.

All randomness flows through an explicit ``random.Random`` instance so every
experiment is reproducible from a seed.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.model.task import Task
from repro.model.taskset import TaskSet
from repro.model.time import MS, US


def uunifast(rng: random.Random, n: int, total_utilization: float) -> List[float]:
    """Draw ``n`` utilizations summing to ``total_utilization`` (UUniFast).

    Produces an unbiased uniform sample from the simplex
    ``{u : sum(u) = U, u_i > 0}``.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if total_utilization <= 0:
        raise ValueError("total_utilization must be positive")
    utilizations = []
    remaining = total_utilization
    for i in range(1, n):
        next_remaining = remaining * rng.random() ** (1.0 / (n - i))
        utilizations.append(remaining - next_remaining)
        remaining = next_remaining
    utilizations.append(remaining)
    return utilizations


def uunifast_discard(
    rng: random.Random,
    n: int,
    total_utilization: float,
    max_task_utilization: float = 1.0,
    max_attempts: int = 10_000,
) -> List[float]:
    """UUniFast with rejection of draws exceeding ``max_task_utilization``.

    For multiprocessor experiments the total utilization exceeds 1, so plain
    UUniFast can emit tasks with utilization > 1 (infeasible).  The standard
    fix (Davis & Burns) is to discard and redraw.
    """
    if total_utilization > n * max_task_utilization:
        raise ValueError(
            f"cannot fit total utilization {total_utilization} with "
            f"{n} tasks capped at {max_task_utilization}"
        )
    for _attempt in range(max_attempts):
        utilizations = uunifast(rng, n, total_utilization)
        if max(utilizations) <= max_task_utilization:
            return utilizations
    raise RuntimeError(
        f"uunifast_discard failed after {max_attempts} attempts "
        f"(n={n}, U={total_utilization}, cap={max_task_utilization})"
    )


def log_uniform_periods(
    rng: random.Random,
    n: int,
    period_min: int,
    period_max: int,
    granularity: int = 100 * US,
) -> List[int]:
    """Draw ``n`` periods log-uniformly in ``[period_min, period_max]`` ns.

    Results are rounded to ``granularity`` so hyperperiods stay finite and
    simulation horizons reasonable.
    """
    if period_min <= 0 or period_max < period_min:
        raise ValueError("invalid period range")
    periods = []
    log_min = math.log(period_min)
    log_max = math.log(period_max)
    for _ in range(n):
        raw = math.exp(rng.uniform(log_min, log_max))
        quantized = max(granularity, int(round(raw / granularity)) * granularity)
        quantized = min(quantized, (period_max // granularity) * granularity)
        periods.append(quantized)
    return periods


@dataclass
class GeneratedBatch:
    """A population of generated task sets in struct-of-arrays form.

    Arrays are (sets, tasks) int64, each lane packed in rate-monotonic
    priority order (column index == priority rank); ``names`` carries
    the per-lane task names in the same order.  The arrays feed the
    batch analysis layer directly
    (``repro.analysis.batch.TaskSetPopulation.from_arrays``);
    :meth:`tasksets` materializes the identical scalar
    :class:`~repro.model.taskset.TaskSet` objects on demand (memoized)
    for fallback paths and differential checks.
    """

    wcet: np.ndarray
    period: np.ndarray
    deadline: np.ndarray
    wss: np.ndarray
    names: Tuple[Tuple[str, ...], ...]
    _memo: Optional[List[TaskSet]] = field(
        default=None, repr=False, compare=False
    )

    @property
    def n_sets(self) -> int:
        return self.wcet.shape[0]

    @property
    def n_tasks(self) -> int:
        return self.wcet.shape[1]

    def tasksets(self) -> List[TaskSet]:
        """The same task sets as scalar objects, bit-identical to what
        ``generate_many`` would have produced from the same seed."""
        if self._memo is None:
            self._memo = [
                TaskSet(
                    Task(
                        name=self.names[row][col],
                        wcet=int(self.wcet[row, col]),
                        period=int(self.period[row, col]),
                        deadline=int(self.deadline[row, col]),
                        priority=col,
                        wss=int(self.wss[row, col]),
                    )
                    for col in range(self.n_tasks)
                )
                for row in range(self.n_sets)
            ]
        return self._memo


@dataclass
class TaskSetGenerator:
    """Reusable, seeded task-set factory for the evaluation harness.

    Parameters mirror the FP-TS experimental setup: ``n`` tasks whose
    utilizations are drawn by UUniFast-discard (default) or Stafford's
    RandFixedSum (``method="randfixedsum"``), log-uniform periods in
    ``[period_min, period_max]``, implicit deadlines, RM priorities.

    >>> gen = TaskSetGenerator(n_tasks=8, seed=42)
    >>> ts = gen.generate(total_utilization=3.2)
    >>> len(ts), abs(ts.total_utilization - 3.2) < 0.05
    (8, True)
    """

    n_tasks: int
    seed: int = 0
    period_min: int = 10 * MS
    period_max: int = 1000 * MS
    period_granularity: int = 100 * US
    max_task_utilization: float = 1.0
    wss_min: int = 4 * 1024
    wss_max: int = 256 * 1024
    assign_rm: bool = True
    method: str = "uunifast"
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.n_tasks <= 0:
            raise ValueError("n_tasks must be positive")
        if self.method not in ("uunifast", "randfixedsum"):
            raise ValueError(
                f"unknown method {self.method!r}; use 'uunifast' or "
                "'randfixedsum'"
            )
        self._rng = random.Random(self.seed)

    def reseed(self, seed: int) -> None:
        self._rng = random.Random(seed)

    def _draw_utilizations(self, total_utilization: float) -> List[float]:
        if self.method == "randfixedsum":
            from repro.model.randfixedsum import randfixedsum

            return randfixedsum(
                self._rng,
                self.n_tasks,
                total_utilization,
                low=0.0,
                high=self.max_task_utilization,
            )
        return uunifast_discard(
            self._rng,
            self.n_tasks,
            total_utilization,
            self.max_task_utilization,
        )

    def generate(self, total_utilization: float) -> TaskSet:
        """Generate one task set with the requested total utilization."""
        utilizations = self._draw_utilizations(total_utilization)
        periods = log_uniform_periods(
            self._rng,
            self.n_tasks,
            self.period_min,
            self.period_max,
            self.period_granularity,
        )
        tasks = []
        for index, (u, period) in enumerate(zip(utilizations, periods)):
            wcet = max(1, int(round(u * period)))
            wcet = min(wcet, period)  # keep u <= 1 after rounding
            wss = self._rng.randint(self.wss_min, self.wss_max)
            tasks.append(
                Task(
                    name=f"t{index:03d}",
                    wcet=wcet,
                    period=period,
                    wss=wss,
                )
            )
        taskset = TaskSet(tasks)
        if self.assign_rm:
            taskset = taskset.assign_rate_monotonic()
        return taskset

    def generate_many(
        self, total_utilization: float, count: int
    ) -> List[TaskSet]:
        return [self.generate(total_utilization) for _ in range(count)]

    def generate_batch(
        self, total_utilization: float, count: int
    ) -> GeneratedBatch:
        """Generate ``count`` task sets as one struct-of-arrays batch.

        Bit-identical to ``generate_many(total_utilization, count)``:
        the random draws (UUniFast rejection loops, log-uniform periods,
        working-set sizes) are data-dependent and stay on the scalar
        ``random.Random`` stream in the exact per-set order, while the
        derived arithmetic — WCET rounding/clamping and the packing into
        rate-monotonic priority order — runs vectorized over the whole
        batch.  ``np.rint`` is round-half-to-even, the same rule as
        Python's ``round``, so the WCETs match integer for integer.
        """
        if not self.assign_rm:
            raise ValueError(
                "generate_batch requires assign_rm=True: batch lanes "
                "are packed in rate-monotonic priority order"
            )
        n = self.n_tasks
        utilization = np.empty((count, n), dtype=np.float64)
        periods = np.empty((count, n), dtype=np.int64)
        wss = np.empty((count, n), dtype=np.int64)
        for row in range(count):
            utilization[row] = self._draw_utilizations(total_utilization)
            periods[row] = log_uniform_periods(
                self._rng,
                n,
                self.period_min,
                self.period_max,
                self.period_granularity,
            )
            for col in range(n):
                wss[row, col] = self._rng.randint(
                    self.wss_min, self.wss_max
                )
        wcet = np.minimum(
            np.maximum(np.rint(utilization * periods).astype(np.int64), 1),
            periods,
        )
        # Rate-monotonic rank per lane: the scalar path sorts tasks by
        # (period, name); replicate with python sorted on the identical
        # keys so period ties break the same way.
        base_names = [f"t{col:03d}" for col in range(n)]
        order = np.empty((count, n), dtype=np.int64)
        for row in range(count):
            lane = periods[row]
            order[row] = sorted(
                range(n), key=lambda col: (lane[col], base_names[col])
            )
        rows = np.arange(count)[:, None]
        period_rm = periods[rows, order]
        return GeneratedBatch(
            wcet=wcet[rows, order],
            period=period_rm,
            deadline=period_rm.copy(),
            wss=wss[rows, order],
            names=tuple(
                tuple(base_names[col] for col in lane)
                for lane in order.tolist()
            ),
        )
