"""Task-set serialisation (JSON).

The interchange format is a JSON object::

    {
      "tasks": [
        {"name": "video", "wcet_us": 6000, "period_us": 10000,
         "deadline_us": 10000, "wss_kib": 64},
        ...
      ]
    }

Times are microseconds (the natural unit at this scale), working sets KiB;
both are converted to the library's canonical nanoseconds/bytes on load.
``deadline_us`` and ``wss_kib`` are optional (defaults: implicit deadline,
64 KiB).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.model.task import Task
from repro.model.taskset import TaskSet
from repro.model.time import US


def taskset_to_dict(taskset: TaskSet) -> dict:
    return {
        "tasks": [
            {
                "name": task.name,
                "wcet_us": task.wcet / US,
                "period_us": task.period / US,
                "deadline_us": task.deadline / US,
                "wss_kib": task.wss / 1024,
            }
            for task in taskset
        ]
    }


def taskset_from_dict(data: dict) -> TaskSet:
    if "tasks" not in data:
        raise ValueError("task-set JSON must have a top-level 'tasks' list")
    tasks = []
    for index, spec in enumerate(data["tasks"]):
        try:
            name = spec.get("name", f"t{index:03d}")
            wcet = int(round(spec["wcet_us"] * US))
            period = int(round(spec["period_us"] * US))
        except KeyError as missing:
            raise ValueError(
                f"task #{index}: missing required field {missing}"
            ) from None
        deadline = int(round(spec.get("deadline_us", 0) * US))
        wss = int(round(spec.get("wss_kib", 64) * 1024))
        tasks.append(
            Task(
                name=name,
                wcet=wcet,
                period=period,
                deadline=deadline,
                wss=wss,
            )
        )
    return TaskSet(tasks)


def save_taskset(taskset: TaskSet, path: Union[str, Path]) -> None:
    Path(path).write_text(json.dumps(taskset_to_dict(taskset), indent=2))


def load_taskset(path: Union[str, Path]) -> TaskSet:
    return taskset_from_dict(json.loads(Path(path).read_text()))


# ----------------------------------------------------------------------
# Assignment serialisation
# ----------------------------------------------------------------------
#
# Schema: ``{"n_cores": m, "entries": [ {...}, ... ]}`` with one record per
# entry; split tasks are reconstructed from their subtask records.  Times
# stay in nanoseconds here (assignments are machine artefacts, not
# hand-written files).


def assignment_to_dict(assignment) -> dict:
    from repro.model.assignment import Assignment  # noqa: F401 (doc aid)

    entries = []
    for entry in assignment.entries():
        record = {
            "task": {
                "name": entry.task.name,
                "wcet_ns": entry.task.wcet,
                "period_ns": entry.task.period,
                "deadline_ns": entry.task.deadline,
                "priority": entry.task.priority,
                "wss": entry.task.wss,
            },
            "kind": entry.kind.value,
            "core": entry.core,
            "budget_ns": entry.budget,
            "deadline_ns": entry.deadline,
            "jitter_ns": entry.jitter,
            "local_priority": entry.local_priority,
            "body_rank": entry.body_rank,
        }
        if entry.subtask is not None:
            record["subtask_index"] = entry.subtask.index
            record["total_subtasks"] = entry.subtask.total_subtasks
        entries.append(record)
    return {"n_cores": assignment.n_cores, "entries": entries}


def assignment_from_dict(data: dict):
    from repro.model.assignment import Assignment, Entry, EntryKind
    from repro.model.split import SplitTask, Subtask

    assignment = Assignment(data["n_cores"])
    tasks: dict = {}
    split_pieces: dict = {}
    for record in data["entries"]:
        spec = record["task"]
        task = tasks.get(spec["name"])
        if task is None:
            task = Task(
                name=spec["name"],
                wcet=spec["wcet_ns"],
                period=spec["period_ns"],
                deadline=spec["deadline_ns"],
                priority=spec.get("priority"),
                wss=spec.get("wss", 64 * 1024),
            )
            tasks[spec["name"]] = task
        subtask = None
        if "subtask_index" in record:
            subtask = Subtask(
                task=task,
                index=record["subtask_index"],
                core=record["core"],
                budget=record["budget_ns"],
                total_subtasks=record["total_subtasks"],
            )
            split_pieces.setdefault(task.name, []).append(subtask)
        entry = Entry(
            kind=EntryKind(record["kind"]),
            task=task,
            core=record["core"],
            budget=record["budget_ns"],
            subtask=subtask,
            deadline=record["deadline_ns"],
            jitter=record["jitter_ns"],
            local_priority=record["local_priority"],
            body_rank=record.get("body_rank", 0),
        )
        assignment.add_entry(entry)
    for name, pieces in split_pieces.items():
        pieces.sort(key=lambda s: s.index)
        split = SplitTask.build(
            tasks[name], [(s.core, s.budget) for s in pieces]
        )
        assignment.register_split(split)
    assignment.validate()
    return assignment


def save_assignment(assignment, path: Union[str, Path]) -> None:
    Path(path).write_text(json.dumps(assignment_to_dict(assignment), indent=2))


def load_assignment(path: Union[str, Path]):
    return assignment_from_dict(json.loads(Path(path).read_text()))
