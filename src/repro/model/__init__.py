"""Real-time task model.

Tasks are sporadic/periodic with worst-case execution time (WCET), period,
and constrained deadline.  All times are **integer nanoseconds** throughout
the library (model, analysis and simulator), which keeps discrete-event
simulation exact and makes the paper's microsecond-scale overheads directly
representable.
"""

from repro.model.time import NS, US, MS, SEC, ns_to_us, ns_to_ms, format_ns
from repro.model.task import Task, rm_sort_key, dm_sort_key
from repro.model.taskset import TaskSet
from repro.model.split import Subtask, SplitTask
from repro.model.assignment import (
    Assignment,
    CoreAssignment,
    Entry,
    EntryKind,
)
from repro.model.generator import (
    TaskSetGenerator,
    uunifast,
    uunifast_discard,
    log_uniform_periods,
)
from repro.model.resources import CriticalSection, ResourceModel

__all__ = [
    "NS",
    "US",
    "MS",
    "SEC",
    "ns_to_us",
    "ns_to_ms",
    "format_ns",
    "Task",
    "rm_sort_key",
    "dm_sort_key",
    "TaskSet",
    "Subtask",
    "SplitTask",
    "Assignment",
    "CoreAssignment",
    "Entry",
    "EntryKind",
    "TaskSetGenerator",
    "uunifast",
    "uunifast_discard",
    "log_uniform_periods",
    "CriticalSection",
    "ResourceModel",
]
