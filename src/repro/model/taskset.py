"""Task-set container with priority assignment and aggregate metrics."""

from __future__ import annotations

import math
from typing import Callable, Dict, Iterable, Iterator, List, Optional

from repro.model.task import Task, rm_sort_key, dm_sort_key


class TaskSet:
    """An ordered collection of uniquely named tasks.

    >>> ts = TaskSet([Task("a", wcet=1, period=4), Task("b", wcet=1, period=2)])
    >>> ts.total_utilization
    0.75
    >>> [t.name for t in ts.assign_rate_monotonic()]
    ['b', 'a']
    """

    def __init__(self, tasks: Iterable[Task] = ()) -> None:
        self._tasks: List[Task] = []
        self._by_name: Dict[str, Task] = {}
        for task in tasks:
            self.add(task)

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------

    def add(self, task: Task) -> None:
        if task.name in self._by_name:
            raise ValueError(f"duplicate task name {task.name!r}")
        self._tasks.append(task)
        self._by_name[task.name] = task
        # Derived-set memos (overhead inflation) are stale now.
        self.__dict__.pop("_inflate_cache", None)

    def __len__(self) -> int:
        return len(self._tasks)

    def __iter__(self) -> Iterator[Task]:
        return iter(self._tasks)

    def __getitem__(self, index: int) -> Task:
        return self._tasks[index]

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def by_name(self, name: str) -> Task:
        return self._by_name[name]

    def names(self) -> List[str]:
        return [task.name for task in self._tasks]

    # ------------------------------------------------------------------
    # Aggregate metrics
    # ------------------------------------------------------------------

    @property
    def total_utilization(self) -> float:
        return sum(task.utilization for task in self._tasks)

    @property
    def max_utilization(self) -> float:
        return max((task.utilization for task in self._tasks), default=0.0)

    def hyperperiod(self) -> int:
        """Least common multiple of all periods (nanoseconds)."""
        result = 1
        for task in self._tasks:
            result = result * task.period // math.gcd(result, task.period)
        return result

    # ------------------------------------------------------------------
    # Priority assignment
    # ------------------------------------------------------------------

    def assign_priorities(self, sort_key: Callable[[Task], tuple]) -> "TaskSet":
        """Return a new TaskSet with priorities 0..n-1 assigned by ``sort_key``.

        Priority 0 is the highest.  The returned set is ordered by priority.
        """
        ordered = sorted(self._tasks, key=sort_key)
        return TaskSet(
            task.with_priority(index) for index, task in enumerate(ordered)
        )

    def assign_rate_monotonic(self) -> "TaskSet":
        """Rate-monotonic priority order (the paper's FP-TS base policy)."""
        return self.assign_priorities(rm_sort_key)

    def assign_deadline_monotonic(self) -> "TaskSet":
        return self.assign_priorities(dm_sort_key)

    def sorted_by_priority(self) -> List[Task]:
        """Tasks in priority order; requires priorities to be assigned."""
        for task in self._tasks:
            if task.priority is None:
                raise ValueError(f"task {task.name} has no priority assigned")
        return sorted(self._tasks, key=lambda t: t.priority)  # type: ignore[arg-type]

    def sorted_by_utilization(self, descending: bool = True) -> List[Task]:
        return sorted(
            self._tasks,
            key=lambda t: (t.utilization, t.name),
            reverse=descending,
        )

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------

    def map_tasks(self, fn: Callable[[Task], Task]) -> "TaskSet":
        return TaskSet(fn(task) for task in self._tasks)

    def scaled_wcet(self, factor: float) -> "TaskSet":
        """Scale all WCETs by ``factor`` (used for overhead sensitivity)."""
        return self.map_tasks(
            lambda t: t.with_wcet(max(1, int(round(t.wcet * factor))))
        )

    def subset(self, names: Iterable[str]) -> "TaskSet":
        wanted = set(names)
        return TaskSet(task for task in self._tasks if task.name in wanted)

    def __repr__(self) -> str:
        return (
            f"TaskSet(n={len(self._tasks)}, "
            f"U={self.total_utilization:.3f})"
        )

    def describe(self) -> str:
        """Multi-line human-readable table of the task set."""
        lines = [f"{'name':>8} {'C':>12} {'T':>12} {'D':>12} {'prio':>5} {'util':>6}"]
        for task in self._tasks:
            prio = "-" if task.priority is None else str(task.priority)
            lines.append(
                f"{task.name:>8} {task.wcet:>12} {task.period:>12} "
                f"{task.deadline:>12} {prio:>5} {task.utilization:>6.3f}"
            )
        lines.append(f"total utilization: {self.total_utilization:.4f}")
        return "\n".join(lines)
