"""Time units.

Every duration and instant in this library is an ``int`` number of
nanoseconds.  The constants here make call sites readable::

    Task(wcet=2 * MS, period=10 * MS)
    OverheadModel(release_ns=3 * US)
"""

from __future__ import annotations

NS = 1
US = 1_000
MS = 1_000_000
SEC = 1_000_000_000


def ns_to_us(value_ns: float) -> float:
    """Convert nanoseconds to microseconds."""
    return value_ns / US


def ns_to_ms(value_ns: float) -> float:
    """Convert nanoseconds to milliseconds."""
    return value_ns / MS


def format_ns(value_ns: int) -> str:
    """Human-readable rendering of a nanosecond duration.

    >>> format_ns(2_500_000)
    '2.500ms'
    >>> format_ns(3300)
    '3.300us'
    >>> format_ns(12)
    '12ns'
    """
    if value_ns >= SEC:
        return f"{value_ns / SEC:.3f}s"
    if value_ns >= MS:
        return f"{value_ns / MS:.3f}ms"
    if value_ns >= US:
        return f"{value_ns / US:.3f}us"
    return f"{value_ns}ns"
