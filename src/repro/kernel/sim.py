"""The kernel scheduler simulator.

Reproduces, as a discrete-event simulation, the scheduler the paper patched
into Linux 2.6.32:

* per-core binomial-heap ready queues and red-black-tree sleep queues;
* preemptive fixed-local-priority dispatch;
* split tasks that migrate when their per-core budget is exhausted and
  return to the sleep queue of the core hosting their first subtask;
* the Figure-1 overhead anatomy: kernel work (``rls``, ``sch``, ``cnt1``,
  ``cnt2``) executes *on the core*, non-preemptibly, stealing time from the
  application exactly as the paper measures it;
* cache-related delay charged when a preempted job resumes locally
  (``preemption_delay``) or a migrated job resumes remotely
  (``migration_delay``).

Overhead charging follows the paper's decomposition:

* release path (Figure 1, b..e): ``rls`` + ``sch`` (with re-queue on
  preemption) + ``cnt1``;
* completion path (f..i): ``sch`` + ``cnt2`` (sleep-queue insert; the next
  task's context load is part of ``cnt2``, so the subsequent dispatch is
  free);
* budget exhaustion: ``sch`` + ``cnt2`` (remote ready-queue insert; local
  redispatch free), then the destination core runs a charged scheduling
  pass when the migrated subtask arrives.
"""

from __future__ import annotations

import time as _time
from collections import deque
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.energy.model import (
    CoreEnergy,
    EnergyLedger,
    PowerModel,
    normalize_frequencies,
    round_half_up,
    scale_ns,
)
from repro.faults.injector import (
    MIGRATION_DROP,
    MIGRATION_LATE,
    FaultInjector,
)
from repro.faults.log import FaultLog
from repro.faults.plan import OVERRUN_POLICIES, FaultPlan
from repro.kernel.events import (
    _OP_PRIORITY,
    _RELEASE_PRIORITY,
    Event,
    EventQueue,
)
from repro.kernel.runtime import Job, RTTask, Stage, build_runtime_tasks
from repro.kernel.sched_class import SchedulingClass, make_sched_class
from repro.metrics.registry import MetricsRegistry
from repro.metrics.registry import active as _metrics_active
from repro.model.assignment import Assignment
from repro.model.resources import ResourceModel
from repro.model.task import Task
from repro.overhead.model import OverheadModel
from repro.structures.binomial_heap import BinomialHeap
from repro.structures.instrumented import (
    InstrumentedHeap,
    InstrumentedTree,
    _StatsCollection,
)
from repro.structures.rbtree import RedBlackTree

#: Ready-queue key prefix of a job demoted to background priority: sorts
#: after every fixed-priority level, every EDF deadline, and every fair
#: virtual deadline (see :mod:`repro.kernel.sched_class` for the full
#: key-space layout).  The same-instant event priorities now live in
#: :mod:`repro.kernel.events`, shared with the frozen legacy simulator.
_BACKGROUND_KEY = 1 << 62

#: Profiling bucket per op kind (hoisted out of the per-op hot path).
_PROFILE_BUCKET = {
    "release": "release",
    "migrate_in": "release",
    "sched": "sch",
    "cnt_in": "cnt_swth",
    "finish": "cnt_swth",
    "migrate_out": "cnt_swth",
}


@dataclass(frozen=True)
class DeadlineMiss:
    """One detected deadline violation."""

    task: str
    job_seq: int
    release: int
    abs_deadline: int
    detected_at: int
    kind: str  # "late" (finished after deadline), "overrun" (release while
    # previous job unfinished), "incomplete" (unfinished at horizon),
    # "aborted" (killed at nominal C by the abort-job overrun policy),
    # "lost" (job context destroyed by an injected migration drop)


@dataclass
class TaskStats:
    """Per-task aggregate response-time statistics.

    ``responses`` holds every completed job's response time when the
    simulation was created with ``record_responses=True`` (for percentile
    reporting); otherwise it stays empty and only the aggregates are kept.
    """

    jobs_released: int = 0
    jobs_completed: int = 0
    #: Jobs terminated by the fault layer (abort-job policy or a dropped
    #: migration); never counted in ``jobs_completed``.
    jobs_killed: int = 0
    max_response: int = 0
    total_response: int = 0
    preemptions: int = 0
    migrations: int = 0
    responses: List[int] = field(default_factory=list)

    @property
    def mean_response(self) -> float:
        if self.jobs_completed == 0:
            return 0.0
        return self.total_response / self.jobs_completed

    def response_percentile(self, q: float) -> int:
        """q-th percentile of recorded responses (requires recording)."""
        if not self.responses:
            raise ValueError(
                "no recorded responses; run KernelSim with "
                "record_responses=True"
            )
        ordered = sorted(self.responses)
        index = min(len(ordered) - 1, int(q * (len(ordered) - 1)))
        return ordered[index]


@dataclass
class SimulationResult:
    """Everything a run of :class:`KernelSim` produced."""

    duration: int
    misses: List[DeadlineMiss]
    task_stats: Dict[str, TaskStats]
    busy_ns: List[int]
    overhead_ns: List[int]
    cache_delay_ns: int
    context_switches: int
    preemptions: int
    migrations: int
    releases: int
    trace: List[tuple]  # (core, start, end, label, kind)
    events: List[tuple]  # (time, type, task, core)
    #: Every injected fault and overrun-policy action, in simulation
    #: order; empty when the run had no fault plan.
    faults: FaultLog = field(default_factory=FaultLog)
    #: Per-core busy/overhead/idle energy under the run's frequency
    #: vector and power model.  Producers that don't account energy (the
    #: frozen legacy simulator) leave it empty; checkers skip it then.
    energy: EnergyLedger = field(default_factory=EnergyLedger.empty)

    @property
    def miss_count(self) -> int:
        return len(self.misses)

    @property
    def no_misses(self) -> bool:
        return not self.misses

    @property
    def n_cores(self) -> int:
        return len(self.busy_ns)

    def utilization_of(self, core: int) -> float:
        return self.busy_ns[core] / self.duration if self.duration else 0.0

    def overhead_ratio(self, core: int) -> float:
        return self.overhead_ns[core] / self.duration if self.duration else 0.0

    @property
    def total_overhead_ratio(self) -> float:
        if not self.duration:
            return 0.0
        return sum(self.overhead_ns) / (self.duration * self.n_cores)


class _Op:
    """A unit of kernel execution on one core."""

    __slots__ = ("kind", "duration", "effect", "label")

    def __init__(
        self,
        kind: str,
        duration: int,
        effect: Callable[[int], None],
        label: str,
    ) -> None:
        self.kind = kind
        self.duration = duration
        self.effect = effect
        self.label = label


class _Core:
    """Mutable per-core scheduler state."""

    __slots__ = (
        "index",
        "ready",
        "sleep",
        "running",
        "dispatched_at",
        "completion_event",
        "in_kernel",
        "op_queue",
        "needs_sched",
        "free_dispatch",
        "busy_ns",
        "overhead_ns",
        "busy_pj",
        "overhead_pj",
        "seq",
    )

    def __init__(self, index: int) -> None:
        self.index = index
        self.ready = BinomialHeap()
        self.sleep = RedBlackTree()
        self.running: Optional[Job] = None
        self.dispatched_at = 0
        self.completion_event: Optional[Event] = None
        self.in_kernel = False
        self.op_queue: Deque[_Op] = deque()
        self.needs_sched = False
        self.free_dispatch = False
        self.busy_ns = 0
        self.overhead_ns = 0
        self.busy_pj = 0
        self.overhead_pj = 0
        self.seq = 0

    def next_seq(self) -> int:
        self.seq += 1
        return self.seq


class KernelSim:
    """Simulate an assignment for a fixed horizon under an overhead model.

    Parameters
    ----------
    assignment:
        Output of a (semi-)partitioning algorithm.  Entry budgets are taken
        as the *actual* execution demand (worst-case jobs).
    overheads:
        The :class:`~repro.overhead.model.OverheadModel` to inject.
    duration:
        Simulation horizon in nanoseconds.
    record_trace:
        Keep per-segment execution/overhead trace (memory-heavy; enable for
        Gantt rendering and the Figure-1 bench).
    release_offsets:
        Optional per-task first-release offsets (default: synchronous at 0,
        the critical instant).
    execution_times:
        Optional per-task *actual* execution demand per job.  Defaults to
        the full budget (worst-case jobs).  Use this to simulate an
        overhead-aware assignment (whose entry budgets include analysis
        inflation) with the raw workload: a job that finishes early inside
        a body stage completes there without migrating further.
    policy:
        Per-core scheduling policy: ``"fp"`` (fixed local priorities, the
        paper's scheduler) or ``"edf"`` (earliest local deadline first;
        split tasks run with per-stage deadlines, supporting the C=D
        splitting scheme).
    sporadic_jitter:
        If positive, releases are *sporadic*: each inter-arrival is the
        period plus a uniform random delay in ``[0, sporadic_jitter]`` ns.
        The period stays the minimum inter-arrival, so a schedulable
        periodic set remains schedulable.
    execution_variation:
        If positive (< 1), each job's actual demand is its base demand
        scaled by a uniform factor in ``[1 - execution_variation, 1]`` —
        average-case workloads under a worst-case analysis.
    seed:
        Seed for the sporadic/variation randomness (deterministic runs).
    tick_ns:
        If positive, the kernel is *tick-driven*: release processing is
        deferred to the next multiple of ``tick_ns`` (the paper's Linux
    	used high-resolution timers = tick 0; classic kernels used 1-4 ms
        ticks).  Deadlines stay anchored at the nominal arrival, so the
        tick delay eats into each job's slack — analyse with
        ``core_schedulable(..., tick_ns=...)``.
    resources:
        Optional :class:`~repro.model.resources.ResourceModel`: jobs lock
        resources at their declared work offsets and run at the resource's
        ceiling priority while holding it (immediate priority ceiling
        protocol).  FP policy only; split tasks must not use resources.
        Analyse with
        :func:`repro.analysis.blocking.core_schedulable_with_resources`.
    profile:
        If True, time every kernel-op effect with ``perf_counter_ns`` and
        aggregate per-bucket (count, total ns) into :attr:`profile` — the
        data :func:`repro.overhead.measure.measure_scheduler_functions`
        consumes.  Off by default: the two clock reads per op are pure
        overhead on the simulation hot path.
    faults:
        Optional :class:`~repro.faults.plan.FaultPlan`: injects execution
        overruns, release jitter, overhead spikes, and dropped/late
        migrations, all drawn from a dedicated RNG seeded from ``seed``
        and the plan's own seed.  Every injected fault is recorded in
        :attr:`SimulationResult.faults`.  ``None`` (or an empty plan)
        leaves every existing counter and ratio bit-identical to a run
        without the fault layer.
    overrun_policy:
        What happens when a job has consumed its *nominal* demand but an
        injected overrun left it with work remaining: ``"run-on"`` (the
        default: keep running at its priority — pre-fault behaviour),
        ``"abort-job"`` (budget enforcement: kill the job at nominal C
        and count an ``aborted`` miss), or ``"demote"`` (finish the
        excess at background priority, below all other tasks).
    metrics:
        Optional :class:`~repro.metrics.registry.MetricsRegistry`.  When
        given (and enabled), the run records the paper's overhead
        anatomy into it: per-primitive kernel-op counts and simulated-
        time costs (``sim_kernel_ops_total{op=...}`` and friends), queue
        operations timed individually through the instrumented ready/
        sleep structures and keyed by the per-core task count N
        (``wall_queue_op_ns{queue=...,n=...}`` — the paper's δ/θ-vs-N
        measurement), plus wall-clock self-profiling of the simulator's
        own handlers.  Observation never perturbs the simulation: the
        :class:`SimulationResult` is bit-identical with ``metrics=None``,
        a disabled registry, or an enabled one (pinned by
        ``tests/test_profile_cli.py`` and the golden-trace suite).
        ``None`` (the default) keeps the hot path at a single attribute
        check per kernel op.  A registry shared across several runs
        aggregates them; per-run queue-op counts stay per-run because
        the sim resets its instrumented-structure counters at the start
        of every :meth:`run`.
    sched_class:
        The scheduling policy plugin: a registry name from
        :data:`repro.kernel.sched_class.SCHED_CLASSES` (``"fp"``,
        ``"edf"``, ``"restricted"``, ``"global-edf"``, ``"global-rm"``,
        ``"fair"``) or a ready :class:`~repro.kernel.sched_class.
        SchedulingClass` instance.  ``None`` (the default) derives the
        class from ``policy``, preserving the pre-plugin behaviour
        bit-identically (pinned by the legacy-vs-plugin differential
        pair).  Class instances are stateful and single-use, like the
        simulator itself.
    fair_tasks:
        Optional best-effort background tasks, scheduled by the EEVDF-
        style fair class *alongside* the hard-RT tasks of the
        assignment: each is pinned round-robin to a core, released
        periodically, ranked above every hard-RT priority (it runs only
        in idle time), and never records deadline misses.  Names must
        not collide with assignment tasks.
    frequencies:
        Optional per-core clock: ``None`` (all cores at 1, the exact
        pre-DVFS behaviour), a scalar, or one entry per core; each value
        becomes a single rational scale (:func:`repro.energy.model.
        as_fraction`).  A core at frequency ``f`` dilates its stage
        budgets, actual demands, kernel-overhead constants, and cache
        reload costs by ``1/f`` wall nanoseconds, each via one exact
        multiply rounded half-up.  Periods, deadlines, and release
        offsets are wall-clock and stay unscaled.  At ``f == 1`` the
        per-core model *is* the shared model (``is``-level identity),
        which is what the ``freq1-vs-unscaled`` differential pins.
    power:
        Optional :class:`~repro.energy.model.PowerModel` for the energy
        ledger (``P(f) = P_s + C · f^alpha``); defaults to the Nehalem-
        class constants.  Busy and kernel-overhead time accrue at the
        core's active level, idle time at the static floor; the ledger
        lands in :attr:`SimulationResult.energy`.
    """

    def __init__(
        self,
        assignment: Assignment,
        overheads: OverheadModel,
        duration: int,
        record_trace: bool = False,
        release_offsets: Optional[Dict[str, int]] = None,
        execution_times: Optional[Dict[str, int]] = None,
        policy: str = "fp",
        sporadic_jitter: int = 0,
        execution_variation: float = 0.0,
        seed: int = 0,
        record_responses: bool = False,
        tick_ns: int = 0,
        resources: Optional["ResourceModel"] = None,
        profile: bool = False,
        faults: Optional[FaultPlan] = None,
        overrun_policy: str = "run-on",
        metrics: Optional[MetricsRegistry] = None,
        sched_class: Optional[object] = None,
        fair_tasks: Optional[List[Task]] = None,
        frequencies: Optional[object] = None,
        power: Optional[PowerModel] = None,
    ) -> None:
        if duration <= 0:
            raise ValueError("duration must be positive")
        self.assignment = assignment
        self.model = overheads
        self.duration = duration
        self.record_trace = record_trace
        self.queue = EventQueue()
        self.cores = [_Core(i) for i in range(assignment.n_cores)]
        self.frequencies = normalize_frequencies(
            frequencies, assignment.n_cores
        )
        self._unit_freq = all(f == 1 for f in self.frequencies)
        self.power = power if power is not None else PowerModel()
        # Per-core overhead models.  ``at_frequency(1)`` returns the
        # model itself, so at unit frequency every entry *is* the shared
        # model — the structural identity the freq1-vs-unscaled
        # differential relies on.
        self._models = [
            overheads.at_frequency(f) for f in self.frequencies
        ]
        self._active_mw = [
            self.power.active_mw(f) for f in self.frequencies
        ]
        self._idle_mw = self.power.idle_mw
        self._metrics = _metrics_active(metrics)
        self.rt_tasks = build_runtime_tasks(assignment, metrics=self._metrics)
        self.offsets = release_offsets or {}
        self.execution_times = execution_times or {}
        if policy not in ("fp", "edf"):
            raise ValueError(f"unknown policy {policy!r}; use 'fp' or 'edf'")
        self.policy = policy
        self._edf = policy == "edf"
        # Resolve the scheduling-class plugin (binding happens below,
        # after the metrics layer may have wrapped the ready queues).
        self.sched_class: SchedulingClass = make_sched_class(
            policy if sched_class is None else sched_class
        )
        self._fair_class: Optional[SchedulingClass] = None
        self._fair_names: frozenset = frozenset()
        if fair_tasks:
            self._fair_class = (
                self.sched_class
                if self.sched_class.name == "fair"
                else make_sched_class("fair")
            )
            taken = {rt.name for rt in self.rt_tasks}
            fair_rts: List[RTTask] = []
            for i, task in enumerate(fair_tasks):
                if task.name in taken:
                    raise ValueError(
                        f"fair task {task.name!r} collides with an "
                        "assigned task"
                    )
                taken.add(task.name)
                pin = i % assignment.n_cores
                fair_rts.append(
                    RTTask(
                        task=task,
                        stages=[
                            Stage(
                                core=pin,
                                budget=task.wcet,
                                deadline_offset=task.deadline,
                            )
                        ],
                        local_priority={pin: 0},
                    )
                )
            self._fair_names = frozenset(rt.name for rt in fair_rts)
            self.rt_tasks = self.rt_tasks + fair_rts
        if not self._unit_freq:
            # Dilate the runtime plan to the per-core clocks: stage
            # budgets stretch by 1/f on their core, and explicit actual
            # demands keep their *fraction* of the (now dilated) budget.
            exec_times = dict(self.execution_times)
            dilated: List[RTTask] = []
            for rt in self.rt_tasks:
                scaled = self._dilate_rt(rt)
                dilated.append(scaled)
                requested = exec_times.get(rt.name)
                if requested is not None:
                    exec_times[rt.name] = max(
                        1,
                        round_half_up(
                            Fraction(
                                requested * scaled.total_budget,
                                rt.total_budget,
                            )
                        ),
                    )
            self.rt_tasks = dilated
            self.execution_times = exec_times
        self._class_of_task: Dict[str, SchedulingClass] = {
            rt.name: (
                self._fair_class
                if rt.name in self._fair_names
                else self.sched_class
            )
            for rt in self.rt_tasks
        }
        self._classes: List[SchedulingClass] = [self.sched_class]
        if (
            self._fair_class is not None
            and self._fair_class is not self.sched_class
        ):
            self._classes.append(self._fair_class)
        if sporadic_jitter < 0:
            raise ValueError("sporadic_jitter must be non-negative")
        if not 0.0 <= execution_variation < 1.0:
            raise ValueError("execution_variation must be in [0, 1)")
        self.sporadic_jitter = sporadic_jitter
        self.execution_variation = execution_variation
        self.record_responses = record_responses
        if tick_ns < 0:
            raise ValueError("tick_ns must be non-negative")
        self.tick_ns = tick_ns
        self.resources = resources
        self._core_ceilings: List[Dict[str, int]] = [
            {} for _ in range(assignment.n_cores)
        ]
        if resources is not None and not resources.is_empty:
            if policy != "fp" or self.sched_class.name != "fp":
                raise ValueError(
                    "resource sharing is only supported under the FP policy"
                )
            if not self._unit_freq:
                raise ValueError(
                    "per-core frequencies cannot be combined with "
                    "resource sharing (critical-section offsets are in "
                    "full-speed work units)"
                )
            if self._fair_class is not None:
                raise ValueError(
                    "resource sharing cannot be combined with fair_tasks"
                )
            resources.validate_against(
                [rt.task for rt in self.rt_tasks]
            )
            for rt in self.rt_tasks:
                if rt.is_split and resources.sections_of(rt.name):
                    raise ValueError(
                        f"split task {rt.name} declares critical sections; "
                        "unsupported"
                    )
            # Per-core ceilings over local priorities.
            for core_assignment in assignment.cores:
                ceilings = self._core_ceilings[core_assignment.core]
                for entry in core_assignment.entries:
                    for section in resources.sections_of(entry.task.name):
                        current = ceilings.get(section.resource)
                        if current is None or entry.local_priority < current:
                            ceilings[section.resource] = entry.local_priority
        if overrun_policy not in OVERRUN_POLICIES:
            raise ValueError(
                f"unknown overrun_policy {overrun_policy!r}; use one of "
                f"{', '.join(OVERRUN_POLICIES)}"
            )
        self.overrun_policy = overrun_policy
        self._enforce_overrun = overrun_policy != "run-on"
        # An empty plan behaves exactly like no plan: no injector object,
        # no extra RNG stream, no per-op branches beyond one None check.
        self._injector: Optional[FaultInjector] = (
            FaultInjector(faults, seed)
            if faults is not None and not faults.is_empty
            else None
        )
        import random as _random

        self._rng = _random.Random(seed)
        # Results accumulators
        self.misses: List[DeadlineMiss] = []
        self.task_stats: Dict[str, TaskStats] = {
            rt.name: TaskStats() for rt in self.rt_tasks
        }
        self.trace: List[tuple] = []
        self.events_log: List[tuple] = []
        self.cache_delay_ns = 0
        self.energy = EnergyLedger.empty()  # settled in _finalize
        self.context_switches = 0
        self.preemptions = 0
        self.migrations = 0
        self.releases = 0
        # Wall-clock self-profiling runs for an explicit profile=True and
        # whenever a metrics registry is attached (the registry flush
        # consumes the same buckets).
        self._profile_enabled = profile or self._metrics is not None
        self.profile: Dict[str, Tuple[int, int]] = {}
        # Per-op-kind accumulators (plain dicts on the hot path; flushed
        # into the registry once, after the run).
        self._op_counts: Dict[str, int] = {}
        self._op_sim_ns: Dict[str, int] = {}
        #: (queue, N) -> shared op-stats collection; the instrumented
        #: structures of every core with per-core task count N feed it.
        self._queue_stats: Dict[Tuple[str, int], _StatsCollection] = {}
        if self._metrics is not None:
            n_by_core = {
                core_assignment.core: len(core_assignment.entries)
                for core_assignment in assignment.cores
            }
            for core in self.cores:
                n = n_by_core.get(core.index, 0)
                ready_stats = self._queue_stats.setdefault(
                    ("ready", n), _StatsCollection()
                )
                sleep_stats = self._queue_stats.setdefault(
                    ("sleep", n), _StatsCollection()
                )
                core.ready = InstrumentedHeap(
                    stats=ready_stats,
                    histogram=self._metrics.histogram(
                        "wall_queue_op_ns", queue="ready", n=n
                    ),
                )
                core.sleep = InstrumentedTree(
                    stats=sleep_stats,
                    histogram=self._metrics.histogram(
                        "wall_queue_op_ns", queue="sleep", n=n
                    ),
                )
        # Bind the plugin(s) last: the global classes alias the per-core
        # ready heaps to one shared queue, which must happen *after* the
        # metrics layer above may have wrapped them.
        for cls in self._classes:
            cls.bind(self)
        self._current_jobs: Dict[str, Optional[Job]] = {
            rt.name: None for rt in self.rt_tasks
        }
        self._sleep_nodes: Dict[str, object] = {}
        self._job_seq = 0
        self._finished = False

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def run(self) -> SimulationResult:
        """Execute the simulation and return the results."""
        if self._finished:
            raise RuntimeError("KernelSim instances are single-use")
        if self._metrics is not None:
            # Per-simulation counters: shared stats collections must not
            # leak an earlier run's totals into this run's op counts.
            for stats in self._queue_stats.values():
                stats.reset()
        for rt in self.rt_tasks:
            offset = self.offsets.get(rt.name, 0)
            self._schedule_release(rt, offset)
        self.queue.run_until(self.duration)
        self._finalize()
        if self._metrics is not None:
            self._flush_metrics()
        self._finished = True
        return SimulationResult(
            duration=self.duration,
            misses=self.misses,
            task_stats=self.task_stats,
            busy_ns=[core.busy_ns for core in self.cores],
            overhead_ns=[core.overhead_ns for core in self.cores],
            cache_delay_ns=self.cache_delay_ns,
            context_switches=self.context_switches,
            preemptions=self.preemptions,
            migrations=self.migrations,
            releases=self.releases,
            trace=self.trace,
            events=self.events_log,
            faults=(
                self._injector.log if self._injector is not None
                else FaultLog()
            ),
            energy=self.energy,
        )

    def _dilate_rt(self, rt: RTTask) -> RTTask:
        """The runtime task as seen under the per-core clocks: each
        stage's budget stretched by ``1/f`` of its core (at least 1 ns),
        the dilated sum recorded as ``wcet_ns``.  Periods, deadlines,
        and priorities are wall-clock quantities and stay put."""
        stages = [
            Stage(
                core=stage.core,
                budget=max(
                    1, scale_ns(stage.budget, self.frequencies[stage.core])
                ),
                deadline_offset=stage.deadline_offset,
            )
            for stage in rt.stages
        ]
        return RTTask(
            task=rt.task,
            stages=stages,
            local_priority=rt.local_priority,
            wcet_ns=sum(stage.budget for stage in stages),
        )

    # ------------------------------------------------------------------
    # Release handling (timer path)
    # ------------------------------------------------------------------

    def _work_of(self, rt: RTTask, t: int) -> Tuple[int, int]:
        """(actual, nominal) execution demand of the job released at ``t``.

        ``actual`` exceeds ``nominal`` only when the fault layer injects
        an execution overrun.
        """
        total_budget = rt.total_budget
        requested = self.execution_times.get(rt.task.name, total_budget)
        if self.execution_variation > 0.0:
            factor = self._rng.uniform(1.0 - self.execution_variation, 1.0)
            requested = int(round(requested * factor))
        nominal = max(1, min(requested, total_budget))
        if self._injector is not None:
            actual = self._injector.draw_work(
                rt.task.name, nominal, t, rt.home_core
            )
        else:
            actual = nominal
        return actual, nominal

    def _schedule_release(self, rt: RTTask, nominal: int) -> None:
        """Arm the release timer: at the nominal arrival — possibly
        pushed back by injected release jitter — or, in a tick-driven
        kernel, at the next tick boundary after that."""
        fire = nominal
        jitter = 0
        if self._injector is not None:
            jitter = self._injector.draw_release_jitter(rt.name)
            fire += jitter
        if self.tick_ns > 0:
            fire = -(-fire // self.tick_ns) * self.tick_ns
        if fire < self.duration:
            if jitter > 0:
                self._injector.record_jitter(
                    nominal, rt.name, rt.home_core, jitter
                )
            self.queue.schedule_fast(
                fire,
                lambda t, rt=rt, nominal=nominal: self._on_release(
                    rt, t, nominal
                ),
                priority=_RELEASE_PRIORITY,
            )

    def _on_release(self, rt: RTTask, t: int, nominal: Optional[int] = None) -> None:
        if nominal is None:
            nominal = t
        for cls in self._classes:
            cls.on_tick(t)
        # Schedule the next release first (periodic, or sporadic with a
        # random extra delay beyond the minimum inter-arrival).
        next_release = nominal + rt.task.period
        if self.sporadic_jitter > 0:
            next_release += self._rng.randint(0, self.sporadic_jitter)
        self._schedule_release(rt, next_release)
        previous = self._current_jobs[rt.name]
        if previous is not None and not previous.completed:
            # Overrun: previous job still active at the next release.
            # Best-effort classes don't record the miss — the unfinished
            # job simply loses its successor's activation.
            if previous.cls.hard_deadlines:
                self.misses.append(
                    DeadlineMiss(
                        task=rt.name,
                        job_seq=previous.seq,
                        release=previous.release,
                        abs_deadline=previous.abs_deadline,
                        detected_at=t,
                        kind="overrun",
                    )
                )
                self._log_event(t, "overrun", rt.name, rt.home_core)
            return  # the new release is skipped (job dropped)
        self._job_seq += 1
        work, nominal_work = self._work_of(rt, t)
        task_class = self._class_of_task[rt.name]
        job = Job(
            rt=rt,
            release=nominal,
            abs_deadline=nominal + rt.task.deadline,
            seq=self._job_seq,
            work=work,
            nominal_work=nominal_work,
            stages=task_class.plan_stages(rt, self._job_seq),
            cls=task_class,
        )
        name = rt.task.name
        self._current_jobs[name] = job
        self.releases += 1
        self.task_stats[name].jobs_released += 1
        if self.record_trace:
            self._log_event(t, "release", name, rt.home_core)
        # Sleep-queue bookkeeping: the timer removes the task from the home
        # core's sleep queue before release() inserts it into the ready queue.
        home = self.cores[rt.home_core]
        node = self._sleep_nodes.pop(name, None)
        if node is not None:
            home.sleep.remove(node)
        core = task_class.release_core(job, t)
        self._kernel_enqueue(
            core,
            _Op(
                kind="release",
                duration=self._models[core.index].rls,
                effect=lambda t2, job=job, core=core: self._do_release(
                    core, job, t2
                ),
                label=f"rls:{name}" if self.record_trace else "rls",
            ),
            t,
        )

    def _do_release(self, core: _Core, job: Job, t: int) -> None:
        self._ready_insert(core, job, t)
        core.needs_sched = True

    # ------------------------------------------------------------------
    # Kernel-execution machinery
    # ------------------------------------------------------------------

    def _kernel_enqueue(self, core: _Core, op: _Op, t: int) -> None:
        core.op_queue.append(op)
        if not core.in_kernel:
            self._suspend_running(core, t)
            core.in_kernel = True
            self._start_next_op(core, t)

    def _suspend_running(self, core: _Core, t: int) -> None:
        """Stop the running job's progress (kernel takes the CPU)."""
        job = core.running
        if job is None or core.completion_event is None:
            return
        executed = t - core.dispatched_at
        core.completion_event.cancel()
        core.completion_event = None
        if executed > 0:
            job.account(executed)
            job.cls.on_executed(core, job, executed)
            core.busy_ns += executed
            core.busy_pj += executed * self._active_mw[core.index]
            if self.record_trace:
                self._record(
                    core.index, core.dispatched_at, t, job.name, "exec"
                )
        if job.chunk_done:
            # The chunk finished exactly at this instant: process the end of
            # chunk before whatever interrupted us.
            core.running = None
            self._enqueue_chunk_end(core, job, t, front=True)

    def _start_next_op(self, core: _Core, t: int) -> None:
        op = core.op_queue.popleft()
        if op.kind == "sched":
            op.duration = self._sched_duration(core)
        duration = op.duration
        if duration > 0 and self._injector is not None:
            duration = self._injector.spike(op.kind, duration, t, core.index)
        if self._metrics is not None:
            # Charged (post-spike) cost: what the core actually lost.
            self._op_counts[op.kind] = self._op_counts.get(op.kind, 0) + 1
            self._op_sim_ns[op.kind] = (
                self._op_sim_ns.get(op.kind, 0) + duration
            )
        end = t + duration
        if duration > 0:
            core.overhead_ns += duration
            core.overhead_pj += duration * self._active_mw[core.index]
            if self.record_trace:
                self._record(core.index, t, end, op.label, "overhead")
        self.queue.schedule_fast(
            end,
            lambda t2, core=core, op=op: self._finish_op(core, op, t2),
            priority=_OP_PRIORITY,
        )

    def _finish_op(self, core: _Core, op: _Op, t: int) -> None:
        if self._profile_enabled:
            start = _time.perf_counter_ns()
            op.effect(t)
            elapsed = _time.perf_counter_ns() - start
            bucket = _PROFILE_BUCKET.get(op.kind, op.kind)
            count, total = self.profile.get(bucket, (0, 0))
            self.profile[bucket] = (count + 1, total + elapsed)
        else:
            op.effect(t)
        if core.op_queue:
            self._start_next_op(core, t)
        elif core.needs_sched:
            core.needs_sched = False
            sched_op = _Op(
                kind="sched",
                duration=0,  # computed in _start_next_op
                effect=lambda t2, core=core: self._do_sched(core, t2),
                label="sch",
            )
            core.op_queue.append(sched_op)
            self._start_next_op(core, t)
        else:
            self._exit_kernel(core, t)

    def _exit_kernel(self, core: _Core, t: int) -> None:
        core.in_kernel = False
        job = core.running
        if job is None:
            return
        core.dispatched_at = t
        end = t + self._chunk_length(job)
        core.completion_event = self.queue.schedule(
            end, lambda t2, core=core: self._on_chunk_done(core, t2)
        )

    # ------------------------------------------------------------------
    # Critical sections (immediate priority ceiling protocol)
    # ------------------------------------------------------------------

    def _sections_of(self, rt: RTTask):
        if self.resources is None:
            return ()
        return self.resources.sections_of(rt.name)

    def _work_to_boundary(self, job: Job) -> Optional[int]:
        """Work units until the job's next critical-section edge."""
        sections = self._sections_of(job.rt)
        if not sections:
            return None
        executed = job.work - job.work_left
        for section in sections:
            if executed < section.start:
                return section.start - executed
            if executed < section.end:
                return section.end - executed
        return None

    def _chunk_length(self, job: Job) -> int:
        """CPU time until the next simulation-relevant point of this job:
        chunk end (budget/work), a critical-section edge, or — under an
        enforcing overrun policy — the job's nominal-demand boundary."""
        base = job.stage_budget_left
        work_left = job.work_left
        if work_left < base:
            base = work_left
        if (
            self._enforce_overrun
            and not job.demoted
            and job.work > job.nominal_work
        ):
            # Stop exactly when the nominal (analysed) demand is consumed
            # so the policy can act; 0 means the job resumed right at the
            # boundary (e.g. suspended there) and must be handled now.
            boundary = job.nominal_work - (job.work - work_left)
            if 0 <= boundary < base:
                base = boundary
        if self.resources is not None:
            boundary = self._work_to_boundary(job)
            if boundary is not None and boundary < base:
                base = boundary
        return job.penalty_left + base

    def _active_ceiling(self, core: _Core, job: Job) -> Optional[int]:
        """Ceiling priority of the resource the job currently holds."""
        sections = self._sections_of(job.rt)
        if not sections:
            return None
        executed = job.work - job.work_left
        for section in sections:
            if section.start <= executed < section.end:
                return self._core_ceilings[core.index].get(section.resource)
        return None

    def _at_section_end(self, job: Job) -> bool:
        executed = job.work - job.work_left
        return any(
            executed == section.end for section in self._sections_of(job.rt)
        )

    # ------------------------------------------------------------------
    # Scheduling decisions
    # ------------------------------------------------------------------

    def _would_preempt(self, core: _Core) -> bool:
        running = core.running
        if running is None or not core.ready:
            return False
        min_key, _job = core.ready.find_min()
        running_key = self._key_of(core, running)
        if self.resources is not None:
            ceiling = self._active_ceiling(core, running)
            if ceiling is not None:
                # IPCP: the lock holder runs at the resource ceiling.
                running_key = (min(running_key[0], ceiling), running_key[1])
        return min_key < running_key

    def _sched_duration(self, core: _Core) -> int:
        if core.free_dispatch:
            return 0
        return self._models[core.index].sch(
            preemption=self._would_preempt(core)
        )

    def _do_sched(self, core: _Core, t: int) -> None:
        free = core.free_dispatch
        core.free_dispatch = False
        sched_class = self.sched_class
        if core.running is not None:
            if self._would_preempt(core):
                victim = core.running
                core.running = None
                penalty = self._models[core.index].cache.preemption_delay(
                    victim.rt.task.wss
                )
                victim.penalty_left += penalty
                self.cache_delay_ns += penalty
                victim.displaced = True
                victim.preempt_count += 1
                self.task_stats[victim.rt.task.name].preemptions += 1
                self.preemptions += 1
                self._ready_insert(core, victim, t)
                if self.record_trace:
                    self._log_event(
                        t, "preempt", victim.rt.task.name, core.index
                    )
            else:
                # Current job resumes at kernel exit.
                sched_class.after_sched(core, t)
                return
        job = sched_class.pick_next(core)
        if job is None:
            sched_class.after_sched(core, t)
            return
        cnt_op = _Op(
            kind="cnt_in",
            duration=0 if free else self._models[core.index].cnt1,
            effect=lambda t2, core=core, job=job: self._do_dispatch(
                core, job, t2
            ),
            label=f"cnt1:{job.rt.task.name}" if self.record_trace else "cnt1",
        )
        core.op_queue.append(cnt_op)
        sched_class.after_sched(core, t)

    def request_sched(self, core: _Core, t: int) -> None:
        """Ask ``core`` to run a scheduling pass (class-layer hook).

        If the core is already in the kernel, the pending episode ends
        with the pass; otherwise a fresh kernel episode is opened for
        it.  Used by the global classes' work-conservation waterfall.
        """
        if core.in_kernel:
            core.needs_sched = True
            return
        self._kernel_enqueue(
            core,
            _Op(
                kind="sched",
                duration=0,  # computed in _start_next_op
                effect=lambda t2, core=core: self._do_sched(core, t2),
                label="sch",
            ),
            t,
        )

    def _do_dispatch(self, core: _Core, job: Job, t: int) -> None:
        core.running = job
        self.context_switches += 1
        if self.record_trace:
            self._log_event(t, "dispatch", job.rt.task.name, core.index)
        job.cls.on_dispatch(core, job, t)
        # The class hooks above read ``displaced`` (the global classes
        # reclassify a cross-core resume as a migration); the mechanism
        # clears it once the dispatch is done.
        job.displaced = False

    # ------------------------------------------------------------------
    # Chunk completion: job finish or budget exhaustion
    # ------------------------------------------------------------------

    def _on_chunk_done(self, core: _Core, t: int) -> None:
        job = core.running
        assert job is not None, "completion event with no running job"
        executed = t - core.dispatched_at
        if executed > 0:
            job.account(executed)
            job.cls.on_executed(core, job, executed)
            core.busy_ns += executed
            core.busy_pj += executed * self._active_mw[core.index]
            if self.record_trace:
                self._record(
                    core.index, core.dispatched_at, t, job.name, "exec"
                )
        core.completion_event = None
        if not job.chunk_done:
            if self._at_overrun_boundary(job):
                self._on_overrun_boundary(core, job, t)
                return
            # A critical-section edge, not the chunk's end.
            self._on_section_edge(core, job, t)
            return
        core.running = None
        core.in_kernel = True
        self._enqueue_chunk_end(core, job, t, front=False)
        if core.op_queue:
            self._start_next_op(core, t)

    def _on_section_edge(self, core: _Core, job: Job, t: int) -> None:
        """The running job crossed a critical-section boundary."""
        if self._at_section_end(job) and core.ready:
            # Unlock: the kernel runs a scheduling pass — a deferred
            # higher-priority job may now preempt.
            core.in_kernel = True
            core.needs_sched = True
            sched_op = _Op(
                kind="sched",
                duration=0,  # computed in _start_next_op
                effect=lambda t2, core=core: self._do_sched(core, t2),
                label="sch",
            )
            core.needs_sched = False
            core.op_queue.append(sched_op)
            self._start_next_op(core, t)
            return
        # Lock acquisition (or unlock with empty queue): keep running.
        core.dispatched_at = t
        end = t + self._chunk_length(job)
        core.completion_event = self.queue.schedule(
            end, lambda t2, core=core: self._on_chunk_done(core, t2)
        )

    # ------------------------------------------------------------------
    # Overrun policies (fault injection)
    # ------------------------------------------------------------------

    def _at_overrun_boundary(self, job: Job) -> bool:
        """True when an enforcing policy must act on this job *now*: it
        has consumed exactly its nominal demand, has overrun work left,
        and has not been demoted already."""
        return (
            self._enforce_overrun
            and not job.demoted
            and job.work > job.nominal_work
            and job.penalty_left == 0
            and job.work - job.work_left == job.nominal_work
        )

    def _on_overrun_boundary(self, core: _Core, job: Job, t: int) -> None:
        """Apply the overrun policy to a job that just hit nominal C."""
        core.running = None
        core.in_kernel = True
        name = job.rt.task.name
        if self.overrun_policy == "abort-job":
            # Budget enforcement: the job dies here.  Mark it finished
            # immediately so a release at this very instant proceeds
            # (the kernel op below is cleanup charged to the core).
            job.finish_time = t
            self.task_stats[name].jobs_killed += 1
            self.misses.append(
                DeadlineMiss(
                    task=name,
                    job_seq=job.seq,
                    release=job.release,
                    abs_deadline=job.abs_deadline,
                    detected_at=t,
                    kind="aborted",
                )
            )
            if self._injector is not None:
                self._injector.record_policy(
                    t, "abort", name, core.index,
                    f"nominal={job.nominal_work} dropped={job.work_left}",
                )
            self._log_event(t, "abort", name, core.index)
            model = self._models[core.index]
            op = _Op(
                kind="finish",
                duration=model.sch(False) + model.cnt2_finish,
                effect=lambda t2, core=core, job=job: self._do_abort_cleanup(
                    core, job, t2
                ),
                label=f"abrt:{name}" if self.record_trace else "abrt",
            )
        else:  # "demote"
            job.demoted = True
            if self._injector is not None:
                self._injector.record_policy(
                    t, "demote", name, core.index,
                    f"nominal={job.nominal_work} left={job.work_left}",
                )
            self._log_event(t, "demote", name, core.index)
            # The kernel re-queues the job at background priority (one
            # ready-queue insert); the scheduling pass that follows via
            # needs_sched is charged separately, as usual.
            op = _Op(
                kind="demote",
                duration=self._models[core.index].ready_op_ns,
                effect=lambda t2, core=core, job=job: self._do_demote(
                    core, job, t2
                ),
                label=f"dmt:{name}" if self.record_trace else "dmt",
            )
        core.op_queue.append(op)
        self._start_next_op(core, t)

    def _do_abort_cleanup(self, core: _Core, job: Job, t: int) -> None:
        rt = job.rt
        name = rt.task.name
        home = self.cores[rt.home_core]
        self._sleep_nodes[name] = home.sleep.insert(
            (job.release + rt.task.period, name), rt
        )
        core.needs_sched = True
        core.free_dispatch = True  # context load was part of cnt2

    def _do_demote(self, core: _Core, job: Job, t: int) -> None:
        self._ready_insert(core, job, t)
        core.needs_sched = True

    def _enqueue_chunk_end(
        self, core: _Core, job: Job, t: int, front: bool
    ) -> None:
        if job.work_done:
            # The job's response ends *now* (point f in Figure 1); the
            # sch + cnt2 that follow are bookkeeping charged to the core.
            # Mark completion immediately so a release at this very instant
            # sees the predecessor as done.  Note the condition: a split job
            # that finishes its actual work inside a *body* stage completes
            # here too (the paper's cnt_swth case 3).
            job.finish_time = t
            model = self._models[core.index]
            op = _Op(
                kind="finish",
                duration=model.sch(False) + model.cnt2_finish,
                effect=lambda t2, core=core, job=job, done=t: self._do_finish(
                    core, job, t2, completed_at=done
                ),
                label=(
                    f"cnt2:{job.rt.task.name}"
                    if self.record_trace
                    else "cnt2"
                ),
            )
        else:
            action = job.cls.on_budget_exhausted(core, job, t)
            if action != "migrate":
                raise RuntimeError(
                    f"scheduling class {job.cls.name!r} returned unknown "
                    f"budget-exhaustion action {action!r}"
                )
            model = self._models[core.index]
            op = _Op(
                kind="migrate_out",
                duration=model.sch(False) + model.cnt2_migrate,
                effect=lambda t2, core=core, job=job: self._do_migrate_out(
                    core, job, t2
                ),
                label=(
                    f"mig:{job.rt.task.name}" if self.record_trace else "mig"
                ),
            )
        if front:
            core.op_queue.appendleft(op)
        else:
            core.op_queue.append(op)

    def _do_finish(
        self, core: _Core, job: Job, t: int, completed_at: int
    ) -> None:
        job.finish_time = completed_at
        rt = job.rt
        name = rt.task.name
        stats = self.task_stats[name]
        stats.jobs_completed += 1
        response = completed_at - job.release
        stats.total_response += response
        if response > stats.max_response:
            stats.max_response = response
        if self.record_responses:
            stats.responses.append(response)
        if completed_at > job.abs_deadline and job.cls.hard_deadlines:
            self.misses.append(
                DeadlineMiss(
                    task=name,
                    job_seq=job.seq,
                    release=job.release,
                    abs_deadline=job.abs_deadline,
                    detected_at=completed_at,
                    kind="late",
                )
            )
            if self.record_trace:
                self._log_event(completed_at, "miss", name, core.index)
        elif self.record_trace:
            self._log_event(completed_at, "finish", name, core.index)
        # Back to the sleep queue of the core hosting the first subtask
        # (paper §2, tail subtask rule).
        home = self.cores[rt.home_core]
        self._sleep_nodes[name] = home.sleep.insert(
            (job.release + rt.task.period, name), rt
        )
        core.needs_sched = True
        core.free_dispatch = True  # context load was part of cnt2

    def _do_migrate_out(self, core: _Core, job: Job, t: int) -> None:
        name = job.rt.task.name
        delay = 0
        if self._injector is not None:
            fate, delay = self._injector.migration_fate(name, t, core.index)
            if fate == MIGRATION_DROP:
                # The migration is lost in flight: the job's context is
                # destroyed.  Kill the job (a "lost" miss) and return the
                # task to its home sleep queue so future releases proceed.
                job.finish_time = t
                self.task_stats[name].jobs_killed += 1
                self.misses.append(
                    DeadlineMiss(
                        task=name,
                        job_seq=job.seq,
                        release=job.release,
                        abs_deadline=job.abs_deadline,
                        detected_at=t,
                        kind="lost",
                    )
                )
                self._log_event(t, "lost", name, core.index)
                rt = job.rt
                home = self.cores[rt.home_core]
                self._sleep_nodes[name] = home.sleep.insert(
                    (job.release + rt.task.period, name), rt
                )
                core.needs_sched = True
                core.free_dispatch = True  # context load was part of cnt2
                return
            if fate != MIGRATION_LATE:
                delay = 0
        stage = job.advance_stage()
        # Cache reload happens on the *destination* core: its clock
        # governs the penalty.
        penalty = self._models[stage.core].cache.migration_delay(
            job.rt.task.wss
        )
        job.penalty_left += penalty
        self.cache_delay_ns += penalty
        job.migrate_count += 1
        self.task_stats[name].migrations += 1
        self.migrations += 1
        if self.record_trace:
            self._log_event(t, "migrate", name, stage.core)
        destination = self.cores[stage.core]
        arrival = _Op(
            kind="migrate_in",
            duration=0,  # remote insert already paid in cnt2_migrate
            effect=lambda t2, dest=destination, job=job: self._do_migrate_in(
                dest, job, t2
            ),
            label=f"migin:{name}" if self.record_trace else "migin",
        )
        if delay > 0:
            # Late migration: the subtask reaches the destination core's
            # kernel only after the injected in-flight delay.
            self.queue.schedule_fast(
                t + delay,
                lambda t2, dest=destination, op=arrival: self._kernel_enqueue(
                    dest, op, t2
                ),
                priority=_RELEASE_PRIORITY,
            )
        else:
            self._kernel_enqueue(destination, arrival, t)
        core.needs_sched = True
        core.free_dispatch = True  # context load was part of cnt2

    def _do_migrate_in(self, core: _Core, job: Job, t: int) -> None:
        self._ready_insert(core, job, t)
        core.needs_sched = True

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _key_of(self, core: _Core, job: Job) -> tuple:
        return job.cls.key_of(core, job)

    def _ready_insert(
        self, core: _Core, job: Job, t: Optional[int] = None
    ) -> None:
        job.cls.enqueue(core, job)
        # Every ready-queue insert is a kernel-visible state change; the
        # verification layer reconstructs per-core ready sets from these
        # events, so — unlike the other event kinds — the label carries
        # the *job* name (task/seq), matching the exec-trace labels.
        if self.record_trace and t is not None:
            self.events_log.append((t, "ready", job.name, core.index))

    def _record(
        self, core: int, start: int, end: int, label: str, kind: str
    ) -> None:
        if self.record_trace and end > start:
            self.trace.append((core, start, end, label, kind))

    def _log_event(self, t: int, kind: str, task: str, core: int) -> None:
        if self.record_trace:
            self.events_log.append((t, kind, task, core))

    def _flush_metrics(self) -> None:
        """Record this run's observations into the attached registry.

        One pass at end-of-run: the hot path only bumps plain dicts and
        the instrumented-structure stats; everything registry-shaped
        happens here.  ``sim_*`` metrics are functions of simulated time
        only (deterministic for a fixed scenario); ``wall_*`` metrics
        are wall-clock self-measurements.
        """
        metrics = self._metrics
        assert metrics is not None
        for kind in sorted(self._op_counts):
            metrics.counter("sim_kernel_ops_total", op=kind).inc(
                self._op_counts[kind]
            )
            metrics.counter("sim_kernel_op_ns_total", op=kind).inc(
                self._op_sim_ns[kind]
            )
        metrics.counter("sim_releases_total").inc(self.releases)
        metrics.counter("sim_preemptions_total").inc(self.preemptions)
        metrics.counter("sim_migrations_total").inc(self.migrations)
        metrics.counter("sim_context_switches_total").inc(
            self.context_switches
        )
        metrics.counter("sim_cache_delay_ns_total").inc(self.cache_delay_ns)
        miss_kinds: Dict[str, int] = {}
        for miss in self.misses:
            miss_kinds[miss.kind] = miss_kinds.get(miss.kind, 0) + 1
        for kind in sorted(miss_kinds):
            metrics.counter("sim_deadline_misses_total", kind=kind).inc(
                miss_kinds[kind]
            )
        completed = killed = 0
        for stats in self.task_stats.values():
            completed += stats.jobs_completed
            killed += stats.jobs_killed
        metrics.counter("sim_jobs_completed_total").inc(completed)
        metrics.counter("sim_jobs_killed_total").inc(killed)
        for core in self.cores:
            metrics.counter("sim_core_busy_ns_total", core=core.index).inc(
                core.busy_ns
            )
            metrics.counter(
                "sim_core_overhead_ns_total", core=core.index
            ).inc(core.overhead_ns)
        # Energy family (informational: never gated by compare_reports).
        for row in self.energy.cores:
            metrics.counter(
                "eng_core_busy_pj_total", core=row.core
            ).inc(row.busy_pj)
            metrics.counter(
                "eng_core_overhead_pj_total", core=row.core
            ).inc(row.overhead_pj)
            metrics.counter(
                "eng_core_idle_pj_total", core=row.core
            ).inc(row.idle_pj)
        metrics.counter("eng_total_pj_total").inc(self.energy.total_pj)
        # Queue-operation counts by (queue, op, N) — the deterministic
        # half of the paper's Table-1 δ/θ measurement (the wall-clock
        # half streams into wall_queue_op_ns histograms live).
        for (queue, n), stats in sorted(self._queue_stats.items()):
            for op_name, op_stats in sorted(stats.ops.items()):
                metrics.counter(
                    "sim_queue_ops_total", queue=queue, op=op_name, n=n
                ).inc(op_stats.count)
        # Wall-clock self-profile of the simulator's own handlers
        # (release / scheduling / context-switch effect functions).
        for bucket in sorted(self.profile):
            count, total_ns = self.profile[bucket]
            metrics.counter("wall_handler_calls_total", bucket=bucket).inc(
                count
            )
            metrics.counter("wall_handler_ns_total", bucket=bucket).inc(
                total_ns
            )

    def _finalize(self) -> None:
        """Account partial progress at the horizon and residual misses."""
        t = self.duration
        for core in self.cores:
            job = core.running
            if job is not None and core.completion_event is not None:
                executed = t - core.dispatched_at
                if executed > 0:
                    core.busy_ns += executed
                    core.busy_pj += executed * self._active_mw[core.index]
                    self._record(
                        core.index, core.dispatched_at, t, job.name, "exec"
                    )
                core.completion_event.cancel()
                core.completion_event = None
        # Settle the energy ledger: idle is whatever the horizon left
        # uncharged (zero when the run's last kernel op straddles it).
        rows = []
        for core in self.cores:
            idle_ns = max(
                0, self.duration - core.busy_ns - core.overhead_ns
            )
            freq = self.frequencies[core.index]
            rows.append(
                CoreEnergy(
                    core=core.index,
                    freq_num=freq.numerator,
                    freq_den=freq.denominator,
                    active_mw=self._active_mw[core.index],
                    busy_ns=core.busy_ns,
                    overhead_ns=core.overhead_ns,
                    idle_ns=idle_ns,
                    busy_pj=core.busy_pj,
                    overhead_pj=core.overhead_pj,
                    idle_pj=idle_ns * self._idle_mw,
                )
            )
        self.energy = EnergyLedger(
            duration_ns=self.duration,
            idle_mw=self._idle_mw,
            cores=tuple(rows),
        )
        for job in self._current_jobs.values():
            if (
                job is not None
                and not job.completed
                and job.abs_deadline <= self.duration
                and job.cls.hard_deadlines
            ):
                self.misses.append(
                    DeadlineMiss(
                        task=job.rt.name,
                        job_seq=job.seq,
                        release=job.release,
                        abs_deadline=job.abs_deadline,
                        detected_at=self.duration,
                        kind="incomplete",
                    )
                )
