"""Scheduling classes: pluggable policies behind one dispatch contract.

The kernel simulator (:class:`repro.kernel.sim.KernelSim`) owns the
*mechanism* — event queue, kernel-op episodes, overhead charging, fault
injection, accounting — and delegates every *policy* decision to a
:class:`SchedulingClass`, the way Linux dispatches through
``sched_class`` to ``rt.c`` / ``fair.c`` / ``deadline.c``.  A class
answers five questions:

* **key_of** — where does this job sort in a ready queue?
* **enqueue / dequeue / pick_next** — how do jobs enter and leave the
  per-core ready heaps?
* **release_core** — which core's kernel handles a fresh release?
* **on_budget_exhausted** — what happens when a stage budget runs out?

plus lifecycle hooks (``plan_stages``, ``on_dispatch``, ``on_executed``,
``on_tick``, ``after_sched``) that default to no-ops.  The base-class
defaults reproduce the paper's fixed-priority semi-partitioned scheduler
**bit-identically** (pinned by the legacy-vs-plugin differential pair in
:mod:`repro.verify.differential` and the golden-trace suite), so a new
class only overrides what it changes.

Key-space layout
----------------

All ready-queue keys are ``(rank, job_seq)`` tuples compared
lexicographically; ``job_seq`` is globally unique, so ties never reach
the job object.  Ranks are partitioned so classes can share one heap:

========================  ==============================================
rank range                meaning
========================  ==============================================
``< FAIR_KEY_BASE``       hard-RT ranks: FP local priorities (small
                          ints) and EDF absolute deadlines (ns since
                          time 0)
``FAIR_KEY_BASE + vd``    fair-class virtual deadlines (EEVDF-style):
                          best-effort jobs run only when no hard-RT
                          job is ready
``BACKGROUND_KEY``        jobs demoted by the ``demote`` overrun
                          policy: after everything, including fair jobs
========================  ==============================================

Available classes (``SCHED_CLASSES``)
-------------------------------------

``fp``
    The paper's scheduler: fixed local priorities per core, split jobs
    migrate on per-stage budget exhaustion.
``edf``
    Local EDF per core with per-stage deadlines (the C=D scheme).
``restricted``
    Restricted-migration semi-partitioning (Dorin et al.): a split
    task's jobs never migrate mid-execution — each whole job runs on
    one of the task's assigned cores, rotating round-robin across them
    at job boundaries.
``global-edf`` / ``global-rm``
    True global scheduling: one shared ready heap, a released job goes
    to an idle core (or preempts the worst-priority runner), and the
    ``after_sched`` waterfall keeps the schedule work-conserving.
    Replaces the old standalone ``GlobalSim`` event loop.
``fair``
    An EEVDF-style best-effort class for background tasks coexisting
    with the hard-RT classes (``KernelSim(fair_tasks=...)``): jobs are
    ranked by virtual deadline above ``FAIR_KEY_BASE``, per-task
    virtual runtimes advance with executed time, and deadline misses
    are suppressed (``hard_deadlines = False``).

Adding a class: subclass :class:`SchedulingClass`, implement
``job_key``, override the hooks whose defaults don't fit, and register
the factory in ``SCHED_CLASSES``.  Every class inherits fault
injection, overhead charging, golden traces, ``sim_*`` metrics, and the
invariant oracles without extra plumbing — see docs/sched_classes.md.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.kernel.runtime import Job, RTTask, Stage

#: Rank offset of fair-class virtual deadlines: above every hard-RT
#: rank (FP priorities are small ints; EDF ranks are absolute deadlines
#: in ns, far below 2**56 for any simulated horizon).
FAIR_KEY_BASE = 1 << 56

#: Rank of a job demoted to background priority by the ``demote``
#: overrun policy: sorts after every class's live jobs.  Mirrored (as
#: ``_BACKGROUND_KEY``) by the simulator and the trace validator.
BACKGROUND_KEY = 1 << 62


class SchedulingClass:
    """Base scheduling class: the paper's fixed-priority dispatch.

    One instance serves one :class:`~repro.kernel.sim.KernelSim` (bound
    via :meth:`bind`); classes may keep per-run state (the restricted
    class's round-robin cursors, the fair class's virtual runtimes), so
    instances are single-use like the simulator itself.
    """

    #: Registry name; subclasses override.
    name = "fp"

    #: Whether this class's jobs have hard deadlines.  When False the
    #: simulator suppresses deadline-miss records for the class's jobs
    #: (overrun drops, late completions, horizon leftovers) — they are
    #: best-effort by definition.
    hard_deadlines = True

    def __init__(self) -> None:
        self.sim = None  # type: ignore[assignment]

    # -- lifecycle ----------------------------------------------------

    def bind(self, sim) -> "SchedulingClass":
        """Attach to a simulator (called once from ``KernelSim.__init__``)."""
        if self.sim is not None:
            raise RuntimeError(
                f"scheduling class {self.name!r} is already bound; "
                "instances are single-use"
            )
        self.sim = sim
        return self

    def plan_stages(
        self, rt: RTTask, seq: int
    ) -> Optional[Sequence[Stage]]:
        """Stage plan for the job ``seq`` of ``rt``.

        ``None`` means "use the task's static stages" (the default).  A
        class that migrates only at job boundaries returns a single
        whole-budget stage on the core of its choice instead.
        """
        return None

    # -- ready-queue protocol -----------------------------------------

    def job_key(self, core, job: Job) -> Tuple[int, int]:
        """Ready-queue rank of a live (non-demoted) job on ``core``."""
        return (job.rt.local_priority[core.index], job.seq)

    def key_of(self, core, job: Job) -> Tuple[int, int]:
        """Ready-queue key; demotion overrides every class's ranking."""
        if job.demoted:
            return (BACKGROUND_KEY, job.seq)
        return self.job_key(core, job)

    def enqueue(self, core, job: Job) -> None:
        """Insert ``job`` into ``core``'s ready queue."""
        job.ready_handle = core.ready.insert(self.key_of(core, job), job)

    def dequeue(self, core, job: Job) -> None:
        """Remove a queued (non-running) job from ``core``'s ready queue."""
        handle = job.ready_handle
        if handle is not None:
            core.ready.delete(handle)
            job.ready_handle = None

    def pick_next(self, core) -> Optional[Job]:
        """Extract the next job to dispatch on ``core`` (None: idle)."""
        if not core.ready:
            return None
        _key, job = core.ready.extract_min()
        job.ready_handle = None
        return job

    # -- placement ----------------------------------------------------

    def release_core(self, job: Job, t: int):
        """Core whose kernel processes ``job``'s release."""
        return self.sim.cores[job.current_core]

    # -- policy events ------------------------------------------------

    def on_budget_exhausted(self, core, job: Job, t: int) -> str:
        """Stage budget ran out with work left; only ``"migrate"`` (move
        to the next stage's core) is currently defined.  Classes whose
        jobs never split (single whole-budget stages) never get here."""
        return "migrate"

    def on_dispatch(self, core, job: Job, t: int) -> None:
        """``job`` just became ``core.running``."""

    def on_executed(self, core, job: Job, executed: int) -> None:
        """``executed`` ns of CPU were just accounted to ``job``."""

    def on_tick(self, t: int) -> None:
        """Periodic bookkeeping hook (fired on every release timer)."""

    def after_sched(self, core, t: int) -> None:
        """A scheduling pass on ``core`` just ended (every exit path).

        Per-core classes need nothing here; the global classes chain
        scheduling passes across cores to stay work-conserving.
        """


class FPClass(SchedulingClass):
    """The paper's fixed-priority semi-partitioned class (the default).

    Everything is inherited: the base class *is* the FP policy.
    """


class EDFClass(SchedulingClass):
    """Local EDF with per-stage deadlines (supports C=D splitting)."""

    name = "edf"

    def job_key(self, core, job: Job) -> Tuple[int, int]:
        # Per-stage local deadline: for normal tasks the job's absolute
        # deadline; for split tasks the stage's own deadline (C=D bodies
        # carry deadline == budget, so EDF serves them at once).
        offset = job.stages[job.stage_index].deadline_offset
        return (job.release + offset, job.seq)


class RestrictedMigrationClass(SchedulingClass):
    """Restricted-migration semi-partitioning (Dorin et al.).

    Split tasks migrate **only at job boundaries**: each job runs whole
    (full WCET budget) on one of the task's assigned cores, rotating
    round-robin across the split stages' cores from release to release.
    Mid-job budget exhaustion therefore never occurs, and a "migration"
    is two consecutive jobs of one task dispatched on different cores —
    by construction a subset (in count, per task) of the migrations the
    unrestricted FP class performs on the same assignment, which the
    ``cross-class-sanity`` differential pair checks.
    """

    name = "restricted"

    def __init__(self) -> None:
        super().__init__()
        self._cursor: Dict[str, int] = {}
        self._last_core: Dict[str, int] = {}

    def plan_stages(
        self, rt: RTTask, seq: int
    ) -> Optional[Sequence[Stage]]:
        if not rt.is_split:
            return None
        slot = self._cursor.get(rt.name, 0)
        self._cursor[rt.name] = slot + 1
        core = rt.stages[slot % len(rt.stages)].core
        return (
            Stage(
                core=core,
                budget=rt.total_budget,
                deadline_offset=rt.task.deadline,
            ),
        )

    def on_dispatch(self, core, job: Job, t: int) -> None:
        if job.last_core is not None:
            return  # resumption after preemption: same core, same job
        job.last_core = core.index
        name = job.rt.name
        previous = self._last_core.get(name)
        self._last_core[name] = core.index
        if previous is not None and previous != core.index:
            # The task's context moved cores between jobs: the
            # restricted-migration event this class exists to bound.
            # Counted like any other migration — on the job, on the
            # task, globally, and in the event log — so the per-class
            # counters stay comparable (the restricted <= fp law in
            # tests/test_sched_classes.py compares them directly).
            sim = self.sim
            job.migrate_count += 1
            sim.migrations += 1
            sim.task_stats[name].migrations += 1
            sim._log_event(t, "migrate", name, core.index)


class _GlobalClass(SchedulingClass):
    """Shared machinery of the global classes: one ready heap, placement
    on idle/worst cores, and the work-conservation waterfall."""

    def bind(self, sim) -> "SchedulingClass":
        super().bind(sim)
        # One system-wide ready queue: alias every core's heap to core
        # 0's (after any metrics instrumentation wrapped it), so the
        # mechanism's per-core heap operations all touch the same
        # structure — pick_next on any core extracts the global minimum.
        shared = sim.cores[0].ready
        for core in sim.cores[1:]:
            core.ready = shared
        return self

    def plan_stages(
        self, rt: RTTask, seq: int
    ) -> Optional[Sequence[Stage]]:
        if not rt.is_split:
            return None
        # Global scheduling ignores split plans: one whole-budget stage
        # (the placement hooks decide where each job actually runs).
        return (
            Stage(
                core=rt.home_core,
                budget=rt.total_budget,
                deadline_offset=rt.task.deadline,
            ),
        )

    def release_core(self, job: Job, t: int):
        sim = self.sim
        idle = None
        worst = None
        worst_key = None
        for core in sim.cores:
            if (
                core.running is None
                and not core.in_kernel
                and not core.op_queue
            ):
                idle = core
                break
            if core.in_kernel or core.running is None:
                continue
            key = self.key_of(core, core.running)
            if worst_key is None or key > worst_key:
                worst, worst_key = core, key
        if idle is not None:
            return idle
        if worst is not None:
            return worst
        return sim.cores[job.current_core]

    def on_dispatch(self, core, job: Job, t: int) -> None:
        last = job.last_core
        if last is not None and last != core.index:
            sim = self.sim
            name = job.rt.name
            job.migrate_count += 1
            sim.task_stats[name].migrations += 1
            sim.migrations += 1
            if job.displaced:
                # The scheduling pass that displaced this job counted a
                # preemption; the job actually resumed on another core,
                # so the displacement *was* the first half of this
                # migration — one event, one counter.  Reclassify.
                job.preempt_count -= 1
                sim.task_stats[name].preemptions -= 1
                sim.preemptions -= 1
        job.last_core = core.index

    def after_sched(self, core, t: int) -> None:
        """Work-conservation waterfall.

        After any scheduling pass, if jobs are still queued, poke a
        fully idle core — or, failing that, the worst-priority runner
        the queue head would preempt.  Each poked pass either extracts
        from the shared heap or strictly lowers some core's running
        key, so the chain terminates; when it stops, no core is idle
        (or running lower-priority work) while a job waits — the
        invariant the ``cross-class-sanity`` pair checks from traces.
        """
        sim = self.sim
        heap = sim.cores[0].ready
        if not heap:
            return
        for other in sim.cores:
            if other is core:
                continue
            if (
                other.running is None
                and not other.in_kernel
                and not other.op_queue
            ):
                sim.request_sched(other, t)
                return
        head_key, _ = heap.find_min()
        worst = None
        worst_key = None
        for other in sim.cores:
            if other is core or other.in_kernel or other.running is None:
                continue
            key = self.key_of(other, other.running)
            if worst_key is None or key > worst_key:
                worst, worst_key = other, key
        if worst is not None and head_key < worst_key:
            sim.request_sched(worst, t)


class GlobalEDFClass(_GlobalClass):
    """Global EDF: one heap ranked by absolute job deadline."""

    name = "global-edf"

    def job_key(self, core, job: Job) -> Tuple[int, int]:
        return (job.release + job.rt.task.deadline, job.seq)


class GlobalRMClass(_GlobalClass):
    """Global fixed-priority (rate-monotonic when priorities are RM)."""

    name = "global-rm"

    def bind(self, sim) -> "SchedulingClass":
        fair_names = getattr(sim, "_fair_names", frozenset())
        for rt in sim.rt_tasks:
            if rt.name in fair_names:
                continue  # fair tasks rank by virtual deadline instead
            if rt.task.priority is None:
                raise ValueError(
                    f"global-rm requires task priorities: {rt.name} "
                    "has none (run a priority-assignment pass first)"
                )
        return super().bind(sim)

    def job_key(self, core, job: Job) -> Tuple[int, int]:
        return (job.rt.task.priority, job.seq)


class FairClass(SchedulingClass):
    """EEVDF-style best-effort class for background tasks.

    Jobs are ranked by *virtual deadline* ``vd = max(task vruntime,
    eligibility floor) + work`` (uniform weights), offset above
    ``FAIR_KEY_BASE`` so any hard-RT job beats any fair job.  A task's
    virtual runtime advances with its executed CPU time, so tasks that
    have run less sort earlier — long-run proportional fairness.  The
    eligibility floor (the minimum virtual runtime across fair tasks,
    refreshed on release ticks) stops a long-idle task from hoarding
    lag and starving the others when it wakes.

    ``hard_deadlines = False``: fair jobs never record deadline misses;
    an unfinished job is simply superseded at its next release.
    """

    name = "fair"
    hard_deadlines = False

    def __init__(self) -> None:
        super().__init__()
        self._vruntime: Dict[str, int] = {}
        self._floor = 0

    def plan_stages(
        self, rt: RTTask, seq: int
    ) -> Optional[Sequence[Stage]]:
        if not rt.is_split:
            return None
        return (
            Stage(
                core=rt.home_core,
                budget=rt.total_budget,
                deadline_offset=rt.task.deadline,
            ),
        )

    def job_key(self, core, job: Job) -> Tuple[int, int]:
        vd = job.class_data
        if vd is None:
            name = job.rt.name
            eligible = max(self._vruntime.get(name, self._floor), self._floor)
            vd = eligible + job.work
            job.class_data = vd
        return (FAIR_KEY_BASE + vd, job.seq)

    def on_executed(self, core, job: Job, executed: int) -> None:
        name = job.rt.name
        self._vruntime[name] = (
            self._vruntime.get(name, self._floor) + executed
        )

    def on_tick(self, t: int) -> None:
        if self._vruntime:
            self._floor = min(self._vruntime.values())


#: Factories by registry name (fresh instance per simulator: classes
#: are stateful and single-use).
SCHED_CLASSES = {
    "fp": FPClass,
    "edf": EDFClass,
    "restricted": RestrictedMigrationClass,
    "global-edf": GlobalEDFClass,
    "global-rm": GlobalRMClass,
    "fair": FairClass,
}


def make_sched_class(spec) -> SchedulingClass:
    """Resolve ``spec`` (a registry name or a ready instance)."""
    if isinstance(spec, SchedulingClass):
        return spec
    factory = SCHED_CLASSES.get(spec)
    if factory is None:
        raise ValueError(
            f"unknown scheduling class {spec!r}; "
            f"use one of {', '.join(sorted(SCHED_CLASSES))}"
        )
    return factory()
