"""Runtime task structures (the simulator's ``task_struct``).

The paper stores "the timing parameters of each task ... in the data
structure ``task_struct``" and, for split tasks, "the time budget in the
split task's ``task_struct``".  :class:`RTTask` is our equivalent: the
static per-task execution plan derived from an
:class:`~repro.model.assignment.Assignment` — the ordered ``(core, budget)``
stages a job walks through, the local priority the task holds on each core
it visits, and the home core whose sleep queue the task returns to.

:class:`Job` is one activation of an :class:`RTTask`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.model.assignment import Assignment, Entry, EntryKind
from repro.model.task import Task


@dataclass(frozen=True)
class Stage:
    """One execution stage of a job: ``budget`` ns of work on ``core``.

    ``deadline_offset`` is the stage's local absolute-deadline offset from
    the job's release (= entry jitter + entry relative deadline).  Fixed-
    priority scheduling ignores it; the EDF policy keys the ready queue by
    ``release + deadline_offset`` — which is what C=D splitting relies on
    (a body chunk with deadline equal to its budget is served first).
    """

    core: int
    budget: int
    deadline_offset: int = 0


@dataclass
class RTTask:
    """Static runtime description of one task (normal or split).

    ``wcet_ns`` overrides the expected stage-budget sum when the plan is
    *frequency-dilated*: a core clocked at rational ``f`` stretches its
    stage's budget by ``1/f`` wall nanoseconds, so the dilated sum
    legitimately differs from ``task.wcet`` (which stays in full-speed
    units, as do the task's period and deadline).  ``None`` (the
    default) keeps the strict ``sum(budgets) == task.wcet`` invariant.
    """

    task: Task
    stages: List[Stage]
    local_priority: Dict[int, int]  # core -> local priority of our entry
    wcet_ns: Optional[int] = None  # dilated WCET; None = task.wcet

    def __post_init__(self) -> None:
        if not self.stages:
            raise ValueError(f"task {self.task.name}: no stages")
        total = sum(stage.budget for stage in self.stages)
        expected = self.wcet_ns if self.wcet_ns is not None else self.task.wcet
        if total != expected:
            raise ValueError(
                f"task {self.task.name}: stage budgets sum to {total}, "
                f"expected {expected}"
            )
        # Cached aggregate: consulted once per released job on the
        # simulator hot path.
        self.total_budget = total

    @property
    def name(self) -> str:
        return self.task.name

    @property
    def is_split(self) -> bool:
        return len(self.stages) > 1

    @property
    def home_core(self) -> int:
        """Core hosting the first subtask — where the task sleeps (paper §2)."""
        return self.stages[0].core

    def priority_on(self, core: int) -> int:
        return self.local_priority[core]


class Job:
    """One activation (job) of a runtime task.

    ``work_left`` is the job's remaining *actual* execution demand; stage
    budgets only cap how much of it may run on each core.  A job whose
    actual execution time is below the sum of the leading budgets simply
    completes inside a body stage without visiting the remaining cores —
    the paper's ``cnt_swth`` case (3): "the current task is a split task,
    and it has finished its execution".  ``penalty_left`` is cache-reload
    delay that occupies the CPU but consumes neither budget nor work.

    ``nominal_work`` is the demand the analysis budgeted for; fault
    injection may hand a job ``work > nominal_work`` (an execution
    overrun), in which case ``work`` may even exceed the summed stage
    budgets — the *final* stage then absorbs the excess (body-stage
    budgets still force migrations on time), and the simulator's overrun
    policy decides what happens at the nominal boundary.  ``demoted``
    marks a job the ``demote`` policy pushed to background priority.

    Jobs are the simulator's per-release allocation, so the class uses
    ``__slots__`` (one is created for every task release of a run).
    """

    __slots__ = (
        "rt",
        "release",
        "abs_deadline",
        "seq",
        "work",
        "nominal_work",
        "demoted",
        "stages",
        "cls",
        "last_core",
        "class_data",
        "stage_index",
        "work_left",
        "stage_budget_left",
        "penalty_left",
        "preempt_count",
        "migrate_count",
        "displaced",
        "finish_time",
        "ready_handle",
    )

    def __init__(
        self,
        rt: RTTask,
        release: int,
        abs_deadline: int,
        seq: int,
        work: int,  # actual execution demand (may exceed budgets on overrun)
        nominal_work: Optional[int] = None,  # analysed demand (<= budgets)
        stages: Optional[List[Stage]] = None,  # per-job stage plan override
        cls: object = None,  # owning SchedulingClass (None: sim's default)
    ) -> None:
        total_budget = rt.total_budget
        if nominal_work is None:
            nominal_work = work
        if not 0 < nominal_work <= total_budget:
            raise ValueError(
                f"job of {rt.name}: nominal work {nominal_work} outside "
                f"(0, {total_budget}]"
            )
        if work < nominal_work:
            raise ValueError(
                f"job of {rt.name}: work {work} below nominal "
                f"{nominal_work}"
            )
        self.rt = rt
        self.release = release
        self.abs_deadline = abs_deadline
        self.seq = seq
        self.work = work
        self.nominal_work = nominal_work
        self.demoted = False
        # Per-job stage plan: the task's static stages unless the owning
        # scheduling class re-plans them (restricted migration places each
        # whole job on one of the split task's cores; global classes
        # collapse splits to a single stage).
        self.stages = rt.stages if stages is None else stages
        self.cls = cls
        # Last core this job was dispatched on (None before the first
        # dispatch); global classes count migrations from it.
        self.last_core: Optional[int] = None
        # Scratch slot owned by the scheduling class (e.g. the fair
        # class caches the job's virtual deadline here).
        self.class_data: object = None
        self.stage_index = 0
        self.work_left = work
        # The final stage is work-limited, not budget-limited: overrun
        # demand past the summed budgets runs (or is cut by the overrun
        # policy) on the tail core.  For nominal jobs this is exactly the
        # stage budget.
        if len(self.stages) == 1:
            self.stage_budget_left = max(self.stages[0].budget, work)
        else:
            self.stage_budget_left = self.stages[0].budget
        self.penalty_left = 0
        self.preempt_count = 0
        self.migrate_count = 0
        # Set when a scheduling pass displaces this job from its core
        # (counted there as a preemption); cleared on the next dispatch.
        # The global classes reclassify a displaced job that *resumes on
        # another core* as a migration — one displacement is never both
        # a preemption and a migration.
        self.displaced = False
        self.finish_time: Optional[int] = None
        self.ready_handle: object = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Job({self.rt.name}/{self.seq}, release={self.release}, "
            f"work_left={self.work_left})"
        )

    @property
    def name(self) -> str:
        return f"{self.rt.name}/{self.seq}"

    @property
    def current_stage(self) -> Stage:
        return self.stages[self.stage_index]

    @property
    def current_core(self) -> int:
        return self.current_stage.core

    @property
    def is_last_stage(self) -> bool:
        return self.stage_index == len(self.stages) - 1

    @property
    def remaining(self) -> int:
        """CPU time until this dispatch's chunk ends (penalty + work/budget)."""
        return self.penalty_left + min(self.stage_budget_left, self.work_left)

    def account(self, executed: int) -> None:
        """Consume ``executed`` ns of CPU: penalty first, then budget+work."""
        if executed < 0 or executed > self.remaining:
            raise ValueError(
                f"job {self.name}: accounting {executed} of {self.remaining}"
            )
        from_penalty = min(self.penalty_left, executed)
        self.penalty_left -= from_penalty
        progress = executed - from_penalty
        self.stage_budget_left -= progress
        self.work_left -= progress

    @property
    def chunk_done(self) -> bool:
        return self.remaining == 0

    @property
    def work_done(self) -> bool:
        return self.work_left == 0

    @property
    def executed(self) -> int:
        """Work units consumed so far (excludes cache penalties)."""
        return self.work - self.work_left

    @property
    def over_nominal(self) -> bool:
        """True once the job has consumed its analysed (nominal) demand."""
        return self.executed >= self.nominal_work

    def advance_stage(self) -> Stage:
        """Move to the next stage; returns it.  Caller handles migration."""
        if self.is_last_stage:
            raise RuntimeError(f"job {self.name} has no further stage")
        self.stage_index += 1
        stage = self.stages[self.stage_index]
        if self.stage_index == len(self.stages) - 1:
            # Tail stage: absorb any overrun excess (see class docstring).
            self.stage_budget_left = max(stage.budget, self.work_left)
        else:
            self.stage_budget_left = stage.budget
        return stage

    @property
    def completed(self) -> bool:
        return self.finish_time is not None


def build_runtime_tasks(
    assignment: Assignment, metrics=None
) -> List[RTTask]:
    """Derive the runtime task table from an assignment.

    Uses the *raw* entry budgets: the analysis-side inflation (overhead
    accounting) never reaches the simulator, which injects overheads as
    explicit kernel execution instead.

    ``metrics`` (an active :class:`~repro.metrics.registry.
    MetricsRegistry` or ``None``) receives task-table shape gauges —
    how many tasks, how many of them split, and the total stage count —
    the static context every per-primitive measurement is read against
    (the paper reports overheads *as a function of* these).
    """
    by_task: Dict[str, List[Entry]] = {}
    for entry in assignment.entries():
        by_task.setdefault(entry.task.name, []).append(entry)

    runtime: List[RTTask] = []
    for name, entries in by_task.items():
        if len(entries) == 1 and entries[0].kind == EntryKind.NORMAL:
            entry = entries[0]
            runtime.append(
                RTTask(
                    task=entry.task,
                    stages=[
                        Stage(
                            core=entry.core,
                            budget=entry.budget,
                            deadline_offset=entry.deadline,
                        )
                    ],
                    local_priority={entry.core: entry.local_priority},
                )
            )
            continue
        # Split task: order by subtask index.
        entries = sorted(
            entries,
            key=lambda e: e.subtask.index if e.subtask else 0,
        )
        stages = [
            Stage(
                core=e.core,
                budget=e.budget,
                deadline_offset=e.jitter + e.deadline,
            )
            for e in entries
        ]
        priorities = {e.core: e.local_priority for e in entries}
        runtime.append(
            RTTask(
                task=entries[0].task,
                stages=stages,
                local_priority=priorities,
            )
        )
    runtime.sort(key=lambda rt: rt.name)
    if metrics is not None:
        metrics.gauge("sim_task_table_tasks").set(len(runtime))
        metrics.gauge("sim_task_table_split_tasks").set(
            sum(1 for rt in runtime if rt.is_split)
        )
        metrics.gauge("sim_task_table_stages").set(
            sum(len(rt.stages) for rt in runtime)
        )
    return runtime
