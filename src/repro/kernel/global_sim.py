"""Idealised global multiprocessor scheduling (extension, DESIGN.md §7).

The paper's introduction contrasts partitioning with "the global approach
[where] each task can execute on any available processor at run time".
:class:`GlobalSim` provides that baseline: a single system-wide ready
queue, ``m`` identical cores, full migration at zero cost, and either
global rate-monotonic (``g-rm``) or global EDF (``g-edf``) priorities.

It used to be a standalone event loop duplicating the kernel simulator's
heap and dispatch machinery; it is now a thin adapter over
:class:`~repro.kernel.sim.KernelSim` running the ``global-rm`` /
``global-edf`` scheduling classes (:mod:`repro.kernel.sched_class`) with
a zero overhead model — one simulator, one event queue, one set of
counters, and the global classes inherit fault injection, tracing and
the invariant oracles that the old loop never had.

It stays deliberately *idealised* (no kernel overheads): the comparison
of interest is algorithmic — e.g. Dhall's effect, where global RM misses
deadlines at low utilization that partitioned/semi-partitioned
scheduling handles trivially — while overhead-aware global runs can be
had directly from ``KernelSim(..., sched_class="global-edf")`` with any
overhead model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable

from repro.model.assignment import Assignment, Entry, EntryKind
from repro.model.task import Task
from repro.model.taskset import TaskSet
from repro.overhead.model import OverheadModel


@dataclass
class GlobalSimResult:
    duration: int
    policy: str
    misses: int
    releases: int
    completions: int
    preemptions: int
    migrations: int
    max_response: Dict[str, int]

    @property
    def no_misses(self) -> bool:
        return self.misses == 0


def build_global_assignment(
    tasks: Iterable[Task], n_cores: int
) -> Assignment:
    """Pack every task as a NORMAL entry on core 0 of an ``n_cores``
    assignment — the shape the global scheduling classes expect (they
    share one ready heap; per-core placement is a runtime decision, so
    the static assignment only carries the task parameters)."""
    assignment = Assignment(n_cores)
    for rank, task in enumerate(sorted(tasks, key=lambda t: t.name)):
        assignment.add_entry(
            Entry(
                kind=EntryKind.NORMAL,
                task=task,
                core=0,
                budget=task.wcet,
                deadline=task.deadline,
                local_priority=rank,
            )
        )
    return assignment


class GlobalSim:
    """Simulate global FP ("g-rm") or global EDF ("g-edf") scheduling.

    >>> from repro.model.task import Task
    >>> from repro.model.taskset import TaskSet
    >>> ts = TaskSet([Task("a", wcet=4, period=10),
    ...               Task("b", wcet=4, period=10)]).assign_rate_monotonic()
    >>> GlobalSim(ts, n_cores=2, policy="g-rm", duration=100).run().misses
    0
    """

    def __init__(
        self,
        taskset: TaskSet,
        n_cores: int,
        policy: str,
        duration: int,
    ) -> None:
        if policy not in ("g-rm", "g-edf"):
            raise ValueError(f"unknown policy {policy!r}")
        if n_cores <= 0:
            raise ValueError("need at least one core")
        if duration <= 0:
            raise ValueError("duration must be positive")
        if policy == "g-rm":
            for task in taskset:
                if task.priority is None:
                    raise ValueError(
                        f"task {task.name} has no priority; g-rm needs RM "
                        "priorities"
                    )
        self.taskset = taskset
        self.n_cores = n_cores
        self.policy = policy
        self.duration = duration
        from repro.kernel.sim import KernelSim

        self._sim = KernelSim(
            build_global_assignment(taskset, n_cores),
            OverheadModel.zero(),
            duration,
            sched_class=(
                "global-rm" if policy == "g-rm" else "global-edf"
            ),
        )

    def run(self) -> GlobalSimResult:
        """Execute the simulation and distil the global-side counters.

        Miss semantics match the historical standalone loop: a release
        overrunning its unfinished predecessor and a late completion
        each count one miss; jobs merely unfinished at the horizon do
        not (their completion event simply never fired).
        """
        result = self._sim.run()
        misses = sum(
            1 for miss in result.misses if miss.kind in ("overrun", "late")
        )
        return GlobalSimResult(
            duration=self.duration,
            policy=self.policy,
            misses=misses,
            releases=result.releases,
            completions=sum(
                stats.jobs_completed
                for stats in result.task_stats.values()
            ),
            preemptions=result.preemptions,
            migrations=result.migrations,
            max_response={
                name: stats.max_response
                for name, stats in result.task_stats.items()
            },
        )
