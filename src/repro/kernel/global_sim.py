"""Idealised global multiprocessor scheduler (extension, DESIGN.md §7).

The paper's introduction contrasts partitioning with "the global approach
[where] each task can execute on any available processor at run time".
This simulator provides that baseline: a single system-wide ready queue,
``m`` identical cores, full migration at zero cost, and either global
rate-monotonic (``g-rm``) or global EDF (``g-edf``) priorities.

It is deliberately *idealised* (no kernel overheads): the comparison of
interest is algorithmic — e.g. Dhall's effect, where global RM misses
deadlines at low utilization that partitioned/semi-partitioned scheduling
handles trivially — while the overhead-aware machinery lives in
:class:`~repro.kernel.sim.KernelSim`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.kernel.events import EventQueue
from repro.model.task import Task
from repro.model.taskset import TaskSet
from repro.structures.binomial_heap import BinomialHeap


@dataclass
class _GlobalJob:
    task: Task
    release: int
    abs_deadline: int
    seq: int
    remaining: int
    last_core: Optional[int] = None
    handle: object = field(default=None, repr=False)

    @property
    def name(self) -> str:
        return f"{self.task.name}/{self.seq}"


@dataclass
class GlobalSimResult:
    duration: int
    policy: str
    misses: int
    releases: int
    completions: int
    preemptions: int
    migrations: int
    max_response: Dict[str, int]

    @property
    def no_misses(self) -> bool:
        return self.misses == 0


class GlobalSim:
    """Simulate global FP ("g-rm") or global EDF ("g-edf") scheduling.

    >>> from repro.model.task import Task
    >>> from repro.model.taskset import TaskSet
    >>> ts = TaskSet([Task("a", wcet=4, period=10),
    ...               Task("b", wcet=4, period=10)]).assign_rate_monotonic()
    >>> GlobalSim(ts, n_cores=2, policy="g-rm", duration=100).run().misses
    0
    """

    def __init__(
        self,
        taskset: TaskSet,
        n_cores: int,
        policy: str,
        duration: int,
    ) -> None:
        if policy not in ("g-rm", "g-edf"):
            raise ValueError(f"unknown policy {policy!r}")
        if n_cores <= 0:
            raise ValueError("need at least one core")
        if duration <= 0:
            raise ValueError("duration must be positive")
        if policy == "g-rm":
            for task in taskset:
                if task.priority is None:
                    raise ValueError(
                        f"task {task.name} has no priority; g-rm needs RM "
                        "priorities"
                    )
        self.taskset = taskset
        self.n_cores = n_cores
        self.policy = policy
        self.duration = duration
        self.queue = EventQueue()
        self.ready = BinomialHeap()
        self.running: List[Optional[_GlobalJob]] = [None] * n_cores
        self.dispatched_at = [0] * n_cores
        self.completion_events = [None] * n_cores
        self.current: Dict[str, Optional[_GlobalJob]] = {
            task.name: None for task in taskset
        }
        self.misses = 0
        self.releases = 0
        self.completions = 0
        self.preemptions = 0
        self.migrations = 0
        self.max_response: Dict[str, int] = {t.name: 0 for t in taskset}
        self._seq = 0

    # ------------------------------------------------------------------

    def run(self) -> GlobalSimResult:
        for task in self.taskset:
            self.queue.schedule(
                0, lambda t, task=task: self._on_release(task, t), priority=10
            )
        self.queue.run_until(self.duration)
        return GlobalSimResult(
            duration=self.duration,
            policy=self.policy,
            misses=self.misses,
            releases=self.releases,
            completions=self.completions,
            preemptions=self.preemptions,
            migrations=self.migrations,
            max_response=self.max_response,
        )

    # ------------------------------------------------------------------

    def _key(self, job: _GlobalJob) -> tuple:
        if self.policy == "g-edf":
            return (job.abs_deadline, job.seq)
        return (job.task.priority, job.seq)

    def _on_release(self, task: Task, t: int) -> None:
        next_release = t + task.period
        if next_release < self.duration:
            self.queue.schedule(
                next_release,
                lambda t2, task=task: self._on_release(task, t2),
                priority=10,
            )
        previous = self.current[task.name]
        if previous is not None and previous.remaining > 0:
            self.misses += 1  # overrun: drop the new job
            return
        self._seq += 1
        job = _GlobalJob(
            task=task,
            release=t,
            abs_deadline=t + task.deadline,
            seq=self._seq,
            remaining=task.wcet,
        )
        self.current[task.name] = job
        self.releases += 1
        job.handle = self.ready.insert(self._key(job), job)
        self._schedule(t)

    def _schedule(self, t: int) -> None:
        """Fill idle cores; preempt the globally lowest-priority runner."""
        while self.ready:
            idle = next(
                (i for i in range(self.n_cores) if self.running[i] is None),
                None,
            )
            if idle is not None:
                _key, job = self.ready.extract_min()
                job.handle = None
                self._dispatch(idle, job, t)
                continue
            # All cores busy: compare queue head with the worst runner.
            head_key, _head = self.ready.find_min()
            worst_core = max(
                range(self.n_cores),
                key=lambda i: self._key(self.running[i]),
            )
            if head_key < self._key(self.running[worst_core]):
                victim = self._suspend(worst_core, t)
                victim.handle = self.ready.insert(self._key(victim), victim)
                self.preemptions += 1
                _key, job = self.ready.extract_min()
                job.handle = None
                self._dispatch(worst_core, job, t)
            else:
                break

    def _dispatch(self, core: int, job: _GlobalJob, t: int) -> None:
        if job.last_core is not None and job.last_core != core:
            self.migrations += 1
        job.last_core = core
        self.running[core] = job
        self.dispatched_at[core] = t
        event = self.queue.schedule(
            t + job.remaining,
            lambda t2, core=core: self._on_complete(core, t2),
        )
        self.completion_events[core] = event

    def _suspend(self, core: int, t: int) -> _GlobalJob:
        job = self.running[core]
        assert job is not None
        executed = t - self.dispatched_at[core]
        job.remaining -= executed
        if self.completion_events[core] is not None:
            self.completion_events[core].cancel()
            self.completion_events[core] = None
        self.running[core] = None
        return job

    def _on_complete(self, core: int, t: int) -> None:
        job = self.running[core]
        assert job is not None
        job.remaining = 0
        self.running[core] = None
        self.completion_events[core] = None
        self.completions += 1
        response = t - job.release
        if response > self.max_response[job.task.name]:
            self.max_response[job.task.name] = response
        if t > job.abs_deadline:
            self.misses += 1
        self._schedule(t)
