"""Discrete-event engine.

A minimal, deterministic event queue: events fire in (time, insertion
sequence) order, so simultaneous events are processed in the order they
were scheduled — which makes every simulation run exactly reproducible.
Cancellation is O(1) by flagging; cancelled events are skipped on pop.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional


class Event:
    """A scheduled callback.  Use :meth:`cancel` to revoke it.

    ``priority`` breaks ties between events at the same instant: lower
    values run first.  The simulator runs completions and kernel-op ends at
    priority 0 and task releases at priority 10, so a job finishing exactly
    when its successor is released is processed *before* the release — the
    boundary case of an exactly-deadline-filling schedule.
    """

    __slots__ = ("time", "priority", "seq", "fn", "cancelled")

    def __init__(
        self, time: int, priority: int, seq: int, fn: Callable[[int], None]
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.fn = fn
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time,
            other.priority,
            other.seq,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = " cancelled" if self.cancelled else ""
        return f"Event(t={self.time}, seq={self.seq}{state})"


class EventQueue:
    """Priority queue of events ordered by (time, sequence)."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._seq = 0
        self.now = 0

    def schedule(
        self, time: int, fn: Callable[[int], None], priority: int = 0
    ) -> Event:
        """Schedule ``fn(time)`` to run at ``time`` (must not be in the past)."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule event at {time} before now={self.now}"
            )
        event = Event(time, priority, self._seq, fn)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def pop_next(self) -> Optional[Event]:
        """Pop the next live event, advancing ``now``; None when drained."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.now = event.time
            return event
        return None

    def run_until(self, horizon: int) -> None:
        """Execute events up to and including ``horizon``."""
        while self._heap:
            head = self._heap[0]
            if head.cancelled:
                heapq.heappop(self._heap)
                continue
            if head.time > horizon:
                break
            event = heapq.heappop(self._heap)
            self.now = event.time
            event.fn(event.time)
        self.now = max(self.now, horizon)

    def __len__(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)

    def peek_time(self) -> Optional[int]:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None
