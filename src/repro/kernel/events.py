"""Discrete-event engine.

A minimal, deterministic event queue: events fire in (time, insertion
sequence) order, so simultaneous events are processed in the order they
were scheduled — which makes every simulation run exactly reproducible.
Cancellation is O(1) by flagging; cancelled events are skipped on pop.

Performance note: the heap stores ``(time, priority, seq, event)`` tuples
rather than :class:`Event` objects, so ``heappush``/``heappop`` compare
plain tuples entirely in C.  ``seq`` is unique, so comparisons never reach
the event object itself.  Event-object comparisons (``__lt__``) are kept
only for API compatibility.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

#: Same-instant event ordering (lower runs first): work-chunk
#: completions (0) precede release timers (10), so a job finishing
#: exactly at the next release is not misclassified as an overrun;
#: kernel-op ends (20) come last, so every release arriving at the same
#: instant joins the current kernel episode *before* the final
#: scheduling decision — a tick handler that wakes all expired timers
#: and then calls schedule() once, like the real kernel.  Shared by
#: every simulator (plugin and legacy) so their event streams stay
#: comparable entry for entry.
_COMPLETION_PRIORITY = 0
_RELEASE_PRIORITY = 10
_OP_PRIORITY = 20


class Event:
    """A scheduled callback.  Use :meth:`cancel` to revoke it.

    ``priority`` breaks ties between events at the same instant: lower
    values run first.  The simulator runs completions and kernel-op ends at
    priority 0 and task releases at priority 10, so a job finishing exactly
    when its successor is released is processed *before* the release — the
    boundary case of an exactly-deadline-filling schedule.
    """

    __slots__ = ("time", "priority", "seq", "fn", "cancelled")

    def __init__(
        self, time: int, priority: int, seq: int, fn: Callable[[int], None]
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.fn = fn
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time,
            other.priority,
            other.seq,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = " cancelled" if self.cancelled else ""
        return f"Event(t={self.time}, seq={self.seq}{state})"


#: Heap entry: ``(time, priority, seq, event_or_None, fn)``.  The event
#: slot is None for callbacks scheduled through :meth:`schedule_fast`,
#: which cannot be cancelled and therefore need no Event allocation.
_Entry = Tuple[int, int, int, Optional[Event], Callable[[int], None]]


class EventQueue:
    """Priority queue of events ordered by (time, priority, sequence)."""

    def __init__(self) -> None:
        self._heap: List[_Entry] = []
        self._seq = 0
        self.now = 0

    def schedule(
        self, time: int, fn: Callable[[int], None], priority: int = 0
    ) -> Event:
        """Schedule ``fn(time)`` to run at ``time`` (must not be in the past)."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule event at {time} before now={self.now}"
            )
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, priority, seq, fn)
        heapq.heappush(self._heap, (time, priority, seq, event, fn))
        return event

    def schedule_fast(
        self, time: int, fn: Callable[[int], None], priority: int = 0
    ) -> None:
        """Schedule a callback that will never be cancelled.

        Skips the :class:`Event` allocation entirely — the hot path for
        the simulator's kernel-op completions and release timers, which
        are fired exactly once and never revoked.
        """
        if time < self.now:
            raise ValueError(
                f"cannot schedule event at {time} before now={self.now}"
            )
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._heap, (time, priority, seq, None, fn))

    def pop_next(self) -> Optional[Event]:
        """Pop the next live event, advancing ``now``; None when drained."""
        heap = self._heap
        while heap:
            time, priority, seq, event, fn = heapq.heappop(heap)
            if event is None:
                event = Event(time, priority, seq, fn)
            elif event.cancelled:
                continue
            self.now = time
            return event
        return None

    def run_until(self, horizon: int) -> None:
        """Execute events up to and including ``horizon``."""
        heap = self._heap
        pop = heapq.heappop
        while heap:
            if heap[0][0] > horizon:
                break
            entry = pop(heap)
            event = entry[3]
            if event is not None and event.cancelled:
                continue
            time = entry[0]
            self.now = time
            entry[4](time)
        if horizon > self.now:
            self.now = horizon

    def __len__(self) -> int:
        return sum(
            1
            for entry in self._heap
            if entry[3] is None or not entry[3].cancelled
        )

    def peek_time(self) -> Optional[int]:
        heap = self._heap
        while heap and heap[0][3] is not None and heap[0][3].cancelled:
            heapq.heappop(heap)
        return heap[0][0] if heap else None
