"""Frozen pre-plugin kernel simulator (differential reference only).

This is a byte-faithful snapshot of :class:`repro.kernel.sim.KernelSim`
as it stood *before* the scheduling-class refactor, with the
observability wiring (metrics registry, instrumented queues, wall-clock
self-profiling) stripped — those never perturb the simulation, which the
golden-trace suite pins separately.  Everything behaviour-relevant is
kept verbatim: event ordering, kernel-op machinery, overhead charging,
fault injection, overrun policies, tick deferral, resources, and both
dispatch policies.

Do **not** edit the scheduling semantics here.  The class exists so the
``legacy-vs-plugin`` differential pair
(:func:`repro.verify.differential.legacy_vs_plugin`) can prove the
refactored, class-dispatched FP path bit-identical to the pre-refactor
simulator across the fault matrix — the same pattern PR 5 used with the
from-scratch analysis contexts and PR 6 with the scalar engines.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.faults.injector import (
    MIGRATION_DROP,
    MIGRATION_LATE,
    FaultInjector,
)
from repro.faults.log import FaultLog
from repro.faults.plan import OVERRUN_POLICIES, FaultPlan
from repro.kernel.events import (
    _OP_PRIORITY,
    _RELEASE_PRIORITY,
    Event,
    EventQueue,
)
from repro.kernel.runtime import Job, RTTask, build_runtime_tasks
from repro.kernel.sim import DeadlineMiss, SimulationResult, TaskStats
from repro.model.assignment import Assignment
from repro.model.resources import ResourceModel
from repro.overhead.model import OverheadModel
from repro.structures.binomial_heap import BinomialHeap
from repro.structures.rbtree import RedBlackTree

#: Ready-queue key prefix of a demoted job (frozen copy of the value the
#: pre-refactor simulator used; the plugin FP class must reproduce it).
_BACKGROUND_KEY = 1 << 62


class _Op:
    """A unit of kernel execution on one core."""

    __slots__ = ("kind", "duration", "effect", "label")

    def __init__(
        self,
        kind: str,
        duration: int,
        effect: Callable[[int], None],
        label: str,
    ) -> None:
        self.kind = kind
        self.duration = duration
        self.effect = effect
        self.label = label


class _Core:
    """Mutable per-core scheduler state."""

    __slots__ = (
        "index",
        "ready",
        "sleep",
        "running",
        "dispatched_at",
        "completion_event",
        "in_kernel",
        "op_queue",
        "needs_sched",
        "free_dispatch",
        "busy_ns",
        "overhead_ns",
        "seq",
    )

    def __init__(self, index: int) -> None:
        self.index = index
        self.ready = BinomialHeap()
        self.sleep = RedBlackTree()
        self.running: Optional[Job] = None
        self.dispatched_at = 0
        self.completion_event: Optional[Event] = None
        self.in_kernel = False
        self.op_queue: Deque[_Op] = deque()
        self.needs_sched = False
        self.free_dispatch = False
        self.busy_ns = 0
        self.overhead_ns = 0
        self.seq = 0


class LegacyKernelSim:
    """The pre-refactor fixed-policy simulator (see module docstring).

    Accepts the same behaviour-relevant arguments as the pre-refactor
    :class:`~repro.kernel.sim.KernelSim` and returns an identical
    :class:`~repro.kernel.sim.SimulationResult`.
    """

    def __init__(
        self,
        assignment: Assignment,
        overheads: OverheadModel,
        duration: int,
        record_trace: bool = False,
        release_offsets: Optional[Dict[str, int]] = None,
        execution_times: Optional[Dict[str, int]] = None,
        policy: str = "fp",
        sporadic_jitter: int = 0,
        execution_variation: float = 0.0,
        seed: int = 0,
        record_responses: bool = False,
        tick_ns: int = 0,
        resources: Optional["ResourceModel"] = None,
        faults: Optional[FaultPlan] = None,
        overrun_policy: str = "run-on",
    ) -> None:
        if duration <= 0:
            raise ValueError("duration must be positive")
        self.assignment = assignment
        self.model = overheads
        self.duration = duration
        self.record_trace = record_trace
        self.queue = EventQueue()
        self.cores = [_Core(i) for i in range(assignment.n_cores)]
        self.rt_tasks = build_runtime_tasks(assignment)
        self.offsets = release_offsets or {}
        self.execution_times = execution_times or {}
        if policy not in ("fp", "edf"):
            raise ValueError(f"unknown policy {policy!r}; use 'fp' or 'edf'")
        self.policy = policy
        self._edf = policy == "edf"
        if sporadic_jitter < 0:
            raise ValueError("sporadic_jitter must be non-negative")
        if not 0.0 <= execution_variation < 1.0:
            raise ValueError("execution_variation must be in [0, 1)")
        self.sporadic_jitter = sporadic_jitter
        self.execution_variation = execution_variation
        self.record_responses = record_responses
        if tick_ns < 0:
            raise ValueError("tick_ns must be non-negative")
        self.tick_ns = tick_ns
        self.resources = resources
        self._core_ceilings: List[Dict[str, int]] = [
            {} for _ in range(assignment.n_cores)
        ]
        if resources is not None and not resources.is_empty:
            if policy != "fp":
                raise ValueError(
                    "resource sharing is only supported under the FP policy"
                )
            resources.validate_against([rt.task for rt in self.rt_tasks])
            for rt in self.rt_tasks:
                if rt.is_split and resources.sections_of(rt.name):
                    raise ValueError(
                        f"split task {rt.name} declares critical sections; "
                        "unsupported"
                    )
            for core_assignment in assignment.cores:
                ceilings = self._core_ceilings[core_assignment.core]
                for entry in core_assignment.entries:
                    for section in resources.sections_of(entry.task.name):
                        current = ceilings.get(section.resource)
                        if current is None or entry.local_priority < current:
                            ceilings[section.resource] = entry.local_priority
        if overrun_policy not in OVERRUN_POLICIES:
            raise ValueError(
                f"unknown overrun_policy {overrun_policy!r}; use one of "
                f"{', '.join(OVERRUN_POLICIES)}"
            )
        self.overrun_policy = overrun_policy
        self._enforce_overrun = overrun_policy != "run-on"
        self._injector: Optional[FaultInjector] = (
            FaultInjector(faults, seed)
            if faults is not None and not faults.is_empty
            else None
        )
        import random as _random

        self._rng = _random.Random(seed)
        self.misses: List[DeadlineMiss] = []
        self.task_stats: Dict[str, TaskStats] = {
            rt.name: TaskStats() for rt in self.rt_tasks
        }
        self.trace: List[tuple] = []
        self.events_log: List[tuple] = []
        self.cache_delay_ns = 0
        self.context_switches = 0
        self.preemptions = 0
        self.migrations = 0
        self.releases = 0
        self._current_jobs: Dict[str, Optional[Job]] = {
            rt.name: None for rt in self.rt_tasks
        }
        self._sleep_nodes: Dict[str, object] = {}
        self._job_seq = 0
        self._finished = False

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def run(self) -> SimulationResult:
        """Execute the simulation and return the results."""
        if self._finished:
            raise RuntimeError("LegacyKernelSim instances are single-use")
        for rt in self.rt_tasks:
            offset = self.offsets.get(rt.name, 0)
            self._schedule_release(rt, offset)
        self.queue.run_until(self.duration)
        self._finalize()
        self._finished = True
        return SimulationResult(
            duration=self.duration,
            misses=self.misses,
            task_stats=self.task_stats,
            busy_ns=[core.busy_ns for core in self.cores],
            overhead_ns=[core.overhead_ns for core in self.cores],
            cache_delay_ns=self.cache_delay_ns,
            context_switches=self.context_switches,
            preemptions=self.preemptions,
            migrations=self.migrations,
            releases=self.releases,
            trace=self.trace,
            events=self.events_log,
            faults=(
                self._injector.log if self._injector is not None
                else FaultLog()
            ),
        )

    # ------------------------------------------------------------------
    # Release handling (timer path)
    # ------------------------------------------------------------------

    def _work_of(self, rt: RTTask, t: int) -> Tuple[int, int]:
        total_budget = rt.total_budget
        requested = self.execution_times.get(rt.task.name, total_budget)
        if self.execution_variation > 0.0:
            factor = self._rng.uniform(1.0 - self.execution_variation, 1.0)
            requested = int(round(requested * factor))
        nominal = max(1, min(requested, total_budget))
        if self._injector is not None:
            actual = self._injector.draw_work(
                rt.task.name, nominal, t, rt.home_core
            )
        else:
            actual = nominal
        return actual, nominal

    def _schedule_release(self, rt: RTTask, nominal: int) -> None:
        fire = nominal
        jitter = 0
        if self._injector is not None:
            jitter = self._injector.draw_release_jitter(rt.name)
            fire += jitter
        if self.tick_ns > 0:
            fire = -(-fire // self.tick_ns) * self.tick_ns
        if fire < self.duration:
            if jitter > 0:
                self._injector.record_jitter(
                    nominal, rt.name, rt.home_core, jitter
                )
            self.queue.schedule_fast(
                fire,
                lambda t, rt=rt, nominal=nominal: self._on_release(
                    rt, t, nominal
                ),
                priority=_RELEASE_PRIORITY,
            )

    def _on_release(
        self, rt: RTTask, t: int, nominal: Optional[int] = None
    ) -> None:
        if nominal is None:
            nominal = t
        next_release = nominal + rt.task.period
        if self.sporadic_jitter > 0:
            next_release += self._rng.randint(0, self.sporadic_jitter)
        self._schedule_release(rt, next_release)
        previous = self._current_jobs[rt.name]
        if previous is not None and not previous.completed:
            self.misses.append(
                DeadlineMiss(
                    task=rt.name,
                    job_seq=previous.seq,
                    release=previous.release,
                    abs_deadline=previous.abs_deadline,
                    detected_at=t,
                    kind="overrun",
                )
            )
            self._log_event(t, "overrun", rt.name, rt.home_core)
            return
        self._job_seq += 1
        work, nominal_work = self._work_of(rt, t)
        job = Job(
            rt=rt,
            release=nominal,
            abs_deadline=nominal + rt.task.deadline,
            seq=self._job_seq,
            work=work,
            nominal_work=nominal_work,
        )
        name = rt.task.name
        self._current_jobs[name] = job
        self.releases += 1
        self.task_stats[name].jobs_released += 1
        if self.record_trace:
            self._log_event(t, "release", name, rt.home_core)
        home = self.cores[rt.home_core]
        node = self._sleep_nodes.pop(name, None)
        if node is not None:
            home.sleep.remove(node)
        core = self.cores[job.current_core]
        self._kernel_enqueue(
            core,
            _Op(
                kind="release",
                duration=self.model.rls,
                effect=lambda t2, job=job, core=core: self._do_release(
                    core, job, t2
                ),
                label=f"rls:{name}" if self.record_trace else "rls",
            ),
            t,
        )

    def _do_release(self, core: _Core, job: Job, t: int) -> None:
        self._ready_insert(core, job, t)
        core.needs_sched = True

    # ------------------------------------------------------------------
    # Kernel-execution machinery
    # ------------------------------------------------------------------

    def _kernel_enqueue(self, core: _Core, op: _Op, t: int) -> None:
        core.op_queue.append(op)
        if not core.in_kernel:
            self._suspend_running(core, t)
            core.in_kernel = True
            self._start_next_op(core, t)

    def _suspend_running(self, core: _Core, t: int) -> None:
        job = core.running
        if job is None or core.completion_event is None:
            return
        executed = t - core.dispatched_at
        core.completion_event.cancel()
        core.completion_event = None
        if executed > 0:
            job.account(executed)
            core.busy_ns += executed
            if self.record_trace:
                self._record(
                    core.index, core.dispatched_at, t, job.name, "exec"
                )
        if job.chunk_done:
            core.running = None
            self._enqueue_chunk_end(core, job, t, front=True)

    def _start_next_op(self, core: _Core, t: int) -> None:
        op = core.op_queue.popleft()
        if op.kind == "sched":
            op.duration = self._sched_duration(core)
        duration = op.duration
        if duration > 0 and self._injector is not None:
            duration = self._injector.spike(op.kind, duration, t, core.index)
        end = t + duration
        if duration > 0:
            core.overhead_ns += duration
            if self.record_trace:
                self._record(core.index, t, end, op.label, "overhead")
        self.queue.schedule_fast(
            end,
            lambda t2, core=core, op=op: self._finish_op(core, op, t2),
            priority=_OP_PRIORITY,
        )

    def _finish_op(self, core: _Core, op: _Op, t: int) -> None:
        op.effect(t)
        if core.op_queue:
            self._start_next_op(core, t)
        elif core.needs_sched:
            core.needs_sched = False
            sched_op = _Op(
                kind="sched",
                duration=0,
                effect=lambda t2, core=core: self._do_sched(core, t2),
                label="sch",
            )
            core.op_queue.append(sched_op)
            self._start_next_op(core, t)
        else:
            self._exit_kernel(core, t)

    def _exit_kernel(self, core: _Core, t: int) -> None:
        core.in_kernel = False
        job = core.running
        if job is None:
            return
        core.dispatched_at = t
        end = t + self._chunk_length(job)
        core.completion_event = self.queue.schedule(
            end, lambda t2, core=core: self._on_chunk_done(core, t2)
        )

    # ------------------------------------------------------------------
    # Critical sections (immediate priority ceiling protocol)
    # ------------------------------------------------------------------

    def _sections_of(self, rt: RTTask):
        if self.resources is None:
            return ()
        return self.resources.sections_of(rt.name)

    def _work_to_boundary(self, job: Job) -> Optional[int]:
        sections = self._sections_of(job.rt)
        if not sections:
            return None
        executed = job.work - job.work_left
        for section in sections:
            if executed < section.start:
                return section.start - executed
            if executed < section.end:
                return section.end - executed
        return None

    def _chunk_length(self, job: Job) -> int:
        base = job.stage_budget_left
        work_left = job.work_left
        if work_left < base:
            base = work_left
        if (
            self._enforce_overrun
            and not job.demoted
            and job.work > job.nominal_work
        ):
            boundary = job.nominal_work - (job.work - work_left)
            if 0 <= boundary < base:
                base = boundary
        if self.resources is not None:
            boundary = self._work_to_boundary(job)
            if boundary is not None and boundary < base:
                base = boundary
        return job.penalty_left + base

    def _active_ceiling(self, core: _Core, job: Job) -> Optional[int]:
        sections = self._sections_of(job.rt)
        if not sections:
            return None
        executed = job.work - job.work_left
        for section in sections:
            if section.start <= executed < section.end:
                return self._core_ceilings[core.index].get(section.resource)
        return None

    def _at_section_end(self, job: Job) -> bool:
        executed = job.work - job.work_left
        return any(
            executed == section.end for section in self._sections_of(job.rt)
        )

    # ------------------------------------------------------------------
    # Scheduling decisions
    # ------------------------------------------------------------------

    def _would_preempt(self, core: _Core) -> bool:
        running = core.running
        if running is None or not core.ready:
            return False
        min_key, _job = core.ready.find_min()
        running_key = self._key_of(core, running)
        if self.resources is not None:
            ceiling = self._active_ceiling(core, running)
            if ceiling is not None:
                running_key = (min(running_key[0], ceiling), running_key[1])
        return min_key < running_key

    def _sched_duration(self, core: _Core) -> int:
        if core.free_dispatch:
            return 0
        return self.model.sch(preemption=self._would_preempt(core))

    def _do_sched(self, core: _Core, t: int) -> None:
        free = core.free_dispatch
        core.free_dispatch = False
        if core.running is not None:
            if self._would_preempt(core):
                victim = core.running
                core.running = None
                penalty = self.model.cache.preemption_delay(
                    victim.rt.task.wss
                )
                victim.penalty_left += penalty
                self.cache_delay_ns += penalty
                victim.preempt_count += 1
                self.task_stats[victim.rt.task.name].preemptions += 1
                self.preemptions += 1
                self._ready_insert(core, victim, t)
                if self.record_trace:
                    self._log_event(
                        t, "preempt", victim.rt.task.name, core.index
                    )
            else:
                return
        if not core.ready:
            return
        _key, job = core.ready.extract_min()
        job.ready_handle = None
        cnt_op = _Op(
            kind="cnt_in",
            duration=0 if free else self.model.cnt1,
            effect=lambda t2, core=core, job=job: self._do_dispatch(
                core, job, t2
            ),
            label=f"cnt1:{job.rt.task.name}" if self.record_trace else "cnt1",
        )
        core.op_queue.append(cnt_op)

    def _do_dispatch(self, core: _Core, job: Job, t: int) -> None:
        core.running = job
        self.context_switches += 1
        if self.record_trace:
            self._log_event(t, "dispatch", job.rt.task.name, core.index)

    # ------------------------------------------------------------------
    # Chunk completion: job finish or budget exhaustion
    # ------------------------------------------------------------------

    def _on_chunk_done(self, core: _Core, t: int) -> None:
        job = core.running
        assert job is not None, "completion event with no running job"
        executed = t - core.dispatched_at
        if executed > 0:
            job.account(executed)
            core.busy_ns += executed
            if self.record_trace:
                self._record(
                    core.index, core.dispatched_at, t, job.name, "exec"
                )
        core.completion_event = None
        if not job.chunk_done:
            if self._at_overrun_boundary(job):
                self._on_overrun_boundary(core, job, t)
                return
            self._on_section_edge(core, job, t)
            return
        core.running = None
        core.in_kernel = True
        self._enqueue_chunk_end(core, job, t, front=False)
        if core.op_queue:
            self._start_next_op(core, t)

    def _on_section_edge(self, core: _Core, job: Job, t: int) -> None:
        if self._at_section_end(job) and core.ready:
            core.in_kernel = True
            core.needs_sched = True
            sched_op = _Op(
                kind="sched",
                duration=0,
                effect=lambda t2, core=core: self._do_sched(core, t2),
                label="sch",
            )
            core.needs_sched = False
            core.op_queue.append(sched_op)
            self._start_next_op(core, t)
            return
        core.dispatched_at = t
        end = t + self._chunk_length(job)
        core.completion_event = self.queue.schedule(
            end, lambda t2, core=core: self._on_chunk_done(core, t2)
        )

    # ------------------------------------------------------------------
    # Overrun policies (fault injection)
    # ------------------------------------------------------------------

    def _at_overrun_boundary(self, job: Job) -> bool:
        return (
            self._enforce_overrun
            and not job.demoted
            and job.work > job.nominal_work
            and job.penalty_left == 0
            and job.work - job.work_left == job.nominal_work
        )

    def _on_overrun_boundary(self, core: _Core, job: Job, t: int) -> None:
        core.running = None
        core.in_kernel = True
        name = job.rt.task.name
        if self.overrun_policy == "abort-job":
            job.finish_time = t
            self.task_stats[name].jobs_killed += 1
            self.misses.append(
                DeadlineMiss(
                    task=name,
                    job_seq=job.seq,
                    release=job.release,
                    abs_deadline=job.abs_deadline,
                    detected_at=t,
                    kind="aborted",
                )
            )
            if self._injector is not None:
                self._injector.record_policy(
                    t, "abort", name, core.index,
                    f"nominal={job.nominal_work} dropped={job.work_left}",
                )
            self._log_event(t, "abort", name, core.index)
            op = _Op(
                kind="finish",
                duration=self.model.sch(False) + self.model.cnt2_finish,
                effect=lambda t2, core=core, job=job: self._do_abort_cleanup(
                    core, job, t2
                ),
                label=f"abrt:{name}" if self.record_trace else "abrt",
            )
        else:  # "demote"
            job.demoted = True
            if self._injector is not None:
                self._injector.record_policy(
                    t, "demote", name, core.index,
                    f"nominal={job.nominal_work} left={job.work_left}",
                )
            self._log_event(t, "demote", name, core.index)
            op = _Op(
                kind="demote",
                duration=self.model.ready_op_ns,
                effect=lambda t2, core=core, job=job: self._do_demote(
                    core, job, t2
                ),
                label=f"dmt:{name}" if self.record_trace else "dmt",
            )
        core.op_queue.append(op)
        self._start_next_op(core, t)

    def _do_abort_cleanup(self, core: _Core, job: Job, t: int) -> None:
        rt = job.rt
        name = rt.task.name
        home = self.cores[rt.home_core]
        self._sleep_nodes[name] = home.sleep.insert(
            (job.release + rt.task.period, name), rt
        )
        core.needs_sched = True
        core.free_dispatch = True

    def _do_demote(self, core: _Core, job: Job, t: int) -> None:
        self._ready_insert(core, job, t)
        core.needs_sched = True

    def _enqueue_chunk_end(
        self, core: _Core, job: Job, t: int, front: bool
    ) -> None:
        if job.work_done:
            job.finish_time = t
            op = _Op(
                kind="finish",
                duration=self.model.sch(False) + self.model.cnt2_finish,
                effect=lambda t2, core=core, job=job, done=t: self._do_finish(
                    core, job, t2, completed_at=done
                ),
                label=(
                    f"cnt2:{job.rt.task.name}"
                    if self.record_trace
                    else "cnt2"
                ),
            )
        else:
            op = _Op(
                kind="migrate_out",
                duration=self.model.sch(False) + self.model.cnt2_migrate,
                effect=lambda t2, core=core, job=job: self._do_migrate_out(
                    core, job, t2
                ),
                label=(
                    f"mig:{job.rt.task.name}" if self.record_trace else "mig"
                ),
            )
        if front:
            core.op_queue.appendleft(op)
        else:
            core.op_queue.append(op)

    def _do_finish(
        self, core: _Core, job: Job, t: int, completed_at: int
    ) -> None:
        job.finish_time = completed_at
        rt = job.rt
        name = rt.task.name
        stats = self.task_stats[name]
        stats.jobs_completed += 1
        response = completed_at - job.release
        stats.total_response += response
        if response > stats.max_response:
            stats.max_response = response
        if self.record_responses:
            stats.responses.append(response)
        if completed_at > job.abs_deadline:
            self.misses.append(
                DeadlineMiss(
                    task=name,
                    job_seq=job.seq,
                    release=job.release,
                    abs_deadline=job.abs_deadline,
                    detected_at=completed_at,
                    kind="late",
                )
            )
            if self.record_trace:
                self._log_event(completed_at, "miss", name, core.index)
        elif self.record_trace:
            self._log_event(completed_at, "finish", name, core.index)
        home = self.cores[rt.home_core]
        self._sleep_nodes[name] = home.sleep.insert(
            (job.release + rt.task.period, name), rt
        )
        core.needs_sched = True
        core.free_dispatch = True

    def _do_migrate_out(self, core: _Core, job: Job, t: int) -> None:
        name = job.rt.task.name
        delay = 0
        if self._injector is not None:
            fate, delay = self._injector.migration_fate(name, t, core.index)
            if fate == MIGRATION_DROP:
                job.finish_time = t
                self.task_stats[name].jobs_killed += 1
                self.misses.append(
                    DeadlineMiss(
                        task=name,
                        job_seq=job.seq,
                        release=job.release,
                        abs_deadline=job.abs_deadline,
                        detected_at=t,
                        kind="lost",
                    )
                )
                self._log_event(t, "lost", name, core.index)
                rt = job.rt
                home = self.cores[rt.home_core]
                self._sleep_nodes[name] = home.sleep.insert(
                    (job.release + rt.task.period, name), rt
                )
                core.needs_sched = True
                core.free_dispatch = True
                return
            if fate != MIGRATION_LATE:
                delay = 0
        stage = job.advance_stage()
        penalty = self.model.cache.migration_delay(job.rt.task.wss)
        job.penalty_left += penalty
        self.cache_delay_ns += penalty
        job.migrate_count += 1
        self.task_stats[name].migrations += 1
        self.migrations += 1
        if self.record_trace:
            self._log_event(t, "migrate", name, stage.core)
        destination = self.cores[stage.core]
        arrival = _Op(
            kind="migrate_in",
            duration=0,
            effect=lambda t2, dest=destination, job=job: self._do_migrate_in(
                dest, job, t2
            ),
            label=f"migin:{name}" if self.record_trace else "migin",
        )
        if delay > 0:
            self.queue.schedule_fast(
                t + delay,
                lambda t2, dest=destination, op=arrival: self._kernel_enqueue(
                    dest, op, t2
                ),
                priority=_RELEASE_PRIORITY,
            )
        else:
            self._kernel_enqueue(destination, arrival, t)
        core.needs_sched = True
        core.free_dispatch = True

    def _do_migrate_in(self, core: _Core, job: Job, t: int) -> None:
        self._ready_insert(core, job, t)
        core.needs_sched = True

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _key_of(self, core: _Core, job: Job) -> tuple:
        if job.demoted:
            return (_BACKGROUND_KEY, job.seq)
        if self._edf:
            offset = job.rt.stages[job.stage_index].deadline_offset
            return (job.release + offset, job.seq)
        return (job.rt.local_priority[core.index], job.seq)

    def _ready_insert(
        self, core: _Core, job: Job, t: Optional[int] = None
    ) -> None:
        job.ready_handle = core.ready.insert(self._key_of(core, job), job)
        if self.record_trace and t is not None:
            self.events_log.append((t, "ready", job.name, core.index))

    def _record(
        self, core: int, start: int, end: int, label: str, kind: str
    ) -> None:
        if self.record_trace and end > start:
            self.trace.append((core, start, end, label, kind))

    def _log_event(self, t: int, kind: str, task: str, core: int) -> None:
        if self.record_trace:
            self.events_log.append((t, kind, task, core))

    def _finalize(self) -> None:
        t = self.duration
        for core in self.cores:
            job = core.running
            if job is not None and core.completion_event is not None:
                executed = t - core.dispatched_at
                if executed > 0:
                    core.busy_ns += executed
                    self._record(
                        core.index, core.dispatched_at, t, job.name, "exec"
                    )
                core.completion_event.cancel()
                core.completion_event = None
        for job in self._current_jobs.values():
            if (
                job is not None
                and not job.completed
                and job.abs_deadline <= self.duration
            ):
                self.misses.append(
                    DeadlineMiss(
                        task=job.rt.name,
                        job_seq=job.seq,
                        release=job.release,
                        abs_deadline=job.abs_deadline,
                        detected_at=self.duration,
                        kind="incomplete",
                    )
                )
