"""Discrete-event simulator of the paper's semi-partitioned kernel scheduler.

This package is the substitution substrate for the paper's Linux 2.6.32
patch (see DESIGN.md): it reproduces the scheduler architecture of Section 2

* one binomial-heap **ready queue** and one red-black-tree **sleep queue**
  per core;
* **normal tasks** pinned to a core, **split tasks** migrating when their
  per-core budget runs out, returning to the sleep queue of the core that
  hosts their first subtask;
* the four overhead sources of Section 3 (``rls``, ``sch``, ``cnt1``,
  ``cnt2``) injected as non-preemptible kernel execution segments, plus
  cache-related preemption/migration delay charged when a job resumes.

The simulator consumes the same :class:`~repro.model.assignment.Assignment`
objects the analysis produces, so an analysis verdict can be validated by
simulation directly (experiment E6).

Scheduling policies are pluggable (:mod:`repro.kernel.sched_class`): the
simulator delegates every queue decision to a :class:`SchedulingClass`,
with registered classes for semi-partitioned FP (the default), per-core
EDF, restricted-migration semi-partitioning, shared-queue global EDF/RM,
and an EEVDF-style fair class for background work.
:class:`~repro.kernel.legacy.LegacyKernelSim` is a frozen snapshot of
the pre-plugin monolithic simulator kept as the bit-identity reference
for the ``legacy-vs-plugin`` differential pair.
"""

from repro.kernel.events import EventQueue, Event
from repro.kernel.legacy import LegacyKernelSim
from repro.kernel.runtime import Job, RTTask, Stage, build_runtime_tasks
from repro.kernel.sched_class import (
    BACKGROUND_KEY,
    FAIR_KEY_BASE,
    SCHED_CLASSES,
    SchedulingClass,
    make_sched_class,
)
from repro.kernel.sim import KernelSim, SimulationResult, DeadlineMiss
from repro.kernel.global_sim import (
    GlobalSim,
    GlobalSimResult,
    build_global_assignment,
)

__all__ = [
    "BACKGROUND_KEY",
    "EventQueue",
    "Event",
    "FAIR_KEY_BASE",
    "Job",
    "LegacyKernelSim",
    "RTTask",
    "SCHED_CLASSES",
    "SchedulingClass",
    "Stage",
    "build_global_assignment",
    "build_runtime_tasks",
    "make_sched_class",
    "KernelSim",
    "SimulationResult",
    "DeadlineMiss",
    "GlobalSim",
    "GlobalSimResult",
]
