"""Discrete-event simulator of the paper's semi-partitioned kernel scheduler.

This package is the substitution substrate for the paper's Linux 2.6.32
patch (see DESIGN.md): it reproduces the scheduler architecture of Section 2

* one binomial-heap **ready queue** and one red-black-tree **sleep queue**
  per core;
* **normal tasks** pinned to a core, **split tasks** migrating when their
  per-core budget runs out, returning to the sleep queue of the core that
  hosts their first subtask;
* the four overhead sources of Section 3 (``rls``, ``sch``, ``cnt1``,
  ``cnt2``) injected as non-preemptible kernel execution segments, plus
  cache-related preemption/migration delay charged when a job resumes.

The simulator consumes the same :class:`~repro.model.assignment.Assignment`
objects the analysis produces, so an analysis verdict can be validated by
simulation directly (experiment E6).
"""

from repro.kernel.events import EventQueue, Event
from repro.kernel.runtime import Job, RTTask, build_runtime_tasks
from repro.kernel.sim import KernelSim, SimulationResult, DeadlineMiss
from repro.kernel.global_sim import GlobalSim, GlobalSimResult

__all__ = [
    "EventQueue",
    "Event",
    "Job",
    "RTTask",
    "build_runtime_tasks",
    "KernelSim",
    "SimulationResult",
    "DeadlineMiss",
    "GlobalSim",
    "GlobalSimResult",
]
