"""SPA1 and SPA2 — utilization-bound semi-partitioned algorithms.

Reconstructed from the published description of the paper's reference [4]
(Guan, Stigge, Yi & Yu, *Fixed-Priority Multiprocessor Scheduling with Liu
and Layland's Utilization Bound*, RTAS 2010).  Both achieve the Liu &
Layland utilization bound ``Theta(n) = n(2^{1/n} - 1)`` on ``m`` processors:

* **SPA1** handles task sets in which every task is *light*
  (``u <= Theta/(1+Theta)``): tasks are laid onto processors in increasing
  RM-priority order (longest period first); when a processor's utilization
  reaches ``Theta`` the current task is split at the utilization boundary,
  the overflowing remainder moving to the next processor.  Split-task
  pieces run at the **top of the local priority order**.
* **SPA2** removes the light-task restriction by *pre-assigning* heavy
  tasks (``u > Theta/(1+Theta)``) to dedicated processors — so heavy tasks
  are never split — and then running the SPA1 filling on the remaining
  tasks and processors.

Acceptance is the constructive outcome: the assignment succeeds whenever
the fill completes within ``m`` processors, which is guaranteed when
``U <= m * Theta(n)`` (and, for SPA1, all tasks are light).  The returned
assignments carry the same body/tail entry metadata as FP-TS, so the exact
RTA and the kernel simulator both accept them.

This module is a faithful *reconstruction* of the algorithmic skeleton; the
original paper's tie-breaking details may differ (documented in DESIGN.md).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.analysis.bounds import liu_layland_bound, spa_light_threshold
from repro.analysis.incremental import make_rta_context
from repro.analysis.rta import order_entries
from repro.model.assignment import Assignment, Entry, EntryKind
from repro.model.split import SplitTask, Subtask
from repro.model.task import Task
from repro.model.taskset import TaskSet

_EPS = 1e-12


class _SpaFill:
    """Sequential Theta-utilization filling with splitting at the boundary.

    SPA admission is pure utilization arithmetic (no RTA probes), so the
    per-core analysis contexts serve as the entry containers and
    utilization accumulators — placements go through ``install`` and the
    Theta comparison reads ``context.utilization``, keeping the API
    uniform with the probe-driven partitioners.
    """

    def __init__(
        self, cores: List[int], theta: float, incremental: bool = True
    ) -> None:
        if not cores:
            raise ValueError("no cores to fill")
        self.cores = cores  # physical core ids, filled in this order
        self.theta = theta
        self.position = 0  # index into self.cores
        self.contexts = {
            core: make_rta_context(incremental=incremental) for core in cores
        }
        self.splits: List[SplitTask] = []
        self.body_rank = 0

    def _current(self) -> Optional[int]:
        if self.position >= len(self.cores):
            return None
        return self.cores[self.position]

    def place(self, task: Task) -> bool:
        """Place ``task``, splitting across fill boundaries as needed."""
        remaining = task.wcet
        pieces: List[Tuple[int, int]] = []
        piece_entries: List[Entry] = []
        cumulative_bound = 0
        while True:
            core = self._current()
            if core is None:
                return False
            spare = self.theta - self.contexts[core].utilization
            remaining_utilization = remaining / task.period
            if remaining_utilization <= spare + _EPS:
                # The rest fits here: tail (or whole task if never split).
                index = len(pieces)
                entry = self._make_entry(
                    task, core, index, remaining, cumulative_bound
                )
                pieces.append((core, remaining))
                piece_entries.append(entry)
                self._commit(task, pieces, piece_entries)
                return True
            # Fill the processor to Theta with a body chunk and move on.
            budget = int(spare * task.period)
            if budget <= 0:
                self.position += 1
                continue
            budget = min(budget, remaining - 1)
            index = len(pieces)
            entry = self._make_entry(
                task, core, index, budget, cumulative_bound, body=True
            )
            pieces.append((core, budget))
            piece_entries.append(entry)
            # Body runs at top local priority: its response bound is its
            # budget plus the budgets of earlier-placed bodies on the core.
            response = budget + sum(
                e.budget
                for e in self.contexts[core].entries
                if e.kind == EntryKind.BODY
            )
            cumulative_bound += response
            remaining -= budget
            self.position += 1

    def _make_entry(
        self,
        task: Task,
        core: int,
        index: int,
        budget: int,
        cumulative_bound: int,
        body: bool = False,
    ) -> Entry:
        if body:
            sub = Subtask(
                task=task,
                index=index,
                core=core,
                budget=budget,
                total_subtasks=index + 2,
            )
            entry = Entry(
                kind=EntryKind.BODY,
                task=task,
                core=core,
                budget=budget,
                subtask=sub,
                deadline=max(1, task.deadline - cumulative_bound),
                jitter=cumulative_bound,
                body_rank=self.body_rank,
            )
            self.body_rank += 1
            return entry
        if index == 0:
            return Entry(
                kind=EntryKind.NORMAL,
                task=task,
                core=core,
                budget=budget,
                deadline=task.deadline,
            )
        sub = Subtask(
            task=task,
            index=index,
            core=core,
            budget=budget,
            total_subtasks=index + 1,
        )
        return Entry(
            kind=EntryKind.TAIL,
            task=task,
            core=core,
            budget=budget,
            subtask=sub,
            deadline=max(1, task.deadline - cumulative_bound),
            jitter=cumulative_bound,
        )

    def _commit(
        self,
        task: Task,
        pieces: List[Tuple[int, int]],
        piece_entries: List[Entry],
    ) -> None:
        if len(pieces) == 1:
            self.contexts[pieces[0][0]].install(piece_entries[0])
            return
        split = SplitTask.build(task, pieces)
        for entry, sub in zip(piece_entries, split.subtasks):
            entry.subtask = sub
            entry.kind = EntryKind.TAIL if sub.is_tail else EntryKind.BODY
            self.contexts[entry.core].install(entry)
        self.splits.append(split)

    def build_assignment(self, n_cores: int) -> Assignment:
        assignment = Assignment(n_cores)
        for core, ctx in self.contexts.items():
            for local_priority, entry in enumerate(order_entries(ctx.entries)):
                entry.local_priority = local_priority
                assignment.add_entry(entry)
        for split in self.splits:
            assignment.register_split(split)
        return assignment


def _require_priorities(taskset: TaskSet) -> None:
    for task in taskset:
        if task.priority is None:
            raise ValueError(
                f"task {task.name} has no priority; call "
                "assign_rate_monotonic() first"
            )


def spa1_partition(
    taskset: TaskSet, n_cores: int, incremental: bool = True
) -> Optional[Assignment]:
    """SPA1: Theta-fill in increasing-priority order; all tasks must be light.

    Returns ``None`` when the light-task precondition fails or the fill
    overflows the platform.  ``incremental`` picks the context flavor
    used as the per-core container (no behavioral difference — SPA runs
    no RTA probes).
    """
    _require_priorities(taskset)
    if len(taskset) == 0:
        return Assignment(n_cores)
    theta = liu_layland_bound(len(taskset))
    light = spa_light_threshold(len(taskset))
    if any(task.utilization > light + _EPS for task in taskset):
        return None
    # Increasing RM priority = decreasing priority number first.
    order = sorted(
        taskset, key=lambda t: t.priority, reverse=True  # type: ignore[arg-type]
    )
    fill = _SpaFill(list(range(n_cores)), theta, incremental=incremental)
    for task in order:
        if not fill.place(task):
            return None
    assignment = fill.build_assignment(n_cores)
    assignment.validate()
    return assignment


def spa2_partition(
    taskset: TaskSet, n_cores: int, incremental: bool = True
) -> Optional[Assignment]:
    """SPA2: pre-assign heavy tasks to dedicated processors, SPA1 the rest."""
    _require_priorities(taskset)
    if len(taskset) == 0:
        return Assignment(n_cores)
    theta = liu_layland_bound(len(taskset))
    light = spa_light_threshold(len(taskset))
    heavy = [t for t in taskset if t.utilization > light + _EPS]
    light_tasks = [t for t in taskset if t.utilization <= light + _EPS]
    if len(heavy) > n_cores:
        return None
    assignment_entries: List[Entry] = []
    used_cores: List[int] = []
    # Dedicate one processor per heavy task (decreasing utilization).
    for core, task in enumerate(
        sorted(heavy, key=lambda t: t.utilization, reverse=True)
    ):
        assignment_entries.append(
            Entry(
                kind=EntryKind.NORMAL,
                task=task,
                core=core,
                budget=task.wcet,
                deadline=task.deadline,
            )
        )
        used_cores.append(core)
    remaining_cores = [c for c in range(n_cores) if c not in used_cores]
    if light_tasks and not remaining_cores:
        return None
    if light_tasks:
        order = sorted(
            light_tasks,
            key=lambda t: t.priority,  # type: ignore[arg-type]
            reverse=True,
        )
        fill = _SpaFill(remaining_cores, theta, incremental=incremental)
        for task in order:
            if not fill.place(task):
                return None
        assignment = fill.build_assignment(n_cores)
    else:
        assignment = Assignment(n_cores)
    for entry in assignment_entries:
        entry.local_priority = len(assignment.cores[entry.core].entries)
        assignment.add_entry(entry)
    assignment.validate()
    return assignment
