"""PDMS_HPTS — Partitioned Deadline-Monotonic Scheduling with Highest
Priority Task Splitting (Lakshmanan, Rajkumar & Lehoczky, 2009).

A different member of the semi-partitioned family than FP-TS: processors
are filled **sequentially** (next-fit) with tasks in decreasing-utilization
order, and when a processor overflows, the task split is the **highest
priority task** resident there (shortest period under RM) rather than the
overflowing task.  The insight: the highest-priority task's body suffers
no local interference, so its split pieces have perfectly predictable
response times and the split penalty is minimal — this is what gives the
algorithm its 65 %/69.3 % utilization bounds.

Our implementation uses exact RTA throughout (the "average-case-strong"
variant, mirroring our FP-TS):

1. fill the current processor first-fit-style until a task fails its RTA
   admission there;
2. split the shortest-period task among {residents + the failing task}:
   the largest body chunk the processor can keep (binary search with full
   RTA), the remainder continuing to the *next* processor as a task with
   release jitter and a reduced deadline (it may be placed whole or split
   again);
3. move to the next processor and continue.

Entries and split bookkeeping follow the same conventions as FP-TS, so
the produced assignments drive the analysis and kernel simulator directly.

Admission runs on per-core analysis contexts from
:mod:`repro.analysis.incremental` (incremental memoized RTA by default;
``incremental=False`` selects the from-scratch reference — bit-identical
assignments either way).  The speculative core rebuild of a split
attempt happens on a *clone* of the core's context, adopted only when
the attempt succeeds; victim selection uses a placement-order shadow
list so the choice is independent of how a context stores its entries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.analysis.incremental import make_rta_context
from repro.analysis.rta import order_entries
from repro.model.assignment import Assignment, Entry, EntryKind
from repro.model.split import SplitTask, Subtask
from repro.model.task import Task
from repro.model.taskset import TaskSet


@dataclass(frozen=True)
class PdmsConfig:
    """Tunables; see :class:`repro.semipart.fpts.FptsConfig` for the cost
    semantics (analysis-side charges per migration boundary)."""

    split_cost: int = 0  # destination-side charge per arriving piece
    split_cost_out: int = 0  # source-side charge per body piece
    min_chunk: int = 1000

    def __post_init__(self) -> None:
        if self.split_cost < 0 or self.split_cost_out < 0:
            raise ValueError("costs must be non-negative")
        if self.min_chunk < 1:
            raise ValueError("min_chunk must be at least 1 ns")


@dataclass
class _Piece:
    """A (possibly partial) task waiting to be placed."""

    task: Task
    remaining: int
    index: int  # next subtask index
    jitter: int  # cumulative completion bound of earlier pieces
    placed: List[Tuple[int, int]]  # (core, budget) already committed
    entries: List[Entry]

    @property
    def is_whole(self) -> bool:
        return self.index == 0


def _analysis_budget(entry: Entry, config: PdmsConfig) -> int:
    extra = 0
    if entry.subtask is not None:
        if entry.subtask.index >= 1:
            extra += config.split_cost
        if entry.kind == EntryKind.BODY:
            extra += config.split_cost_out
    return entry.budget + extra


def _entry_for(piece: _Piece, core: int, config: PdmsConfig) -> Entry:
    """Entry placing the piece's entire remainder on ``core``."""
    if piece.is_whole:
        return Entry(
            kind=EntryKind.NORMAL,
            task=piece.task,
            core=core,
            budget=piece.remaining,
            deadline=piece.task.deadline,
        )
    sub = Subtask(
        task=piece.task,
        index=piece.index,
        core=core,
        budget=piece.remaining,
        total_subtasks=piece.index + 1,
    )
    return Entry(
        kind=EntryKind.TAIL,
        task=piece.task,
        core=core,
        budget=piece.remaining,
        subtask=sub,
        deadline=piece.task.deadline - piece.jitter,
        jitter=piece.jitter,
    )


class _PdmsState:
    def __init__(
        self, n_cores: int, config: PdmsConfig, incremental: bool = True
    ) -> None:
        self.config = config
        self.contexts = [
            make_rta_context(
                incremental=incremental,
                budget_fn=lambda e: _analysis_budget(e, config),
            )
            for _ in range(n_cores)
        ]
        # Placement-order view of each core (victim selection uses the
        # position of first placement, not a context's internal order).
        self.placed_order: List[List[Entry]] = [[] for _ in range(n_cores)]
        self.body_rank = 0
        self.splits: List[_Piece] = []

    def try_place(self, piece: _Piece, core: int) -> bool:
        entry = _entry_for(piece, core, self.config)
        if entry.deadline < entry.budget + (
            self.config.split_cost if piece.index >= 1 else 0
        ):
            return False
        if self.contexts[core].probe(entry) is None:
            return False
        self.contexts[core].commit(entry)
        self.placed_order[core].append(entry)
        piece.placed.append((core, piece.remaining))
        piece.entries.append(entry)
        piece.remaining = 0
        return True

    def split_highest_priority(
        self, core: int, incoming: _Piece
    ) -> Optional[_Piece]:
        """Split the shortest-period whole task among residents+incoming on
        ``core``; returns the continuation piece for the next processor, or
        None if no useful split exists."""
        config = self.config
        # Candidates: whole NORMAL residents and the incoming whole piece.
        candidates: List[Tuple[int, Optional[int]]] = []
        for position, entry in enumerate(self.placed_order[core]):
            if entry.kind == EntryKind.NORMAL:
                candidates.append((entry.task.period, position))
        if incoming.is_whole:
            candidates.append((incoming.task.period, None))
        if not candidates:
            return None
        candidates.sort(key=lambda c: c[0])
        _period, position = candidates[0]

        # Speculate on a clone; adopt it only if the split succeeds.
        work = self.contexts[core].clone()
        if position is None:
            victim_task = incoming.task
            incoming_entry = None
        else:
            victim_entry = self.placed_order[core][position]
            victim_task = victim_entry.task
            # The incoming task stays whole and takes the victim's place.
            work.remove(victim_entry)
            incoming_entry = _entry_for(incoming, core, config)
            work.install(incoming_entry)

        remaining = victim_task.wcet

        def build(b: int) -> Optional[Entry]:
            limit = victim_task.deadline - (remaining - b) - config.split_cost
            if limit < b:
                return None
            sub = Subtask(
                task=victim_task,
                index=0,
                core=core,
                budget=b,
                total_subtasks=2,
            )
            return Entry(
                kind=EntryKind.BODY,
                task=victim_task,
                core=core,
                budget=b,
                subtask=sub,
                deadline=limit,
                jitter=0,
                body_rank=self.body_rank,
            )

        best, best_response = work.probe_budget(
            config.min_chunk, remaining - 1, build
        )
        if best is None:
            return None

        # Commit: adopt the speculative core with the body installed.
        body_sub = Subtask(
            task=victim_task,
            index=0,
            core=core,
            budget=best,
            total_subtasks=2,
        )
        body_entry = Entry(
            kind=EntryKind.BODY,
            task=victim_task,
            core=core,
            budget=best,
            subtask=body_sub,
            deadline=best_response,
            jitter=0,
            body_rank=self.body_rank,
        )
        self.body_rank += 1
        work.install(body_entry, best_response)
        self.contexts[core] = work
        if position is None:
            # Incoming task is the victim: its body stays, residents keep.
            self.placed_order[core].append(body_entry)
        else:
            self.placed_order[core][position] = body_entry
            self.placed_order[core].append(incoming_entry)
            incoming.placed.append((core, incoming.remaining))
            incoming.entries.append(incoming_entry)
            incoming.remaining = 0
        continuation = _Piece(
            task=victim_task,
            remaining=victim_task.wcet - best,
            index=1,
            jitter=best_response,
            placed=[(core, best)],
            entries=[body_entry],
        )
        self.splits.append(continuation)
        return continuation


def pdms_hpts_partition(
    taskset: TaskSet,
    n_cores: int,
    config: PdmsConfig = PdmsConfig(),
    incremental: bool = True,
) -> Optional[Assignment]:
    """PDMS_HPTS partitioning; returns None when infeasible.

    ``incremental=False`` runs on the from-scratch analysis context
    (differential reference; bit-identical result).

    >>> from repro.model import Task, TaskSet
    >>> ts = TaskSet([
    ...     Task("a", wcet=6, period=10),
    ...     Task("b", wcet=6, period=10),
    ...     Task("c", wcet=6, period=10),
    ... ]).assign_rate_monotonic()
    >>> assignment = pdms_hpts_partition(ts, 2, PdmsConfig(min_chunk=1))
    >>> assignment is not None and assignment.n_split_tasks == 1
    True
    """
    for task in taskset:
        if task.priority is None:
            raise ValueError(
                f"task {task.name} has no priority; call "
                "assign_rate_monotonic() first"
            )
    state = _PdmsState(n_cores, config, incremental=incremental)
    queue: List[_Piece] = [
        _Piece(
            task=task,
            remaining=task.wcet,
            index=0,
            jitter=0,
            placed=[],
            entries=[],
        )
        for task in taskset.sorted_by_utilization(descending=True)
    ]
    current_core = 0  # processors before this one are closed (full)

    while queue:
        piece = queue.pop(0)
        # (1) place the piece whole on any open processor.
        if any(
            state.try_place(piece, core)
            for core in range(current_core, n_cores)
        ):
            continue
        # (2) overflow: split the highest-priority whole task on the
        # current processor (possibly the piece itself), close the
        # processor, and queue the continuation.
        continuation = None
        if current_core < n_cores:
            continuation = state.split_highest_priority(current_core, piece)
        if continuation is None:
            # No useful split here: close the processor and retry the
            # piece on later ones (it failed *this* core's admission, but
            # the failure may have been local).
            current_core += 1
            if current_core >= n_cores:
                return None
            queue.insert(0, piece)
            continue
        current_core += 1
        if piece.remaining > 0 and continuation.task.name != piece.task.name:
            # Defensive: the split must have absorbed the incoming piece.
            return None  # pragma: no cover
        queue.insert(0, continuation)
        if current_core >= n_cores and queue:
            return None

    assignment = Assignment(n_cores)
    for ctx in state.contexts:
        for local_priority, entry in enumerate(order_entries(ctx.entries)):
            entry.local_priority = local_priority
            assignment.add_entry(entry)
    # Register split tasks.
    by_task: dict = {}
    for entry in assignment.entries():
        if entry.subtask is not None:
            by_task.setdefault(entry.task.name, []).append(entry)
    for name, entries in by_task.items():
        entries.sort(key=lambda e: e.subtask.index)
        split = SplitTask.build(
            entries[0].task,
            [(e.core, e.budget) for e in entries],
        )
        assignment.register_split(split)
    assignment.validate()
    return assignment
