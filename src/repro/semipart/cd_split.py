"""C=D semi-partitioned EDF splitting (extension, DESIGN.md §7).

Implements the C=D scheme (Burns, Davis, Wang & Zhang, *Partitioned EDF
scheduling for multiprocessors using a C=D task splitting scheme*, 2012):

* tasks are placed whole, first-fit in decreasing-utilization order, with
  exact uniprocessor EDF admission (processor-demand analysis);
* a task that fits nowhere is split: a core receives a chunk ``c`` posed
  as a **C=D task** — execution ``c``, *deadline also* ``c`` — which EDF
  necessarily serves as soon as it is released, so the chunk completes
  within ``c`` time units and the remainder continues elsewhere with
  deadline reduced by ``c``;
* the maximal chunk each core can absorb is found by binary search over
  ``c`` with the exact demand-bound test;
* the final piece runs as an ordinary EDF task with deadline
  ``D - sum of earlier chunks`` and release jitter equal to that sum.

Soundness details:

* a split piece with release jitter ``J`` is admitted with an *effective
  period* ``T - J``: successive releases of the piece can be as close as
  ``T - J`` apart, and the demand-bound function with the shortened period
  upper-bounds the true jittered demand;
* migration overheads are charged per piece via :class:`CdSplitConfig`
  (same located-charge discipline as FP-TS).

The produced assignments carry per-stage deadlines, so
``KernelSim(..., policy="edf")`` executes them directly.

Admission runs on per-core demand-bound contexts from
:mod:`repro.analysis.incremental`: the default
:class:`~repro.analysis.incremental.EdfCoreContext` caches resident
triples and restricts the ``C <= D`` pre-check to the candidate
(residents already passed it at their own admission);
``incremental=False`` selects the from-scratch
:class:`~repro.analysis.incremental.EdfScratchContext`.  Both produce
bit-identical assignments (``repro.verify.differential``).  Body ranks
are reserved at commit time: a failed split leaves the splitter as if
the attempt never happened.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.analysis.incremental import make_edf_context
from repro.analysis.rta import order_entries
from repro.model.assignment import Assignment, Entry, EntryKind
from repro.model.split import SplitTask, Subtask
from repro.model.task import Task
from repro.model.taskset import TaskSet


@dataclass(frozen=True)
class CdSplitConfig:
    """Analysis-side charges for C=D splitting (all nanoseconds).

    ``split_cost`` is added to every piece that arrives by migration,
    ``split_cost_out`` to every piece that migrates away (non-final),
    ``min_chunk`` bounds the smallest useful chunk.
    """

    split_cost: int = 0
    split_cost_out: int = 0
    min_chunk: int = 1000

    def __post_init__(self) -> None:
        if self.split_cost < 0 or self.split_cost_out < 0:
            raise ValueError("costs must be non-negative")
        if self.min_chunk < 1:
            raise ValueError("min_chunk must be at least 1 ns")

    @staticmethod
    def from_model(model, cpmd_wss: int = 0, min_chunk: int = 1000):
        from repro.overhead.accounting import (
            migration_in_overhead,
            migration_out_overhead,
        )

        return CdSplitConfig(
            split_cost=migration_in_overhead(model, cpmd_wss),
            split_cost_out=migration_out_overhead(model),
            min_chunk=min_chunk,
        )


def _triple(entry: Entry, config: CdSplitConfig) -> Tuple[int, int, int]:
    """Demand triple (C, T_eff, D) for one entry, charges located."""
    budget = entry.budget
    sub = entry.subtask
    if sub is not None:
        if sub.index >= 1:
            budget += config.split_cost
        if not sub.is_tail:
            budget += config.split_cost_out
    effective_period = entry.period - entry.jitter
    return (budget, max(effective_period, entry.deadline, 1), entry.deadline)


class _CdSplitter:
    def __init__(
        self, n_cores: int, config: CdSplitConfig, incremental: bool = True
    ) -> None:
        self.config = config
        self.contexts = [
            make_edf_context(
                incremental=incremental,
                triple_fn=lambda e: _triple(e, config),
                precheck_cd=True,
            )
            for _ in range(n_cores)
        ]
        self.splits: List[SplitTask] = []
        self.body_rank = 0

    def _spare(self, core: int) -> float:
        return 1.0 - self.contexts[core].utilization

    def try_whole(self, task: Task) -> bool:
        # One probe entry shared across the scan (its admission triple is
        # core-independent); the core is stamped on the admitting hit.
        entry = Entry(
            kind=EntryKind.NORMAL,
            task=task,
            core=0,
            budget=task.wcet,
            deadline=task.deadline,
        )
        pre = self.contexts[0].prepare(entry)
        for core, ctx in enumerate(self.contexts):
            if ctx.probe(entry, pre=pre) is not None:
                entry.core = core
                ctx.commit(entry)
                return True
        return False

    def try_split(self, task: Task) -> bool:
        """Split ``task``; splitter state (contexts, ``body_rank``) moves
        only on success — a failed attempt leaves it untouched."""
        config = self.config
        remaining = task.wcet
        consumed_deadline = 0  # sum of earlier C=D chunks
        pieces: List[Tuple[int, int]] = []
        piece_entries: List[Entry] = []

        candidates = sorted(
            range(len(self.contexts)), key=self._spare, reverse=True
        )
        for core in candidates:
            ctx = self.contexts[core]
            index = len(pieces)
            rank = self.body_rank + index  # provisional; reserved on commit
            # (a) place the remainder as the final ordinary-EDF piece.
            final_deadline = task.deadline - consumed_deadline
            tail_charge = config.split_cost if index >= 1 else 0
            if final_deadline >= remaining + tail_charge:
                sub = Subtask(
                    task=task,
                    index=index,
                    core=core,
                    budget=remaining,
                    total_subtasks=index + 1,
                )
                entry = Entry(
                    kind=EntryKind.TAIL if index >= 1 else EntryKind.NORMAL,
                    task=task,
                    core=core,
                    budget=remaining,
                    subtask=sub if index >= 1 else None,
                    deadline=final_deadline,
                    jitter=consumed_deadline,
                )
                if ctx.probe(entry) is not None:
                    pieces.append((core, remaining))
                    piece_entries.append(entry)
                    self._commit(task, pieces, piece_entries)
                    return True
            # (b) maximal C=D chunk this core can absorb.
            chunk = self._max_chunk(
                task, core, index, rank, remaining, consumed_deadline
            )
            if chunk is None:
                continue
            chunk_deadline = chunk + self._piece_charge(index)
            sub = Subtask(
                task=task,
                index=index,
                core=core,
                budget=chunk,
                total_subtasks=index + 2,
            )
            entry = Entry(
                kind=EntryKind.BODY,
                task=task,
                core=core,
                budget=chunk,
                subtask=sub,
                # C=D on the *total demand*: raw chunk + located charges.
                deadline=chunk_deadline,
                jitter=consumed_deadline,
                body_rank=rank,
            )
            pieces.append((core, chunk))
            piece_entries.append(entry)
            consumed_deadline += chunk_deadline
            remaining -= chunk
        return False

    def _piece_charge(self, index: int) -> int:
        """Overhead charge a body piece at ``index`` carries (out-side
        always; in-side when it arrived by migration)."""
        charge = self.config.split_cost_out
        if index >= 1:
            charge += self.config.split_cost
        return charge

    def _max_chunk(
        self,
        task: Task,
        core: int,
        index: int,
        rank: int,
        remaining: int,
        consumed_deadline: int,
    ) -> Optional[int]:
        """Largest feasible C=D chunk via the context's deduplicated
        binary search — each candidate chunk hits the demand test exactly
        once (the old helper probed the lower bound twice)."""
        config = self.config
        charge = self._piece_charge(index)

        def build(c: int) -> Optional[Entry]:
            # The rest must still be able to meet the residual deadline
            # even with zero interference (reserving the tail's in-charge).
            residual = task.deadline - consumed_deadline - (c + charge)
            if residual < (remaining - c) + config.split_cost:
                return None
            sub = Subtask(
                task=task,
                index=index,
                core=core,
                budget=c,
                total_subtasks=index + 2,
            )
            return Entry(
                kind=EntryKind.BODY,
                task=task,
                core=core,
                budget=c,
                subtask=sub,
                deadline=c + charge,
                jitter=consumed_deadline,
                body_rank=rank,
            )

        best, _verdict = self.contexts[core].probe_budget(
            config.min_chunk, remaining - 1, build
        )
        return best

    def _commit(
        self,
        task: Task,
        pieces: List[Tuple[int, int]],
        piece_entries: List[Entry],
    ) -> None:
        if len(pieces) == 1:
            self.contexts[pieces[0][0]].install(piece_entries[0])
            return
        split = SplitTask.build(task, pieces)
        for entry, sub in zip(piece_entries, split.subtasks):
            entry.subtask = sub
            entry.kind = EntryKind.TAIL if sub.is_tail else EntryKind.BODY
            if entry.kind == EntryKind.BODY:
                self.body_rank += 1
            self.contexts[entry.core].install(entry)
        self.splits.append(split)


def cd_split_partition(
    taskset: TaskSet,
    n_cores: int,
    config: CdSplitConfig = CdSplitConfig(),
    incremental: bool = True,
) -> Optional[Assignment]:
    """Semi-partitioned EDF with C=D splitting; None if infeasible.

    ``incremental=False`` runs on the from-scratch demand-bound context
    (differential reference; bit-identical result).

    >>> from repro.model import Task, TaskSet
    >>> ts = TaskSet([
    ...     Task("a", wcet=6, period=10),
    ...     Task("b", wcet=6, period=10),
    ...     Task("c", wcet=6, period=10),
    ... ]).assign_rate_monotonic()
    >>> assignment = cd_split_partition(ts, 2, CdSplitConfig(min_chunk=1))
    >>> assignment is not None and assignment.n_split_tasks == 1
    True
    """
    for task in taskset:
        if task.priority is None:
            raise ValueError(
                f"task {task.name} has no priority; call "
                "assign_rate_monotonic() first (priorities order the "
                "entry bookkeeping even though EDF ignores them)"
            )
    splitter = _CdSplitter(n_cores, config, incremental=incremental)
    for task in taskset.sorted_by_utilization(descending=True):
        if splitter.try_whole(task):
            continue
        if not splitter.try_split(task):
            return None
    assignment = Assignment(n_cores)
    for ctx in splitter.contexts:
        for local_priority, entry in enumerate(order_entries(ctx.entries)):
            entry.local_priority = local_priority
            assignment.add_entry(entry)
    for split in splitter.splits:
        assignment.register_split(split)
    assignment.validate()
    return assignment
