"""C=D semi-partitioned EDF splitting (extension, DESIGN.md §7).

Implements the C=D scheme (Burns, Davis, Wang & Zhang, *Partitioned EDF
scheduling for multiprocessors using a C=D task splitting scheme*, 2012):

* tasks are placed whole, first-fit in decreasing-utilization order, with
  exact uniprocessor EDF admission (processor-demand analysis);
* a task that fits nowhere is split: a core receives a chunk ``c`` posed
  as a **C=D task** — execution ``c``, *deadline also* ``c`` — which EDF
  necessarily serves as soon as it is released, so the chunk completes
  within ``c`` time units and the remainder continues elsewhere with
  deadline reduced by ``c``;
* the maximal chunk each core can absorb is found by binary search over
  ``c`` with the exact demand-bound test;
* the final piece runs as an ordinary EDF task with deadline
  ``D - sum of earlier chunks`` and release jitter equal to that sum.

Soundness details:

* a split piece with release jitter ``J`` is admitted with an *effective
  period* ``T - J``: successive releases of the piece can be as close as
  ``T - J`` apart, and the demand-bound function with the shortened period
  upper-bounds the true jittered demand;
* migration overheads are charged per piece via :class:`CdSplitConfig`
  (same located-charge discipline as FP-TS).

The produced assignments carry per-stage deadlines, so
``KernelSim(..., policy="edf")`` executes them directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.analysis.edf import edf_schedulable
from repro.analysis.rta import order_entries
from repro.model.assignment import Assignment, Entry, EntryKind
from repro.model.split import SplitTask, Subtask
from repro.model.task import Task
from repro.model.taskset import TaskSet


@dataclass(frozen=True)
class CdSplitConfig:
    """Analysis-side charges for C=D splitting (all nanoseconds).

    ``split_cost`` is added to every piece that arrives by migration,
    ``split_cost_out`` to every piece that migrates away (non-final),
    ``min_chunk`` bounds the smallest useful chunk.
    """

    split_cost: int = 0
    split_cost_out: int = 0
    min_chunk: int = 1000

    def __post_init__(self) -> None:
        if self.split_cost < 0 or self.split_cost_out < 0:
            raise ValueError("costs must be non-negative")
        if self.min_chunk < 1:
            raise ValueError("min_chunk must be at least 1 ns")

    @staticmethod
    def from_model(model, cpmd_wss: int = 0, min_chunk: int = 1000):
        from repro.overhead.accounting import (
            migration_in_overhead,
            migration_out_overhead,
        )

        return CdSplitConfig(
            split_cost=migration_in_overhead(model, cpmd_wss),
            split_cost_out=migration_out_overhead(model),
            min_chunk=min_chunk,
        )


def _triple(entry: Entry, config: CdSplitConfig) -> Tuple[int, int, int]:
    """Demand triple (C, T_eff, D) for one entry, charges located."""
    budget = entry.budget
    sub = entry.subtask
    if sub is not None:
        if sub.index >= 1:
            budget += config.split_cost
        if not sub.is_tail:
            budget += config.split_cost_out
    effective_period = entry.period - entry.jitter
    return (budget, max(effective_period, entry.deadline, 1), entry.deadline)


def _core_edf_ok(
    entries: List[Entry], candidate: Entry, config: CdSplitConfig
) -> bool:
    triples = [_triple(e, config) for e in entries + [candidate]]
    # A C=D chunk (or any entry) must at least fit its own deadline.
    for c, _t, d in triples:
        if c > d:
            return False
    return edf_schedulable(triples)


class _CdSplitter:
    def __init__(self, n_cores: int, config: CdSplitConfig) -> None:
        self.config = config
        self.core_entries: List[List[Entry]] = [[] for _ in range(n_cores)]
        self.splits: List[SplitTask] = []
        self.body_rank = 0

    def _spare(self, core: int) -> float:
        return 1.0 - sum(e.utilization for e in self.core_entries[core])

    def try_whole(self, task: Task) -> bool:
        for core in range(len(self.core_entries)):
            entry = Entry(
                kind=EntryKind.NORMAL,
                task=task,
                core=core,
                budget=task.wcet,
                deadline=task.deadline,
            )
            if _core_edf_ok(self.core_entries[core], entry, self.config):
                self.core_entries[core].append(entry)
                return True
        return False

    def try_split(self, task: Task) -> bool:
        config = self.config
        remaining = task.wcet
        consumed_deadline = 0  # sum of earlier C=D chunks
        pieces: List[Tuple[int, int]] = []
        piece_entries: List[Entry] = []

        candidates = sorted(
            range(len(self.core_entries)), key=self._spare, reverse=True
        )
        for core in candidates:
            index = len(pieces)
            # (a) place the remainder as the final ordinary-EDF piece.
            final_deadline = task.deadline - consumed_deadline
            tail_charge = config.split_cost if index >= 1 else 0
            if final_deadline >= remaining + tail_charge:
                sub = Subtask(
                    task=task,
                    index=index,
                    core=core,
                    budget=remaining,
                    total_subtasks=index + 1,
                )
                entry = Entry(
                    kind=EntryKind.TAIL if index >= 1 else EntryKind.NORMAL,
                    task=task,
                    core=core,
                    budget=remaining,
                    subtask=sub if index >= 1 else None,
                    deadline=final_deadline,
                    jitter=consumed_deadline,
                )
                if _core_edf_ok(self.core_entries[core], entry, config):
                    pieces.append((core, remaining))
                    piece_entries.append(entry)
                    self._commit(task, pieces, piece_entries)
                    return True
            # (b) maximal C=D chunk this core can absorb.
            chunk = self._max_chunk(
                task, core, index, remaining, consumed_deadline
            )
            if chunk is None:
                continue
            chunk_deadline = chunk + self._piece_charge(index)
            sub = Subtask(
                task=task,
                index=index,
                core=core,
                budget=chunk,
                total_subtasks=index + 2,
            )
            entry = Entry(
                kind=EntryKind.BODY,
                task=task,
                core=core,
                budget=chunk,
                subtask=sub,
                # C=D on the *total demand*: raw chunk + located charges.
                deadline=chunk_deadline,
                jitter=consumed_deadline,
                body_rank=self.body_rank,
            )
            self.body_rank += 1
            pieces.append((core, chunk))
            piece_entries.append(entry)
            consumed_deadline += chunk_deadline
            remaining -= chunk
        return False

    def _piece_charge(self, index: int) -> int:
        """Overhead charge a body piece at ``index`` carries (out-side
        always; in-side when it arrived by migration)."""
        charge = self.config.split_cost_out
        if index >= 1:
            charge += self.config.split_cost
        return charge

    def _max_chunk(
        self,
        task: Task,
        core: int,
        index: int,
        remaining: int,
        consumed_deadline: int,
    ) -> Optional[int]:
        config = self.config
        charge = self._piece_charge(index)

        def check(c: int) -> bool:
            # The rest must still be able to meet the residual deadline
            # even with zero interference (reserving the tail's in-charge).
            residual = task.deadline - consumed_deadline - (c + charge)
            if residual < (remaining - c) + config.split_cost:
                return False
            sub = Subtask(
                task=task,
                index=index,
                core=core,
                budget=c,
                total_subtasks=index + 2,
            )
            entry = Entry(
                kind=EntryKind.BODY,
                task=task,
                core=core,
                budget=c,
                subtask=sub,
                deadline=c + charge,
                jitter=consumed_deadline,
                body_rank=self.body_rank,
            )
            return _core_edf_ok(self.core_entries[core], entry, config)

        low = config.min_chunk
        high = remaining - 1
        if high < low or not check(low):
            return None
        best = low
        while low <= high:
            mid = (low + high) // 2
            if check(mid):
                best = mid
                low = mid + 1
            else:
                high = mid - 1
        return best

    def _commit(
        self,
        task: Task,
        pieces: List[Tuple[int, int]],
        piece_entries: List[Entry],
    ) -> None:
        if len(pieces) == 1:
            self.core_entries[pieces[0][0]].append(piece_entries[0])
            return
        split = SplitTask.build(task, pieces)
        for entry, sub in zip(piece_entries, split.subtasks):
            entry.subtask = sub
            entry.kind = EntryKind.TAIL if sub.is_tail else EntryKind.BODY
            self.core_entries[entry.core].append(entry)
        self.splits.append(split)


def cd_split_partition(
    taskset: TaskSet,
    n_cores: int,
    config: CdSplitConfig = CdSplitConfig(),
) -> Optional[Assignment]:
    """Semi-partitioned EDF with C=D splitting; None if infeasible.

    >>> from repro.model import Task, TaskSet
    >>> ts = TaskSet([
    ...     Task("a", wcet=6, period=10),
    ...     Task("b", wcet=6, period=10),
    ...     Task("c", wcet=6, period=10),
    ... ]).assign_rate_monotonic()
    >>> assignment = cd_split_partition(ts, 2, CdSplitConfig(min_chunk=1))
    >>> assignment is not None and assignment.n_split_tasks == 1
    True
    """
    for task in taskset:
        if task.priority is None:
            raise ValueError(
                f"task {task.name} has no priority; call "
                "assign_rate_monotonic() first (priorities order the "
                "entry bookkeeping even though EDF ignores them)"
            )
    splitter = _CdSplitter(n_cores, config)
    for task in taskset.sorted_by_utilization(descending=True):
        if splitter.try_whole(task):
            continue
        if not splitter.try_split(task):
            return None
    assignment = Assignment(n_cores)
    for entries in splitter.core_entries:
        for local_priority, entry in enumerate(order_entries(entries)):
            entry.local_priority = local_priority
            assignment.add_entry(entry)
    for split in splitter.splits:
        assignment.register_split(split)
    assignment.validate()
    return assignment
