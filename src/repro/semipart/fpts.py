"""FP-TS: fixed-priority semi-partitioned scheduling with task splitting.

The algorithm (following the semi-partitioned fixed-priority recipe of the
paper's reference [4]):

1. Sort tasks by decreasing utilization.
2. Try to place each task *whole*, first-fit, admission by exact RTA.
3. If a task fits on no core, **split** it: visit cores in decreasing
   spare-capacity order and

   * first try to place the entire remainder as the **tail** subtask —
     scheduled at the task's RM priority, with release jitter equal to the
     bodies' cumulative completion bound ``S`` and synthetic deadline
     ``D - S``;
   * otherwise give the core the **maximal body budget** it can host (found
     by binary search, checked with exact RTA of the whole core), pinned at
     the top of the core's local priority order, and move on with the rest.

4. Fail only if the remainder survives all cores.

Soundness bookkeeping:

* body subtasks are ordered **above** every normal/tail entry and among
  themselves by creation order, so a body's response-time bound — computed
  the moment it is placed — can never be invalidated by later placements;
* subtask ``j`` carries release jitter ``S_{j-1}`` (sum of the response
  bounds of its predecessors), which inflates the interference it imposes
  on lower-priority residents in all subsequent RTA checks;
* migration overhead is charged *in the analysis*, located on the core
  that physically executes it (see :class:`FptsConfig`): the source-side
  requeue on bodies, the destination-side dispatch + cache reloads on
  arriving subtasks, and the release/completion paths on the first/tail
  subtasks.  Entries and the :class:`~repro.model.split.SplitTask` keep
  the *raw* budgets so the same assignment object can drive the kernel
  simulator.

Admission runs on per-core analysis contexts from
:mod:`repro.analysis.incremental`: the default
:class:`~repro.analysis.incremental.CoreAnalysisContext` memoizes
response times between probes (``incremental=False`` selects the
from-scratch :class:`~repro.analysis.incremental.ScratchRtaContext`;
both provably produce the same assignment — see
``repro.verify.differential``).  Body ranks are *reserved at commit
time*: a failed split attempt leaves the splitter exactly as if it had
never been tried.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.analysis.incremental import make_rta_context
from repro.analysis.rta import order_entries
from repro.model.assignment import Assignment, Entry, EntryKind
from repro.model.split import SplitTask, Subtask
from repro.model.task import Task
from repro.model.taskset import TaskSet


@dataclass(frozen=True)
class FptsConfig:
    """Tunables for the FP-TS partitioner.

    The four cost fields locate the analysis-side overhead charges on the
    core that physically executes them (all in nanoseconds):

    ``split_cost``
        destination-side migration charge, added to every subtask that
        *arrives* by migration (index >= 1): scheduling pass + ``cnt1`` +
        cache reloads;
    ``split_cost_out``
        source-side migration charge, added to every *body* subtask (it
        migrates out when its budget is exhausted): scheduling pass +
        ``cnt2`` with the remote ready-queue insert;
    ``arrival_cost``
        release-path charge pinned on a split task's *first* subtask —
        the per-job WCET inflation cannot say which core pays it, so the
        splitter re-charges it explicitly (a few µs of double counting,
        on the safe side);
    ``completion_cost``
        completion-path charge pinned on *tail* subtasks, same rationale.

    ``min_chunk`` — smallest useful body budget; cores that cannot host at
    least this much are skipped, preventing degenerate micro-splits.
    """

    split_cost: int = 0
    split_cost_out: int = 0
    arrival_cost: int = 0
    completion_cost: int = 0
    min_chunk: int = 1000  # 1 us

    def __post_init__(self) -> None:
        for name in ("split_cost", "split_cost_out", "arrival_cost", "completion_cost"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.min_chunk < 1:
            raise ValueError("min_chunk must be at least 1 ns")

    @property
    def tail_reserve(self) -> int:
        """Charges a yet-to-be-placed tail will carry."""
        return self.split_cost + self.completion_cost

    @staticmethod
    def from_model(model, cpmd_wss: int = 0, min_chunk: int = 1000) -> "FptsConfig":
        """Build the per-core-located charges from an OverheadModel."""
        from repro.overhead.accounting import (
            arrival_overhead,
            completion_overhead,
            migration_in_overhead,
            migration_out_overhead,
        )

        return FptsConfig(
            split_cost=migration_in_overhead(model, cpmd_wss),
            split_cost_out=migration_out_overhead(model),
            arrival_cost=arrival_overhead(model, cpmd_wss),
            completion_cost=completion_overhead(model),
            min_chunk=min_chunk,
        )


def _analysis_budget(entry: Entry, config: FptsConfig) -> int:
    """Entry budget as seen by the analysis (raw + located charges)."""
    sub = entry.subtask
    if sub is None:
        return entry.budget
    extra = 0
    if sub.index >= 1:
        extra += config.split_cost
    else:
        extra += config.arrival_cost
    if entry.kind == EntryKind.BODY:
        extra += config.split_cost_out
    elif entry.kind == EntryKind.TAIL:
        extra += config.completion_cost
    return entry.budget + extra


class _Splitter:
    """Carries the mutable state of one fpts_partition run."""

    def __init__(
        self, n_cores: int, config: FptsConfig, incremental: bool = True
    ) -> None:
        self.config = config
        budget_fn: Callable[[Entry], int] = lambda e: _analysis_budget(e, config)
        self.contexts = [
            make_rta_context(incremental=incremental, budget_fn=budget_fn)
            for _ in range(n_cores)
        ]
        self.body_rank = 0
        self.splits: List[SplitTask] = []

    @property
    def core_entries(self) -> List[List[Entry]]:
        return [list(ctx.entries) for ctx in self.contexts]

    # -- whole-task placement ------------------------------------------

    def try_whole(self, task: Task) -> bool:
        # One probe entry shared across the scan (analysis inputs are
        # core-independent); the core is stamped on the admitting hit.
        entry = Entry(
            kind=EntryKind.NORMAL,
            task=task,
            core=0,
            budget=task.wcet,
            deadline=task.deadline,
        )
        pre = self.contexts[0].prepare(entry)
        for core, ctx in enumerate(self.contexts):
            if ctx.probe(entry, pre=pre) is not None:
                entry.core = core
                ctx.commit(entry)
                return True
        return False

    # -- splitting ------------------------------------------------------

    def _spare(self, core: int) -> float:
        return 1.0 - self.contexts[core].utilization

    def try_split(self, task: Task) -> bool:
        """Split ``task`` across cores; all splitter state (contexts,
        ``body_rank``) is mutated only on success — a failed attempt
        leaves the splitter identical to never having tried."""
        config = self.config
        remaining = task.wcet
        pieces: List[Tuple[int, int]] = []  # (core, raw budget)
        piece_entries: List[Entry] = []
        piece_responses: List[int] = []
        cumulative_bound = 0  # S: completion bound of bodies so far

        candidates = sorted(
            range(len(self.contexts)), key=self._spare, reverse=True
        )
        for core in candidates:
            ctx = self.contexts[core]
            index = len(pieces)
            # Every piece before the tail is a body, so the provisional
            # rank of the next body is body_rank + index; self.body_rank
            # itself moves only in _commit.
            rank = self.body_rank + index
            # (a) does the whole remainder fit here as the tail?
            tail_deadline = task.deadline - cumulative_bound
            tail_extra = config.tail_reserve if index >= 1 else 0
            if tail_deadline >= remaining + tail_extra:
                tail_sub = Subtask(
                    task=task,
                    index=index,
                    core=core,
                    budget=remaining,
                    total_subtasks=index + 1,
                )
                tail_entry = Entry(
                    kind=EntryKind.TAIL if index >= 1 else EntryKind.NORMAL,
                    task=task,
                    core=core,
                    budget=remaining,
                    subtask=tail_sub if index >= 1 else None,
                    deadline=tail_deadline,
                    jitter=cumulative_bound,
                )
                tail_response = ctx.probe(tail_entry)
                if tail_response is not None:
                    pieces.append((core, remaining))
                    piece_entries.append(tail_entry)
                    piece_responses.append(tail_response)
                    self._commit(task, pieces, piece_entries, piece_responses)
                    return True
            # (b) otherwise: maximal body budget this core can host.
            budget, response = self._max_body_budget(
                task, core, index, rank, remaining, cumulative_bound
            )
            if budget is None:
                continue
            body_sub = Subtask(
                task=task,
                index=index,
                core=core,
                budget=budget,
                total_subtasks=index + 2,  # placeholder; rebuilt on commit
            )
            body_entry = Entry(
                kind=EntryKind.BODY,
                task=task,
                core=core,
                budget=budget,
                subtask=body_sub,
                deadline=response,
                jitter=cumulative_bound,
                body_rank=rank,
            )
            pieces.append((core, budget))
            piece_entries.append(body_entry)
            piece_responses.append(response)
            cumulative_bound += response
            remaining -= budget
        return False

    def _max_body_budget(
        self,
        task: Task,
        core: int,
        index: int,
        rank: int,
        remaining: int,
        cumulative_bound: int,
    ) -> Tuple[Optional[int], Optional[int]]:
        """Largest raw body budget ``b`` this core can host, with its
        verified response bound; (None, None) if even ``min_chunk`` fails.

        Feasibility of ``b`` requires (i) every resident entry still meets
        its deadline with the body added and (ii) the body's own response
        leaves enough deadline for the rest of the task:
        ``S_prev + R(b) + (remaining - b) + tail_reserve <= D`` — i.e. even
        a zero-interference tail must still be able to make it.

        The search itself lives in the context (``probe_budget``): each
        candidate budget is probed exactly once, and successive probes
        warm-start from the last feasible budget's responses.
        """
        config = self.config

        def build(b: int) -> Optional[Entry]:
            limit = (
                task.deadline
                - cumulative_bound
                - (remaining - b)
                - config.tail_reserve
            )
            if limit < b:
                return None
            body_sub = Subtask(
                task=task,
                index=index,
                core=core,
                budget=b,
                total_subtasks=index + 2,
            )
            return Entry(
                kind=EntryKind.BODY,
                task=task,
                core=core,
                budget=b,
                subtask=body_sub,
                deadline=limit,
                jitter=cumulative_bound,
                body_rank=rank,
            )

        low = self.config.min_chunk
        high = remaining - 1  # b == remaining would be a tail, handled above
        # The feasible set is downward-closed (see module docstring), so
        # the context's deduplicated binary search applies.
        return self.contexts[core].probe_budget(low, high, build)

    def _commit(
        self,
        task: Task,
        pieces: List[Tuple[int, int]],
        piece_entries: List[Entry],
        piece_responses: List[int],
    ) -> None:
        """Install the split's entries; rebuild subtasks with final count
        and reserve the body ranks the attempt used provisionally."""
        total = len(pieces)
        if total == 1:
            # No split actually happened: the task fit whole on a core that
            # first-fit skipped only because of ordering; place as normal.
            self.contexts[pieces[0][0]].install(
                piece_entries[0], piece_responses[0]
            )
            return
        split = SplitTask.build(task, pieces)
        for entry, sub, response in zip(
            piece_entries, split.subtasks, piece_responses
        ):
            entry.subtask = sub
            entry.kind = EntryKind.TAIL if sub.is_tail else EntryKind.BODY
            if entry.kind == EntryKind.BODY:
                self.body_rank += 1
            self.contexts[entry.core].install(entry, response)
        self.splits.append(split)


def fpts_partition(
    taskset: TaskSet,
    n_cores: int,
    config: FptsConfig = FptsConfig(),
    incremental: bool = True,
) -> Optional[Assignment]:
    """Partition ``taskset`` with FP-TS; returns ``None`` if infeasible.

    Tasks must carry global (rate-monotonic) priorities.
    ``incremental=False`` runs the same algorithm on the from-scratch
    analysis context (differential reference; bit-identical result).

    >>> from repro.model import Task, TaskSet
    >>> ts = TaskSet([
    ...     Task("a", wcet=6, period=10),
    ...     Task("b", wcet=6, period=10),
    ...     Task("c", wcet=6, period=10),
    ... ]).assign_rate_monotonic()
    >>> assignment = fpts_partition(ts, n_cores=2,
    ...                             config=FptsConfig(min_chunk=1))
    >>> assignment is not None and assignment.n_split_tasks >= 1
    True
    """
    for task in taskset:
        if task.priority is None:
            raise ValueError(
                f"task {task.name} has no priority; call "
                "assign_rate_monotonic() before partitioning"
            )
    splitter = _Splitter(n_cores, config, incremental=incremental)
    for task in taskset.sorted_by_utilization(descending=True):
        if splitter.try_whole(task):
            continue
        if not splitter.try_split(task):
            return None

    assignment = Assignment(n_cores)
    for ctx in splitter.contexts:
        for local_priority, entry in enumerate(order_entries(ctx.entries)):
            entry.local_priority = local_priority
            assignment.add_entry(entry)
    for split in splitter.splits:
        assignment.register_split(split)
    assignment.validate()
    return assignment
