"""Semi-partitioned fixed-priority multiprocessor scheduling.

The algorithm the paper implements is **FP-TS** ("fixed priority with task
splitting", its reference [4]: Guan, Stigge, Yi & Yu, RTAS 2010), which has
"both high worst-case utilization guarantees ... and good average-case
real-time performance (exhibits high acceptance ratio in empirical
evaluations)".

* :func:`~repro.semipart.fpts.fpts_partition` — the RTA-based splitter:
  exact response-time analysis decides both whole-task placement and the
  maximal body budget each core can host.  This is the high-acceptance
  member of the family and the algorithm our evaluation harness labels
  ``FP-TS``.
* :mod:`repro.semipart.spa` — SPA1 and SPA2, the utilization-bound variants
  from the same RTAS'10 paper that achieve the Liu & Layland bound
  (reconstructed from the published description).
"""

from repro.semipart.fpts import FptsConfig, fpts_partition
from repro.semipart.spa import spa1_partition, spa2_partition
from repro.semipart.cd_split import CdSplitConfig, cd_split_partition
from repro.semipart.pdms import PdmsConfig, pdms_hpts_partition

__all__ = [
    "FptsConfig",
    "fpts_partition",
    "spa1_partition",
    "spa2_partition",
    "CdSplitConfig",
    "cd_split_partition",
    "PdmsConfig",
    "pdms_hpts_partition",
]
