#!/usr/bin/env python3
"""Quickstart: partition a task set, analyse it, and simulate it.

Walks the full pipeline on the canonical example from the semi-partitioned
scheduling literature — three equal tasks on two cores, which *no*
partitioned algorithm can schedule but FP-TS handles by splitting one task
across both cores — with the paper's measured kernel overheads integrated
into the analysis and injected into the simulation.

Run:  python examples/quickstart.py
"""

from repro.analysis import assignment_schedulable
from repro.kernel import KernelSim
from repro.model import MS, SEC, Task, TaskSet
from repro.overhead import OverheadModel, inflate_taskset
from repro.partition import partition_first_fit_decreasing
from repro.semipart import FptsConfig, fpts_partition
from repro.trace import render_gantt, validate_trace


def main() -> None:
    # 1. Describe the workload: C, T in nanoseconds (helpers: US/MS/SEC).
    # Three tasks of utilization 0.55: any *pair* overloads one core
    # (0.55 + 0.55 > 1), so no partitioning onto two cores exists, yet the
    # total load is only 1.65 of 2.0 — the bin-packing waste that motivates
    # semi-partitioned scheduling.
    taskset = TaskSet(
        [
            Task("video", wcet=5500_000, period=10 * MS),
            Task("audio", wcet=5500_000, period=10 * MS),
            Task("ctrl", wcet=5500_000, period=10 * MS),
        ]
    ).assign_rate_monotonic()
    print("Task set:")
    print(taskset.describe())
    print()

    # 2. Pure partitioning fails: 0.6 + 0.6 > 1 on every pairing.
    partitioned = partition_first_fit_decreasing(taskset, n_cores=2)
    print(f"FFD partitioning result: {partitioned}")

    # 3. FP-TS with overhead-aware analysis: WCETs are inflated by the
    #    per-job kernel overhead, and every subtask boundary reserves the
    #    migration charge.  The algorithm splits one task across the cores
    #    and the result passes exact RTA.
    overheads = OverheadModel.paper_core_i7(tasks_per_core=4)
    analysed = inflate_taskset(taskset, overheads)
    config = FptsConfig.from_model(
        overheads, cpmd_wss=max(t.wss for t in taskset)
    )
    assignment = fpts_partition(analysed, n_cores=2, config=config)
    assert assignment is not None, "FP-TS should accept this set"
    print("\nFP-TS assignment (budgets include overhead head-room):")
    print(assignment.describe())
    print(f"\nexact RTA verdict: {assignment_schedulable(assignment)}")

    # 4. Execute the assignment on the simulated kernel with the same
    #    overheads injected; jobs run their *raw* WCETs.
    sim = KernelSim(
        assignment,
        overheads,
        duration=1 * SEC,
        record_trace=True,
        execution_times={task.name: task.wcet for task in taskset},
    )
    result = sim.run()
    print(
        f"\nsimulated 1s: releases={result.releases} "
        f"migrations={result.migrations} preemptions={result.preemptions} "
        f"deadline misses={result.miss_count}"
    )
    for name in sorted(result.task_stats):
        stats = result.task_stats[name]
        print(
            f"  {name}: completed={stats.jobs_completed} "
            f"max response={stats.max_response / MS:.3f} ms"
        )
    violations = validate_trace(result.trace, assignment)
    print(f"trace invariant violations: {len(violations)}")

    # 5. Show the first 30 ms as a Gantt chart.
    print()
    print(render_gantt(result.trace, 2, width=100, start=0, end=30 * MS))


if __name__ == "__main__":
    main()
