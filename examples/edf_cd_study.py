#!/usr/bin/env python3
"""EDF-side study: partitioned EDF and C=D splitting (extensions).

Shows the dynamic-priority counterpart of the paper's comparison:

1. a non-harmonic full-load core that RM cannot schedule but EDF can;
2. the canonical 3-equal-tasks-on-2-cores workload solved by C=D
   splitting, simulated under the kernel's EDF policy with per-stage
   deadlines (the chunk's C=D deadline makes EDF serve it immediately);
3. a side-by-side acceptance sweep: FP-TS vs C=D vs P-EDF vs FFD.

Run:  python examples/edf_cd_study.py
"""

from repro.analysis.edf import edf_schedulable
from repro.analysis.rta import response_time
from repro.experiments import AcceptanceConfig, run_acceptance
from repro.experiments.plot import acceptance_plot
from repro.kernel import KernelSim
from repro.model import MS, SEC, Task, TaskSet
from repro.overhead import OverheadModel
from repro.semipart import CdSplitConfig, cd_split_partition
from repro.trace import validate_trace


def rm_vs_edf_on_full_core() -> None:
    print("=== 1. RM vs EDF on one core at U = 1.0 (non-harmonic) ===")
    triples = [(5 * MS, 10 * MS, 10 * MS), (7 * MS, 14 * MS, 14 * MS)]
    print("tasks: (C=5,T=10) + (C=7,T=14), U = 1.0")
    rm_response = response_time(7 * MS, [(5 * MS, 10 * MS, 0)], limit=14 * MS)
    print(f"RM: low-priority response bound = {rm_response} (None = unschedulable)")
    print(f"EDF (processor demand analysis): {edf_schedulable(triples)}")


def cd_split_demo() -> None:
    print("\n=== 2. C=D splitting of 3 x (5.5ms, 10ms) on 2 cores ===")
    taskset = TaskSet(
        [
            Task("x", wcet=5500_000, period=10 * MS),
            Task("y", wcet=5500_000, period=10 * MS),
            Task("z", wcet=5500_000, period=10 * MS),
        ]
    ).assign_rate_monotonic()
    # Overhead-aware analysis: inflate WCETs, locate migration charges.
    from repro.overhead import inflate_taskset

    overheads = OverheadModel.paper_core_i7(4)
    analysed = inflate_taskset(taskset, overheads)
    assignment = cd_split_partition(
        analysed,
        2,
        CdSplitConfig.from_model(
            overheads, cpmd_wss=max(t.wss for t in taskset)
        ),
    )
    assert assignment is not None
    print(assignment.describe())
    split = next(iter(assignment.split_tasks.values()))
    chunk = split.subtasks[0]
    print(
        f"\nthe C=D chunk: budget {chunk.budget / MS:.3f} ms with deadline "
        f"{chunk.budget / MS:.3f} ms — EDF serves it immediately on arrival"
    )
    result = KernelSim(
        assignment,
        overheads,
        duration=1 * SEC,
        policy="edf",
        record_trace=True,
        execution_times={t.name: t.wcet for t in taskset},
    ).run()
    print(
        f"1 s EDF simulation with overheads: misses={result.miss_count} "
        f"migrations={result.migrations}"
    )
    print(f"trace violations: {len(validate_trace(result.trace, assignment))}")


def side_by_side() -> None:
    print("\n=== 3. acceptance sweep: FP side vs EDF side ===")
    config = AcceptanceConfig(
        n_cores=4,
        n_tasks=12,
        sets_per_point=40,
        utilizations=[0.80, 0.85, 0.90, 0.95, 1.00],
        overheads=OverheadModel.paper_core_i7(3),
        algorithms=("FP-TS", "C=D", "P-EDF", "FFD"),
    )
    result = run_acceptance(config)
    print(result.as_table())
    print()
    print(acceptance_plot(result))


def main() -> None:
    rm_vs_edf_on_full_core()
    cd_split_demo()
    side_by_side()


if __name__ == "__main__":
    main()
